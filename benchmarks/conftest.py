"""Shared configuration of the benchmark suite.

Every benchmark regenerates one table or figure of the paper's
evaluation (see DESIGN.md for the index).  The workload scale is chosen
so the whole suite completes in a few minutes on a laptop while keeping
the paper's qualitative shape: the Exact baseline enumerates the full
candidate-set space and therefore dominates the heuristics' cost, and
the heuristics stay close to Exact's result quality.

Each benchmark also writes the rows it produced to
``benchmarks/output/<name>.txt`` so the regenerated figures can be read
after a run (pytest-benchmark reports only the timings).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import experiment_environment

OUTPUT_DIR = Path(__file__).parent / "output"


def bench_config() -> ExperimentConfig:
    """The single experiment configuration shared by every benchmark."""
    return ExperimentConfig(
        n_users=150,
        n_items=300,
        n_actions=4000,
        seed=42,
        max_groups=90,
        scaling_bins=(0.25, 0.5, 1.0),
        user_study_judges=30,
    )


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return bench_config()


@pytest.fixture(scope="session")
def environment(config):
    """The (dataset, prepared session) pair shared across benchmarks."""
    return experiment_environment(config)


@pytest.fixture(scope="session")
def write_artifact():
    """Write a rendered figure to benchmarks/output/<name>.txt."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> Path:
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        return path

    return _write
