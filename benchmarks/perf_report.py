"""Performance report: kernels (PR 1), persistence (PR 2), serving (PR 3), HTTP (PR 4), fleet (PR 5), reliability (PR 6), HTAP (PR 7), subscriptions (PR 10).

Times the vectorized kernels against the retained naive seed
implementations (:mod:`repro.geometry.reference`), measures the
end-to-end build/solve phases at the Figure 7 scaling bins, times the
persistence subsystem (SQLite ingest/load, cold session prepare vs
warm snapshot load), measures sustained interleaved insert+query
throughput on a warm serving shard, measures the HTTP front-end
(wire request throughput, per-request overhead over the same solve
in-process, and what connection pooling saves per request), and
measures the multi-process fleet (aggregate solve throughput at 1/2/4
workers on a multi-corpus workload, router forwarding overhead, and
routed/direct/single-process parity), and runs the reliability drill
(solve latency through a SIGKILL + respawn of the owning worker,
exactly-once audit of keyed inserts across the kill, admission-control
shed behaviour under a stalled writer), and measures the HTAP
delta+main split (solve latency percentiles under a sustained insert
storm on the lock-free pinned-view path vs an inline reconstruction of
the old RW-lock shard, insert throughput with a concurrent solve loop,
and bit-identical parity of delta-visible/post-merge solves against a
serialized replay), and measures the standing-query pipeline (notify
latency from a published view to the subscription ledger position
covering its watermark, evaluator backlog depth under a batched insert
storm, and the incremental advantage of re-solving a standing query on
the warm serving session over a from-scratch cold replay at the same
watermark), then writes a JSON report so future PRs have a perf
trajectory to beat.

Usage::

    PYTHONPATH=src python benchmarks/perf_report.py            # full report -> BENCH_PR10.json
    PYTHONPATH=src python benchmarks/perf_report.py --quick    # smoke mode, seconds not minutes
    PYTHONPATH=src python benchmarks/perf_report.py --output /tmp/bench.json

Report schema (``schema_version`` 8; older reports lack the newer
sections -- v1 has no ``persistence``/``serving``/``http``/``fleet``/
``reliability``/``htap``/``subscriptions``, v2 no ``serving``/``http``/
``fleet``/``reliability``/``htap``/``subscriptions``, v3 no ``http``/
``fleet``/``reliability``/``htap``/``subscriptions``, v4 no ``fleet``/
``reliability``/``htap``/``subscriptions``, v5 no ``reliability``/
``htap``/``subscriptions``, v6 no ``htap``/``subscriptions``, v7 no
``subscriptions`` -- and all still validate)::

    {
      "schema_version": 8,
      "pr": "PR7",
      "mode": "full" | "quick",
      "kernels": {
        "<kernel>": {"naive_seconds": float, "vectorized_seconds": float,
                      "speedup": float, "parity": bool, ...parameters}
      },
      "scaling": [
        {"bin": str, "tuples": int, "groups": int, "build_seconds": float,
         "solve": {"<problem-algorithm>": float, ...}}
      ],
      "persistence": {
        "tuples": int, "groups": int,
        "sqlite_ingest_seconds": float, "sqlite_load_seconds": float,
        "cold_prepare_seconds": float, "warm_load_seconds": float,
        "warm_speedup": float, "parity": bool
      },
      "serving": {
        "tuples": int, "groups": int, "inserts": int, "solves": int,
        "client_threads": int, "wall_seconds": float,
        "inserts_per_second": float, "solves_per_second": float,
        "snapshot_rotations": int, "parity": bool
      },
      "http": {
        "tuples": int, "groups": int, "inserts": int, "solves": int,
        "client_threads": int, "wall_seconds": float,
        "requests_per_second": float,
        "inprocess_solve_ms": float, "http_solve_ms": float,
        "wire_overhead_ms": float,
        "unpooled_solve_ms": float,
        "stats_pooled_ms": float, "stats_unpooled_ms": float,
        "connection_overhead_ms": float,
        "parity": bool
      },
      "fleet": {
        "corpora": int, "tuples_per_corpus": int, "cpu_count": int,
        "groups_returned": int, "client_threads": int,
        "solves_per_run": int,
        "runs": [{"workers": int, "wall_seconds": float,
                   "solves_per_second": float}],
        "throughput_speedup_max_vs_1": float,
        "routed_solve_ms": float, "direct_solve_ms": float,
        "router_overhead_ms": float, "parity": bool
      },
      "reliability": {
        "tuples": int, "inserts": int, "solves": int,
        "kill_at_insert": int, "worker_restarts": int,
        "deduplicated_replies": int,
        "solve_p50_ms": float, "solve_p99_ms": float,
        "solve_max_ms": float,
        "lost_inserts": int, "duplicated_inserts": int,
        "exactly_once": bool,
        "admission": {"offered": int, "accepted": int, "shed": int,
                       "shed_rate": float,
                       "applied_equals_accepted": bool}
      },
      "htap": {
        "tuples": int, "inserts": int, "insert_threads": int,
        "baseline": {"solve_p50_ms": float, "solve_p99_ms": float,
                      "solves_during_storm": int,
                      "storm_wall_seconds": float,
                      "inserts_per_second": float},
        "delta_main": {"solve_p50_ms": float, "solve_p99_ms": float,
                        "solves_during_storm": int,
                        "storm_wall_seconds": float,
                        "inserts_per_second": float,
                        "merge_count": int, "final_epoch": int},
        "solve_p99_speedup": float,
        "delta_visible_parity": bool, "merged_parity": bool,
        "parity": bool
      },
      "subscriptions": {
        "tuples": int, "inserts": int, "batches": int,
        "diffs_delivered": int, "storm_wall_seconds": float,
        "notify_p50_ms": float, "notify_p99_ms": float,
        "max_backlog": int,
        "lost_diffs": int, "duplicated_diffs": int,
        "warm_solve_ms": float, "cold_replay_ms": float,
        "incremental_speedup": float, "parity": bool
      }
    }

The ``http.parity`` flag is the PR 4 acceptance check: the same
ProblemSpec solved through :class:`~repro.api.client.HttpClient` and
through :class:`~repro.api.client.LocalClient` on the same warm session
must return bit-identical group selections.  ``fleet.parity`` extends
it across processes (PR 5): routed-through-the-router, direct-to-worker
and single-process solves must all agree bit-identically.
``fleet.throughput_speedup_max_vs_1`` is meaningful only relative to
``fleet.cpu_count`` -- worker processes cannot scale past the cores the
machine actually has, so the report records both.

``reliability.exactly_once`` is the PR 6 acceptance check: with the
owning worker SIGKILLed *after* a keyed insert committed but *before*
it answered, every keyed insert must land exactly once -- zero lost,
zero duplicated -- with the ambiguous retry answered from the dedup
log.  ``reliability.solve_p99_ms`` reads against ``solve_p50_ms``: the
gap is the recovery window solves rode out while the supervisor
respawned the worker.

``htap.solve_p99_speedup`` is the PR 7 acceptance check: the same
insert storm + solve loop is driven twice in the same run -- once
against an inline reconstruction of the old RW-lock shard (solves under
the shared side of a writer-preferring lock, so they stall behind the
saturated insert stream) and once against the delta+main
:class:`~repro.serving.shards.CorpusShard` (lock-free solves on a
pinned view) -- and the delta+main solve p99 must improve on the
baseline's.  ``htap.parity`` requires the shard's delta-visible and
post-merge solves to be bit-identical to a serialized single-threaded
replay of the same committed insert order.

``subscriptions.incremental_speedup`` is the PR 10 acceptance check:
re-solving a registered standing query on the warm serving session
(the evaluator's per-publish path) must beat a from-scratch cold
session that re-prepares the corpus and replays the committed insert
prefix to the same watermark.  ``subscriptions.parity`` requires the
composed diff chain delivered by the ledger *and* the warm solve to
agree byte-identically (under canonical JSON, volatile fields
stripped) with that cold replay; ``lost_diffs``/``duplicated_diffs``
audit the ledger seqs for exactly-once visible delivery.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.algorithms.scoring import batch_subset_means  # noqa: E402
from repro.geometry.dispersion import (  # noqa: E402
    greedy_max_avg_dispersion,
    greedy_max_min_dispersion,
)
from repro.geometry.distance import pairwise_cosine_distance  # noqa: E402
from repro.geometry.reference import (  # noqa: E402
    naive_greedy_max_avg_dispersion,
    naive_greedy_max_min_dispersion,
    naive_lsh_tables,
    naive_subset_mean,
)
from repro.index.lsh import CosineLshIndex  # noqa: E402

SCHEMA_VERSION = 8


def best_of(repeats: int, fn: Callable[[], object]) -> float:
    """Minimum wall-clock seconds of ``repeats`` calls to ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def best_of_pair(
    repeats: int, fn_a: Callable[[], object], fn_b: Callable[[], object]
) -> "tuple[float, float]":
    """Interleaved :func:`best_of` over two alternatives (A,B,A,B,...).

    Comparing two paths with back-to-back ``best_of`` runs lets slow
    machine-load drift land entirely on one side and flip the sign of a
    small difference; interleaving exposes both sides to the same drift.
    """
    best_a = best_b = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - started)
        started = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - started)
    return best_a, best_b


def _speedup_entry(naive_seconds: float, fast_seconds: float, parity: bool, **params):
    entry = dict(params)
    entry.update(
        {
            "naive_seconds": naive_seconds,
            "vectorized_seconds": fast_seconds,
            "speedup": naive_seconds / fast_seconds if fast_seconds > 0 else float("inf"),
            "parity": parity,
        }
    )
    return entry


# ----------------------------------------------------------------------
# Kernel benchmarks
# ----------------------------------------------------------------------
def bench_greedy_dispersion(n: int, k: int, repeats: int) -> Dict[str, Dict]:
    rng = np.random.default_rng(0)
    matrix = pairwise_cosine_distance(rng.random((n, 8)))

    fast_avg = greedy_max_avg_dispersion(matrix, k)
    slow_avg = naive_greedy_max_avg_dispersion(matrix, k)
    avg = _speedup_entry(
        best_of(repeats, lambda: naive_greedy_max_avg_dispersion(matrix, k)),
        best_of(repeats, lambda: greedy_max_avg_dispersion(matrix, k)),
        parity=fast_avg.indices == slow_avg.indices,
        n=n,
        k=k,
    )

    fast_min = greedy_max_min_dispersion(matrix, k)
    slow_min = naive_greedy_max_min_dispersion(matrix, k)
    mn = _speedup_entry(
        best_of(repeats, lambda: naive_greedy_max_min_dispersion(matrix, k)),
        best_of(repeats, lambda: greedy_max_min_dispersion(matrix, k)),
        parity=fast_min.indices == slow_min.indices,
        n=n,
        k=k,
    )
    return {"greedy_max_avg_dispersion": avg, "greedy_max_min_dispersion": mn}


def bench_lsh_rebuild(n: int, n_dimensions: int, bits_from: int, bits_to: int, n_tables: int, repeats: int) -> Dict:
    rng = np.random.default_rng(1)
    vectors = rng.normal(size=(n, n_dimensions))
    index = CosineLshIndex(n_dimensions, n_bits=bits_from, n_tables=n_tables, seed=3).build(vectors)

    rebuilt = index.rebuild_with_bits(bits_to)
    naive_tables = naive_lsh_tables(vectors, n_bits=bits_to, n_tables=n_tables, seed=3)
    parity = all(
        {bucket.key: tuple(bucket.members) for bucket in rebuilt.buckets(table)} == naive_tables[table]
        for table in range(n_tables)
    )
    return _speedup_entry(
        best_of(repeats, lambda: naive_lsh_tables(vectors, n_bits=bits_to, n_tables=n_tables, seed=3)),
        best_of(repeats, lambda: index.rebuild_with_bits(bits_to)),
        parity=parity,
        n=n,
        n_dimensions=n_dimensions,
        n_tables=n_tables,
        bits_from=bits_from,
        bits_to=bits_to,
    )


def bench_subset_scoring(n: int, n_subsets: int, subset_size: int, repeats: int) -> Dict:
    rng = np.random.default_rng(2)
    matrix = pairwise_cosine_distance(rng.random((n, 8)))
    subsets = np.asarray(
        [rng.choice(n, size=subset_size, replace=False) for _ in range(n_subsets)]
    )

    fast = batch_subset_means(matrix, subsets)
    slow = [naive_subset_mean(matrix, subset.tolist(), 0.0) for subset in subsets]
    parity = bool(np.allclose(fast, slow, atol=1e-12))
    return _speedup_entry(
        best_of(
            repeats,
            lambda: [naive_subset_mean(matrix, subset.tolist(), 0.0) for subset in subsets],
        ),
        best_of(repeats, lambda: batch_subset_means(matrix, subsets)),
        parity=parity,
        n=n,
        n_subsets=n_subsets,
        subset_size=subset_size,
    )


# ----------------------------------------------------------------------
# Persistence: SQLite round-trip + cold prepare vs warm snapshot load
# ----------------------------------------------------------------------
def bench_persistence(quick: bool) -> Dict:
    import tempfile

    from repro.core.persistence import load_session, save_session
    from repro.dataset.sqlite_store import SqliteTaggingStore
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import build_dataset, build_problem, build_session

    if quick:
        config = ExperimentConfig(
            n_users=60, n_items=120, n_actions=800, seed=42, max_groups=40
        )
    else:
        config = ExperimentConfig(
            n_users=150, n_items=300, n_actions=4000, seed=42, max_groups=90
        )
    dataset = build_dataset(config)

    with tempfile.TemporaryDirectory() as tmp:
        db_path = Path(tmp) / "corpus.sqlite"
        snapshot_path = Path(tmp) / "session.snapshot"

        started = time.perf_counter()
        store = SqliteTaggingStore.from_dataset(dataset, db_path)
        sqlite_ingest = time.perf_counter() - started

        started = time.perf_counter()
        session = build_session(dataset, config)
        cold_prepare = time.perf_counter() - started
        # Warm the LSH cache so its sign-bit matrices ride in the snapshot.
        session.signature_lsh(n_bits=config.lsh_bits, n_tables=config.lsh_tables)
        save_session(session, snapshot_path)

        started = time.perf_counter()
        reloaded = store.to_dataset()
        sqlite_load = time.perf_counter() - started

        started = time.perf_counter()
        warm = load_session(snapshot_path, reloaded)
        warm_load = time.perf_counter() - started
        store.close()

        parity = bool(
            np.array_equal(session.signatures, warm.signatures)
            and [str(g.description) for g in session.groups]
            == [str(g.description) for g in warm.groups]
        )
        for problem_id, algorithm in ((1, "sm-lsh-fo"), (6, "dv-fdp-fo")):
            problem = build_problem(problem_id, dataset, config)
            cold_result = session.solve(problem, algorithm=algorithm)
            warm_result = warm.solve(problem, algorithm=algorithm)
            parity = parity and (
                cold_result.objective_value == warm_result.objective_value
                and cold_result.descriptions() == warm_result.descriptions()
            )

    return {
        "tuples": dataset.n_actions,
        "groups": session.n_groups,
        "sqlite_ingest_seconds": sqlite_ingest,
        "sqlite_load_seconds": sqlite_load,
        "cold_prepare_seconds": cold_prepare,
        "warm_load_seconds": warm_load,
        "warm_speedup": cold_prepare / warm_load if warm_load > 0 else float("inf"),
        "parity": parity,
    }


# ----------------------------------------------------------------------
# Serving: sustained interleaved insert+query throughput on a warm shard
# ----------------------------------------------------------------------
def bench_serving(quick: bool) -> Dict:
    import tempfile
    import threading
    import time as time_module
    from pathlib import Path as PathType

    from repro.core.enumeration import GroupEnumerationConfig
    from repro.core.incremental import IncrementalTagDM
    from repro.core.problem import table1_problem
    from repro.dataset.synthetic import generate_movielens_style
    from repro.serving import SnapshotRotationPolicy, TagDMServer

    if quick:
        n_actions, n_inserts, n_solves = 600, 80, 8
    else:
        n_actions, n_inserts, n_solves = 2000, 500, 50
    enumeration = GroupEnumerationConfig(min_support=5, max_groups=60)
    dataset = generate_movielens_style(
        n_users=60, n_items=120, n_actions=n_actions, seed=42
    )
    initial_actions = dataset.n_actions

    with tempfile.TemporaryDirectory() as tmp:
        server = TagDMServer(
            PathType(tmp),
            policy=SnapshotRotationPolicy(every_inserts=max(25, n_inserts // 8)),
            enumeration=enumeration,
            seed=42,
        )
        shard = server.add_corpus("bench", dataset)
        problem = table1_problem(1, k=3, min_support=shard.session.default_support())

        n_writers = 2
        per_writer = n_inserts // n_writers
        errors: List[BaseException] = []
        barrier = threading.Barrier(n_writers + 2)

        def inserter(label: int) -> None:
            try:
                barrier.wait()
                for i in range(per_writer):
                    row = (label * per_writer + i) % initial_actions
                    server.insert(
                        "bench",
                        dataset.user_of(row),
                        dataset.item_of(row),
                        [f"bench-{label}-{i}"],
                    )
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def solver() -> None:
            try:
                barrier.wait()
                for _ in range(n_solves // 2):
                    server.solve("bench", problem, algorithm="sm-lsh-fo")
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=inserter, args=(label,))
            for label in range(n_writers)
        ]
        threads.extend(threading.Thread(target=solver) for _ in range(2))
        started = time_module.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        shard.flush()
        wall = time_module.perf_counter() - started
        if errors:
            raise RuntimeError(f"serving bench raised: {errors[0]!r}")
        # Capture the counters before the parity check below adds an
        # out-of-band solve that was not part of the timed window.
        stats = server.stats()["bench"]

        # Parity: replay the committed insert order into a cold
        # single-threaded session over a regenerated initial corpus.
        cold = IncrementalTagDM(
            generate_movielens_style(
                n_users=60, n_items=120, n_actions=n_actions, seed=42
            ),
            enumeration=enumeration,
            seed=42,
        ).prepare()
        served = shard.session.dataset
        for row in range(initial_actions, served.n_actions):
            cold.add_action(
                served.user_of(row),
                served.item_of(row),
                served.tags_of(row),
                served.rating_of(row),
            )
        warm_result = server.solve("bench", problem, algorithm="sm-lsh-fo")
        cold_result = cold.solve(problem, algorithm="sm-lsh-fo")
        parity = bool(
            served.n_actions == initial_actions + n_inserts
            and warm_result.objective_value == cold_result.objective_value
            and warm_result.descriptions() == cold_result.descriptions()
        )
        server.close()

    solves_done = stats["solves_served"]
    return {
        "tuples": initial_actions,
        "groups": stats["groups"],
        "inserts": n_inserts,
        "solves": solves_done,
        "client_threads": n_writers + 2,
        "wall_seconds": wall,
        "inserts_per_second": n_inserts / wall if wall > 0 else float("inf"),
        "solves_per_second": solves_done / wall if wall > 0 else float("inf"),
        "snapshot_rotations": stats["snapshot_rotations"],
        "parity": parity,
    }


# ----------------------------------------------------------------------
# HTTP front-end: wire throughput and per-request overhead (PR 4)
# ----------------------------------------------------------------------
def bench_http(quick: bool) -> Dict:
    import tempfile
    import threading
    import time as time_module
    from pathlib import Path as PathType

    from repro.api import HttpClient, LocalClient, ProblemSpec
    from repro.core.enumeration import GroupEnumerationConfig
    from repro.core.problem import table1_problem
    from repro.dataset.synthetic import generate_movielens_style
    from repro.serving import TagDMHttpServer, TagDMServer

    if quick:
        n_actions, n_inserts, n_solves, timed_solves = 600, 40, 6, 5
    else:
        n_actions, n_inserts, n_solves, timed_solves = 2000, 300, 30, 20
    enumeration = GroupEnumerationConfig(min_support=5, max_groups=60)
    dataset = generate_movielens_style(
        n_users=60, n_items=120, n_actions=n_actions, seed=42
    )

    with tempfile.TemporaryDirectory() as tmp:
        server = TagDMServer(PathType(tmp), enumeration=enumeration, seed=42)
        shard = server.add_corpus("bench", dataset)
        problem = table1_problem(1, k=3, min_support=shard.session.default_support())
        spec = ProblemSpec.from_problem(problem, algorithm="sm-lsh-fo")

        with TagDMHttpServer(server) as front:
            n_writers = 2
            per_writer = n_inserts // n_writers
            errors: List[BaseException] = []
            barrier = threading.Barrier(n_writers + 2)

            def inserter(label: int) -> None:
                client = HttpClient(front.url)
                try:
                    barrier.wait()
                    for i in range(per_writer):
                        row = (label * per_writer + i) % n_actions
                        client.insert_action(
                            "bench",
                            dataset.user_of(row),
                            dataset.item_of(row),
                            [f"http-{label}-{i}"],
                        )
                except BaseException as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            def solver() -> None:
                client = HttpClient(front.url)
                try:
                    barrier.wait()
                    for _ in range(n_solves // 2):
                        client.solve("bench", spec)
                except BaseException as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=inserter, args=(label,))
                for label in range(n_writers)
            ]
            threads.extend(threading.Thread(target=solver) for _ in range(2))
            started = time_module.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            shard.flush()
            wall = time_module.perf_counter() - started
            if errors:
                raise RuntimeError(f"http bench raised: {errors[0]!r}")

            # Per-request overhead: the identical spec, warm caches, one
            # client -- wire time minus in-process time is the protocol
            # cost (serde + HTTP + socket).  The unpooled client opens a
            # fresh TCP connection per request (the pre-PR-5 behaviour),
            # so pooled vs unpooled isolates what keep-alive saves.
            client = HttpClient(front.url)
            unpooled = HttpClient(front.url, keep_alive=False)
            local = LocalClient({"bench": shard.session})
            client.solve("bench", spec)  # warm both paths before timing
            unpooled.solve("bench", spec)
            local.solve("bench", spec)
            http_solve, inprocess_solve = best_of_pair(
                timed_solves,
                lambda: client.solve("bench", spec),
                lambda: local.solve("bench", spec),
            )
            unpooled_solve = best_of(timed_solves, lambda: unpooled.solve("bench", spec))
            # Connection-setup cost, isolated on a no-compute request so
            # a solve's variance cannot drown the ~sub-ms TCP+teardown
            # saving that pooling buys on every single request.
            stats_pooled, stats_unpooled = best_of_pair(
                max(20, timed_solves * 4),
                lambda: client.stats("bench"),
                lambda: unpooled.stats("bench"),
            )

            over_http = client.solve("bench", spec)
            in_process = local.solve("bench", spec)
            parity = bool(
                over_http.objective_value == in_process.objective_value
                and [str(g.description) for g in over_http.groups]
                == [str(g.description) for g in in_process.groups]
                and [g.tuple_indices for g in over_http.groups]
                == [g.tuple_indices for g in in_process.groups]
            )
            stats = client.stats("bench")
            unpooled.close()
            client.close()
        server.close()

    solves_done = 2 * (n_solves // 2)
    return {
        "tuples": n_actions,
        "groups": int(stats["groups"]),
        "inserts": n_inserts,
        "solves": solves_done,
        "client_threads": n_writers + 2,
        "wall_seconds": wall,
        "requests_per_second": (
            (n_inserts + solves_done) / wall if wall > 0 else float("inf")
        ),
        "inprocess_solve_ms": inprocess_solve * 1e3,
        "http_solve_ms": http_solve * 1e3,
        "wire_overhead_ms": (http_solve - inprocess_solve) * 1e3,
        "unpooled_solve_ms": unpooled_solve * 1e3,
        "stats_pooled_ms": stats_pooled * 1e3,
        "stats_unpooled_ms": stats_unpooled * 1e3,
        "connection_overhead_ms": (stats_unpooled - stats_pooled) * 1e3,
        "parity": parity,
    }


# ----------------------------------------------------------------------
# Multi-process fleet: aggregate throughput + router overhead (PR 5)
# ----------------------------------------------------------------------
def bench_fleet(quick: bool) -> Dict:
    """Aggregate solve throughput at 1/2/4 workers, and router overhead.

    One shared fleet root holds N corpora; for each worker count a fresh
    fleet serves that same root (corpora pinned round-robin so every
    worker owns an equal share) and a fixed pool of client threads
    drives solves round-robin across corpora through the router.
    Throughput scaling is bounded by the machine's cores -- the report
    records ``cpu_count`` so a 1.0x on a 1-core container and a 3x on a
    4-core host read correctly.
    """
    import os
    import tempfile
    import threading
    import time as time_module
    from pathlib import Path as PathType

    from repro.api import FleetClient, HttpClient, ProblemSpec, ServerClient
    from repro.core.enumeration import GroupEnumerationConfig
    from repro.core.problem import table1_problem
    from repro.dataset.synthetic import generate_movielens_style
    from repro.serving import TagDMFleet, TagDMServer

    if quick:
        n_corpora, n_actions, worker_counts = 2, 600, (1, 2)
        client_threads, solves_per_thread, timed_solves = 4, 3, 3
    else:
        n_corpora, n_actions, worker_counts = 4, 2000, (1, 2, 4)
        client_threads, solves_per_thread, timed_solves = 8, 6, 10
    enumeration = GroupEnumerationConfig(min_support=5, max_groups=60)
    seed = 42

    with tempfile.TemporaryDirectory() as tmp:
        root = PathType(tmp)
        corpora = [f"corpus-{index}" for index in range(n_corpora)]
        problems: Dict[str, object] = {}

        # Ingest every corpus once (store + cold prepare + snapshot);
        # all fleets below warm-start from these snapshots.
        ingest = TagDMServer(root, enumeration=enumeration, seed=seed)
        for index, name in enumerate(corpora):
            dataset = generate_movielens_style(
                n_users=60, n_items=120, n_actions=n_actions, seed=seed + index
            )
            shard = ingest.add_corpus(name, dataset)
            # Pick a k this corpus can actually satisfy, so the workload
            # solves real (non-null) problems end to end.
            support = shard.session.default_support()
            problems[name] = table1_problem(1, k=2, min_support=support)
            for k in (5, 4, 3):
                candidate = table1_problem(1, k=k, min_support=support)
                if shard.session.solve(candidate, algorithm="sm-lsh-fo").groups:
                    problems[name] = candidate
                    break
        ingest.close()
        specs = {
            name: ProblemSpec.from_problem(problem, algorithm="sm-lsh-fo")
            for name, problem in problems.items()
        }

        def drive_through(router_url: str) -> float:
            """Aggregate wall time for the fixed multi-corpus solve load."""
            client = HttpClient(router_url, request_timeout=600.0)
            errors: List[BaseException] = []
            barrier = threading.Barrier(client_threads + 1)

            def solver(label: int) -> None:
                try:
                    barrier.wait()
                    for index in range(solves_per_thread):
                        name = corpora[(label + index) % n_corpora]
                        client.solve(name, specs[name])
                except BaseException as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=solver, args=(label,))
                for label in range(client_threads)
            ]
            for thread in threads:
                thread.start()
            barrier.wait()
            started = time_module.perf_counter()
            for thread in threads:
                thread.join()
            wall = time_module.perf_counter() - started
            client.close()
            if errors:
                raise RuntimeError(f"fleet bench raised: {errors[0]!r}")
            return wall

        runs: List[Dict] = []
        routed_solve = direct_solve = float("nan")
        routed_result = direct_result = None
        total_solves = client_threads * solves_per_thread
        for n_workers in worker_counts:
            pins = {
                name: f"worker-{index % n_workers}"
                for index, name in enumerate(corpora)
            }
            fleet = TagDMFleet(
                root,
                n_workers=n_workers,
                enumeration=enumeration,
                seed=seed,
                pins=pins,
                spawn_timeout=600.0,
            )
            fleet.discover_corpora()
            fleet.start()
            try:
                # One warm-up pass per corpus, then the timed load.
                warm_client = HttpClient(fleet.url, request_timeout=600.0)
                for name in corpora:
                    warm_client.solve(name, specs[name])
                wall = drive_through(fleet.url)
                runs.append(
                    {
                        "workers": n_workers,
                        "wall_seconds": wall,
                        "solves_per_second": total_solves / wall if wall > 0 else float("inf"),
                    }
                )
                if n_workers == worker_counts[-1]:
                    # Router forwarding overhead: the same solve through
                    # the router vs straight at the owning worker
                    # (interleaved so machine-load drift cannot flip the
                    # few-ms difference).
                    direct_client = FleetClient(fleet.url, request_timeout=600.0)
                    name = corpora[0]
                    direct_client.solve(name, specs[name])  # placement fetch + warm
                    routed_solve, direct_solve = best_of_pair(
                        timed_solves,
                        lambda: warm_client.solve(name, specs[name]),
                        lambda: direct_client.solve(name, specs[name]),
                    )
                    routed_result = warm_client.solve(name, specs[name])
                    direct_result = direct_client.solve(name, specs[name])
                    direct_client.close()
                warm_client.close()
            finally:
                fleet.close()

        # Single-process parity baseline over the very same root (the
        # corpus warm-starts from the same snapshot the workers used).
        single = TagDMServer(root, enumeration=enumeration, seed=seed)
        single.open_corpus(corpora[0])
        single_result = ServerClient(single).solve(corpora[0], specs[corpora[0]])
        single.close()

    def key(result):
        return (
            result.objective_value,
            [str(group.description) for group in result.groups],
            [group.tuple_indices for group in result.groups],
        )

    parity = bool(key(routed_result) == key(direct_result) == key(single_result))
    baseline = runs[0]["solves_per_second"]
    peak = max(run["solves_per_second"] for run in runs)
    return {
        "corpora": n_corpora,
        "tuples_per_corpus": n_actions,
        "cpu_count": int(os.cpu_count() or 1),
        "groups_returned": len(routed_result.groups),
        "client_threads": client_threads,
        "solves_per_run": total_solves,
        "runs": runs,
        "throughput_speedup_max_vs_1": peak / baseline if baseline > 0 else float("inf"),
        "routed_solve_ms": routed_solve * 1e3,
        "direct_solve_ms": direct_solve * 1e3,
        "router_overhead_ms": (routed_solve - direct_solve) * 1e3,
        "parity": parity,
    }


# ----------------------------------------------------------------------
# Reliability: kill-ladder latency, exactly-once audit, admission (PR 6)
# ----------------------------------------------------------------------
def bench_reliability(quick: bool) -> Dict:
    """Fault drill under measurement.

    A seeded :class:`~repro.serving.reliability.FaultPlan` SIGKILLs the
    worker that owns the drill corpus right after it *applied* a keyed
    insert but before it answered -- the ambiguous window -- while solve
    traffic keeps flowing through the router.  The section records solve
    latency percentiles through the recovery (p99 - p50 is the respawn
    window), audits the store for exactly-once insert semantics, and
    separately measures admission-control shedding against a writer
    stalled by an injected sleep (shed batches must never reach the
    store; accepted batches all must).
    """
    import tempfile
    import threading
    import time as time_module
    from pathlib import Path as PathType

    from repro.api import HttpClient, OverloadedError, ProblemSpec
    from repro.core.enumeration import GroupEnumerationConfig
    from repro.core.problem import table1_problem
    from repro.dataset.synthetic import generate_movielens_style
    from repro.serving import (
        AdmissionPolicy,
        FaultPlan,
        FaultRule,
        TagDMFleet,
        TagDMServer,
    )

    if quick:
        n_actions, n_inserts, n_solves = 500, 10, 8
    else:
        n_actions, n_inserts, n_solves = 1500, 30, 24
    kill_at = 3
    enumeration = GroupEnumerationConfig(min_support=5, max_groups=60)
    seed = 42
    dataset = generate_movielens_style(
        n_users=40, n_items=80, n_actions=n_actions, seed=seed
    )
    initial = dataset.n_actions
    spec = ProblemSpec.from_problem(
        table1_problem(1, k=3, min_support=5), algorithm="sm-lsh-fo"
    )

    with tempfile.TemporaryDirectory() as tmp:
        root = PathType(tmp)
        plan = FaultPlan(
            [
                FaultRule(
                    "insert.applied",
                    "kill",
                    when_actions=initial + kill_at,
                    once=True,
                )
            ],
            seed=seed,
            state_dir=root / "latches",
        )
        fleet = TagDMFleet(
            root / "fleet",
            n_workers=1,
            enumeration=enumeration,
            seed=seed,
            spawn_timeout=600.0,
            fault_plan=plan,
            heartbeat_interval=0.5,
        )
        fleet.add_corpus("drill", dataset)
        fleet.start()
        client = HttpClient(fleet.url, request_timeout=600.0)
        client.solve("drill", spec)  # warm the wire path before timing

        errors: List[BaseException] = []
        latencies: List[float] = []
        reports: List[object] = []
        barrier = threading.Barrier(2)

        def solver() -> None:
            try:
                solve_client = HttpClient(fleet.url, request_timeout=600.0)
                barrier.wait()
                for _ in range(n_solves):
                    started = time_module.perf_counter()
                    solve_client.solve("drill", spec)
                    latencies.append(time_module.perf_counter() - started)
                solve_client.close()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def inserter() -> None:
            try:
                barrier.wait()
                for index in range(n_inserts):
                    row = index % initial
                    reports.append(
                        client.insert(
                            "drill",
                            [
                                {
                                    "user_id": dataset.user_of(row),
                                    "item_id": dataset.item_of(row),
                                    "tags": [f"drill-{index}"],
                                }
                            ],
                            idempotency_key=f"drill-insert-{index}",
                        )
                    )
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=solver), threading.Thread(target=inserter)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise RuntimeError(f"reliability bench raised: {errors[0]!r}")

        restarts = 0
        deadline = time_module.monotonic() + 120.0
        while time_module.monotonic() < deadline:
            worker_stats = fleet.stats()["workers"]
            restarts = sum(entry["restarts"] for entry in worker_stats.values())
            if restarts > 0 and all(entry["alive"] for entry in worker_stats.values()):
                break
            time_module.sleep(0.05)
        actual = int(client.stats("drill")["actions"])
        client.close()
        fleet.close()

    expected = initial + n_inserts
    lost = max(0, expected - actual)
    duplicated = max(0, actual - expected)
    deduplicated = sum(1 for report in reports if report.deduplicated)
    ordered = sorted(latencies)

    def percentile(fraction: float) -> float:
        return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]

    # Admission control, in-process: stall the writer with an injected
    # sleep, burst more batches than the one-deep queue admits, and
    # audit that shed batches never reached the store while every
    # accepted batch did.
    offered = 12
    with tempfile.TemporaryDirectory() as tmp:
        server = TagDMServer(
            PathType(tmp),
            enumeration=enumeration,
            seed=seed,
            admission=AdmissionPolicy(max_queue_depth=1, retry_after_seconds=0.2),
            fault_plan=FaultPlan(
                [FaultRule("shard.apply", "sleep", at=1, sleep_seconds=0.5)]
            ),
        )
        gate_dataset = generate_movielens_style(
            n_users=40, n_items=80, n_actions=400, seed=seed
        )
        gate_initial = gate_dataset.n_actions
        shard = server.add_corpus("gate", gate_dataset)
        futures = [
            shard.submit_insert(
                [
                    {
                        "user_id": gate_dataset.user_of(0),
                        "item_id": gate_dataset.item_of(0),
                        "tags": ["gate-0"],
                    }
                ]
            )
        ]
        # Wait for the writer to dequeue the first batch into the
        # injected sleep so the burst below meets a full queue.
        stall_deadline = time_module.monotonic() + 10.0
        while (
            shard.stats()["queue_depth"] > 0
            and time_module.monotonic() < stall_deadline
        ):
            time_module.sleep(0.01)
        shed = 0
        for index in range(1, offered):
            try:
                futures.append(
                    shard.submit_insert(
                        [
                            {
                                "user_id": gate_dataset.user_of(index),
                                "item_id": gate_dataset.item_of(index),
                                "tags": [f"gate-{index}"],
                            }
                        ]
                    )
                )
            except OverloadedError:
                shed += 1
        for future in futures:
            future.result(timeout=60.0)
        shard.flush()
        accepted = len(futures)
        applied = int(shard.stats()["actions"]) - gate_initial
        server.close()

    return {
        "tuples": initial,
        "inserts": n_inserts,
        "solves": len(latencies),
        "kill_at_insert": kill_at,
        "worker_restarts": restarts,
        "deduplicated_replies": deduplicated,
        "solve_p50_ms": percentile(0.50) * 1e3,
        "solve_p99_ms": percentile(0.99) * 1e3,
        "solve_max_ms": ordered[-1] * 1e3,
        "lost_inserts": lost,
        "duplicated_inserts": duplicated,
        "exactly_once": lost == 0 and duplicated == 0,
        "admission": {
            "offered": offered,
            "accepted": accepted,
            "shed": shed,
            "shed_rate": shed / offered,
            "applied_equals_accepted": applied == accepted,
        },
    }


# ----------------------------------------------------------------------
# HTAP: delta+main vs the old RW-lock shard under an insert storm (PR 7)
# ----------------------------------------------------------------------
def bench_htap(quick: bool) -> Dict:
    """Solve latency under a sustained insert storm, before vs after.

    The *same run* drives the same workload -- N writer threads pushing
    single-action inserts as fast as they are acknowledged, with a solve
    loop measuring latency the whole time -- through two serving builds:

    * **baseline**: an inline reconstruction of the pre-PR-7 shard --
      one writer thread applying inserts under the exclusive side of a
      *writer-preferring* RW lock, solves on the session under its
      shared side.  While the insert stream stays saturated some writer
      is always active or waiting, so solves stall (the reader-
      starvation hazard this PR removes);
    * **delta_main**: the real :class:`~repro.serving.shards.CorpusShard`
      -- inserts through the writer queue, fold-per-batch merges, solves
      lock-free on the pinned published view.

    Parity pins correctness: the shard's post-storm solve (delta folded)
    and a post-ack delta-visible solve must be bit-identical to a fresh
    session serially replaying the same committed insert order.
    """
    import tempfile
    import threading
    import time as time_module
    from contextlib import contextmanager
    from pathlib import Path as PathType

    from repro.core.enumeration import GroupEnumerationConfig
    from repro.core.incremental import IncrementalTagDM
    from repro.core.problem import table1_problem
    from repro.dataset.synthetic import generate_movielens_style
    from repro.serving import SnapshotRotationPolicy, TagDMServer

    if quick:
        n_actions, n_inserts = 600, 120
    else:
        n_actions, n_inserts = 1500, 600
    n_writers = 2
    enumeration = GroupEnumerationConfig(min_support=5, max_groups=60)
    seed = 42

    def fresh_dataset():
        return generate_movielens_style(
            n_users=60, n_items=120, n_actions=n_actions, seed=seed
        )

    base = fresh_dataset()
    initial = base.n_actions
    payloads = [
        {
            "user_id": base.user_of((i * 7) % initial),
            "item_id": base.item_of((i * 11) % initial),
            "tags": (f"htap-{i}", "storm"),
            "rating": float(i % 5),
        }
        for i in range(n_inserts)
    ]
    chunks = [payloads[label::n_writers] for label in range(n_writers)]

    class WriterPreferringRWLock:
        """The pre-PR-7 lock: readers blocked while any writer waits."""

        def __init__(self) -> None:
            self._condition = threading.Condition()
            self._readers = 0
            self._writer_active = False
            self._waiting_writers = 0

        @contextmanager
        def read_locked(self):
            with self._condition:
                while self._writer_active or self._waiting_writers:
                    self._condition.wait()
                self._readers += 1
            try:
                yield
            finally:
                with self._condition:
                    self._readers -= 1
                    if self._readers == 0:
                        self._condition.notify_all()

        @contextmanager
        def write_locked(self):
            with self._condition:
                self._waiting_writers += 1
                while self._writer_active or self._readers:
                    self._condition.wait()
                self._waiting_writers -= 1
                self._writer_active = True
            try:
                yield
            finally:
                with self._condition:
                    self._writer_active = False
                    self._condition.notify_all()

    def run_storm(apply_chunk, do_solve):
        """Drive the storm; measure solve latency until it completes."""
        storm_done = threading.Event()
        latencies: List[float] = []
        errors: List[BaseException] = []

        def solver() -> None:
            try:
                while True:
                    started = time_module.perf_counter()
                    do_solve()
                    latencies.append(time_module.perf_counter() - started)
                    if storm_done.is_set():
                        return
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def writer(chunk) -> None:
            try:
                apply_chunk(chunk)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        solve_thread = threading.Thread(target=solver)
        write_threads = [
            threading.Thread(target=writer, args=(chunk,)) for chunk in chunks
        ]
        solve_thread.start()
        started = time_module.perf_counter()
        for thread in write_threads:
            thread.start()
        for thread in write_threads:
            thread.join()
        wall = time_module.perf_counter() - started
        storm_done.set()
        solve_thread.join()
        if errors:
            raise RuntimeError(f"htap bench raised: {errors[0]!r}")
        return latencies, wall

    def percentiles(latencies: List[float]):
        ordered = sorted(latencies)
        def at(fraction: float) -> float:
            return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]
        return at(0.50) * 1e3, at(0.99) * 1e3

    def result_key(result):
        return (
            result.objective_value,
            [str(group.description) for group in result.groups],
            [group.tuple_indices for group in result.groups],
        )

    def serialized_replay(served_dataset):
        """A fresh session replaying the committed insert order serially."""
        replay = IncrementalTagDM(
            fresh_dataset(), enumeration=enumeration, seed=seed
        ).prepare()
        for row in range(initial, served_dataset.n_actions):
            replay.add_action(
                served_dataset.user_of(row),
                served_dataset.item_of(row),
                served_dataset.tags_of(row),
                served_dataset.rating_of(row),
            )
        return replay

    # -- baseline: the old RW-lock shard, reconstructed inline ----------
    baseline_session = IncrementalTagDM(
        fresh_dataset(), enumeration=enumeration, seed=seed
    ).prepare()
    problem = table1_problem(1, k=3, min_support=baseline_session.default_support())
    baseline_lock = WriterPreferringRWLock()

    def baseline_apply(chunk) -> None:
        for action in chunk:
            with baseline_lock.write_locked():
                baseline_session.add_actions([action])

    def baseline_solve() -> None:
        with baseline_lock.read_locked():
            baseline_session.solve(problem, algorithm="sm-lsh-fo")

    baseline_solve()  # warm the caches outside the measured window
    baseline_latencies, baseline_wall = run_storm(baseline_apply, baseline_solve)
    with baseline_lock.read_locked():
        baseline_final = baseline_session.solve(problem, algorithm="sm-lsh-fo")
    baseline_parity = result_key(baseline_final) == result_key(
        serialized_replay(baseline_session.dataset).solve(
            problem, algorithm="sm-lsh-fo"
        )
    )
    baseline_p50, baseline_p99 = percentiles(baseline_latencies)

    # -- delta+main: the real shard, same workload ----------------------
    with tempfile.TemporaryDirectory() as tmp:
        server = TagDMServer(
            PathType(tmp),
            policy=SnapshotRotationPolicy(every_inserts=max(50, n_inserts // 4)),
            enumeration=enumeration,
            seed=seed,
        )
        shard = server.add_corpus("htap", fresh_dataset())

        def htap_apply(chunk) -> None:
            for action in chunk:
                shard.insert(**action)

        def htap_solve() -> None:
            shard.solve(problem, algorithm="sm-lsh-fo")

        htap_solve()  # warm the published view outside the measured window
        htap_latencies, htap_wall = run_storm(htap_apply, htap_solve)
        shard.flush()
        stats = shard.stats()

        # Post-merge parity: the folded shard vs a serialized replay of
        # its committed insert order.
        merged_result = shard.solve(problem, algorithm="sm-lsh-fo")
        replay = serialized_replay(shard.session.dataset)
        merged_parity = result_key(merged_result) == result_key(
            replay.solve(problem, algorithm="sm-lsh-fo")
        )

        # Delta-visible parity: under the fold-per-batch default an
        # acknowledged insert is visible to the very next solve; that
        # solve must match the replay extended by the same batch.
        extra = [
            {
                "user_id": base.user_of(i),
                "item_id": base.item_of(i),
                "tags": (f"htap-delta-{i}",),
                "rating": None,
            }
            for i in range(3)
        ]
        shard.insert_batch(extra)
        delta_result = shard.solve(problem, algorithm="sm-lsh-fo")
        replay.add_actions(extra)
        delta_parity = result_key(delta_result) == result_key(
            replay.solve(problem, algorithm="sm-lsh-fo")
        )
        server.close()
    htap_p50, htap_p99 = percentiles(htap_latencies)

    return {
        "tuples": initial,
        "inserts": n_inserts,
        "insert_threads": n_writers,
        "baseline": {
            "solve_p50_ms": baseline_p50,
            "solve_p99_ms": baseline_p99,
            "solves_during_storm": len(baseline_latencies),
            "storm_wall_seconds": baseline_wall,
            "inserts_per_second": (
                n_inserts / baseline_wall if baseline_wall > 0 else float("inf")
            ),
        },
        "delta_main": {
            "solve_p50_ms": htap_p50,
            "solve_p99_ms": htap_p99,
            "solves_during_storm": len(htap_latencies),
            "storm_wall_seconds": htap_wall,
            "inserts_per_second": (
                n_inserts / htap_wall if htap_wall > 0 else float("inf")
            ),
            "merge_count": int(stats["merge_count"]),
            "final_epoch": int(stats["epoch"]),
        },
        "solve_p99_speedup": (
            baseline_p99 / htap_p99 if htap_p99 > 0 else float("inf")
        ),
        "delta_visible_parity": bool(delta_parity),
        "merged_parity": bool(merged_parity),
        "parity": bool(baseline_parity and merged_parity and delta_parity),
    }


def bench_subscriptions(quick: bool) -> Dict:
    """Standing-query delivery: notify latency, backlog, incremental edge.

    One serving shard with a registered subscription rides out a
    batched insert storm.  After each batch flushes (publishing a new
    view at watermark = corpus action count) the bench records the
    publish instant; a sampler thread polls the subscription row and
    stamps the first instant its ``last_watermark`` covers each
    published watermark.  The gap is the **notify latency** -- insert
    commit to delivered (or silently advanced) ledger position --
    reported as p50/p99, together with the deepest ``subs_backlog`` the
    sampler ever observed.

    The incremental half is the reason standing queries exist at all:
    answering the same spec at the final watermark from the warm
    serving session (what the evaluator does per publish) vs a
    from-scratch cold session that must re-prepare the corpus and
    replay the committed insert prefix (what a poll-and-resolve client
    would pay).  ``incremental_speedup`` is cold/warm and the ledger
    audit (dense seqs, no duplicates, parity of the composed chain
    against the warm solve) pins correctness.
    """
    import tempfile
    import threading
    import time as time_module
    from pathlib import Path as PathType

    from repro.api.client import ServerClient
    from repro.api.diff import (
        ResultDiff,
        apply_diff,
        comparable_payload,
        payloads_equal,
    )
    from repro.api.service import coerce_spec
    from repro.core.enumeration import GroupEnumerationConfig
    from repro.core.incremental import IncrementalTagDM
    from repro.core.problem import table1_problem
    from repro.dataset.synthetic import generate_movielens_style
    from repro.serving import SnapshotRotationPolicy, TagDMServer

    if quick:
        n_actions, n_batches, batch_size = 400, 6, 10
    else:
        n_actions, n_batches, batch_size = 800, 20, 15
    enumeration = GroupEnumerationConfig(min_support=5, max_groups=60)
    seed = 17
    total_inserts = n_batches * batch_size

    def fresh_dataset():
        return generate_movielens_style(
            n_users=40, n_items=80, n_actions=n_actions, seed=seed
        )

    base = fresh_dataset()
    initial = base.n_actions
    payloads = [
        {
            "user_id": base.user_of((i * 13) % initial),
            "item_id": base.item_of((i * 17) % initial),
            "tags": (f"standing-{i % 9}", "subscribed"),
            "rating": float(i % 5),
        }
        for i in range(total_inserts)
    ]

    with tempfile.TemporaryDirectory() as tmp:
        server = TagDMServer(
            PathType(tmp),
            policy=SnapshotRotationPolicy(every_inserts=max(100, total_inserts)),
            enumeration=enumeration,
            seed=seed,
        )
        shard = server.add_corpus("standing", fresh_dataset())
        client = ServerClient(server)
        problem = table1_problem(1, k=3, min_support=shard.session.default_support())
        spec = coerce_spec(problem, algorithm="sm-lsh-fo")
        client.register_subscription("standing", spec, subscription_id="bench")
        if not shard.evaluator.wait_idle(timeout=60.0):
            raise RuntimeError("subscription bench: initial evaluation never settled")

        # (watermark, publish_seconds) appended by the storm loop; the
        # sampler only reads committed prefixes, so no lock is needed.
        publishes: List[tuple] = []
        arrivals: Dict[int, float] = {}
        max_backlog = 0
        sampler_stop = threading.Event()
        sampler_errors: List[BaseException] = []

        def sampler() -> None:
            nonlocal max_backlog
            try:
                while not sampler_stop.is_set():
                    stats = shard.stats()
                    max_backlog = max(max_backlog, int(stats["subs_backlog"]))
                    row = client.subscriptions("standing")[0]
                    now = time_module.perf_counter()
                    reached = int(row["last_watermark"])
                    for watermark, _ in publishes[: len(publishes)]:
                        if watermark <= reached and watermark not in arrivals:
                            arrivals[watermark] = now
                    time_module.sleep(0.002)
            except BaseException as exc:  # pragma: no cover - failure path
                sampler_errors.append(exc)

        sampler_thread = threading.Thread(target=sampler)
        sampler_thread.start()
        storm_started = time_module.perf_counter()
        for batch in range(n_batches):
            for action in payloads[batch * batch_size : (batch + 1) * batch_size]:
                shard.insert(**action)
            shard.flush()
            publishes.append(
                (shard.session.dataset.n_actions, time_module.perf_counter())
            )
        final_watermark = publishes[-1][0]
        deadline = time_module.perf_counter() + 120.0
        while (
            final_watermark not in arrivals
            and time_module.perf_counter() < deadline
            and not sampler_errors
        ):
            time_module.sleep(0.002)
        storm_wall = time_module.perf_counter() - storm_started
        sampler_stop.set()
        sampler_thread.join()
        if sampler_errors:
            raise RuntimeError(f"subscription bench raised: {sampler_errors[0]!r}")
        if final_watermark not in arrivals:
            raise RuntimeError("subscription bench: final watermark never delivered")

        latencies = sorted(
            arrivals[watermark] - published
            for watermark, published in publishes
            if watermark in arrivals
        )

        def at(fraction: float) -> float:
            return latencies[min(len(latencies) - 1, int(fraction * len(latencies)))]

        # Ledger audit: dense seqs, exactly-once, and the composed diff
        # chain must equal the warm solve at the final watermark.
        poll = client.poll_subscription("standing", "bench")
        diffs = poll["diffs"]
        seqs = [int(entry["seq"]) for entry in diffs]
        lost = len(set(range(1, (max(seqs) if seqs else 0) + 1)) - set(seqs))
        duplicated = len(seqs) - len(set(seqs))
        composed = None
        for entry in diffs:
            composed = apply_diff(ResultDiff.from_dict(entry["diff"]), composed)

        def warm_solve():
            return comparable_payload(
                shard.solve(problem, algorithm="sm-lsh-fo").to_dict()
            )

        warm_payload = warm_solve()  # warm the caches outside the window
        warm_seconds = best_of(3, warm_solve)

        started = time_module.perf_counter()
        cold = IncrementalTagDM(
            fresh_dataset(), enumeration=enumeration, seed=seed
        ).prepare()
        served = shard.session.dataset
        for row_index in range(initial, final_watermark):
            cold.add_action(
                served.user_of(row_index),
                served.item_of(row_index),
                served.tags_of(row_index),
                served.rating_of(row_index),
            )
        cold_payload = comparable_payload(
            cold.solve(problem, algorithm="sm-lsh-fo").to_dict()
        )
        cold_seconds = time_module.perf_counter() - started

        parity = payloads_equal(warm_payload, cold_payload) and (
            composed is None or payloads_equal(composed, warm_payload)
        )
        server.close()

    return {
        "tuples": initial,
        "inserts": total_inserts,
        "batches": n_batches,
        "diffs_delivered": len(diffs),
        "storm_wall_seconds": storm_wall,
        "notify_p50_ms": at(0.50) * 1e3,
        "notify_p99_ms": at(0.99) * 1e3,
        "max_backlog": int(max_backlog),
        "lost_diffs": int(lost),
        "duplicated_diffs": int(duplicated),
        "warm_solve_ms": warm_seconds * 1e3,
        "cold_replay_ms": cold_seconds * 1e3,
        "incremental_speedup": (
            cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
        ),
        "parity": bool(parity),
    }


# ----------------------------------------------------------------------
# End-to-end scaling sweep (Figure 7 bins)
# ----------------------------------------------------------------------
def bench_scaling(quick: bool) -> List[Dict]:
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import build_dataset, build_problem, build_session, run_algorithm

    if quick:
        config = ExperimentConfig(
            n_users=60,
            n_items=120,
            n_actions=800,
            seed=42,
            max_groups=40,
            scaling_bins=(0.5, 1.0),
        )
    else:
        config = ExperimentConfig(
            n_users=150,
            n_items=300,
            n_actions=4000,
            seed=42,
            max_groups=90,
            scaling_bins=(0.25, 0.5, 1.0),
        )

    dataset = build_dataset(config)
    pairs = ((1, "sm-lsh-fo"), (6, "dv-fdp-fo"))
    rows: List[Dict] = []
    for fraction in config.scaling_bins:
        bin_size = max(1, int(round(fraction * dataset.n_actions)))
        bin_dataset = dataset.sample(bin_size, seed=config.seed, name=f"bin-{bin_size}")
        started = time.perf_counter()
        session = build_session(bin_dataset, config)
        build_seconds = time.perf_counter() - started

        solve: Dict[str, float] = {}
        for problem_id, algorithm in pairs:
            problem = build_problem(problem_id, bin_dataset, config)
            started = time.perf_counter()
            run_algorithm(session, problem, algorithm, config, problem_id=problem_id)
            solve[f"p{problem_id}-{algorithm}"] = time.perf_counter() - started

        rows.append(
            {
                "bin": f"bin{int(round(fraction * 100))}pct",
                "tuples": bin_dataset.n_actions,
                "groups": session.n_groups,
                "build_seconds": build_seconds,
                "solve": solve,
            }
        )
    return rows


def generate_report(quick: bool) -> Dict:
    if quick:
        kernels = bench_greedy_dispersion(n=300, k=8, repeats=1)
        kernels["lsh_rebuild_with_bits"] = bench_lsh_rebuild(
            n=2000, n_dimensions=16, bits_from=10, bits_to=5, n_tables=1, repeats=1
        )
        kernels["batch_subset_scoring"] = bench_subset_scoring(
            n=300, n_subsets=500, subset_size=4, repeats=1
        )
    else:
        kernels = bench_greedy_dispersion(n=2000, k=20, repeats=3)
        kernels["lsh_rebuild_with_bits"] = bench_lsh_rebuild(
            n=20000, n_dimensions=32, bits_from=16, bits_to=8, n_tables=2, repeats=3
        )
        kernels["batch_subset_scoring"] = bench_subset_scoring(
            n=2000, n_subsets=5000, subset_size=5, repeats=3
        )
    return {
        "schema_version": SCHEMA_VERSION,
        "pr": "PR10",
        "mode": "quick" if quick else "full",
        "kernels": kernels,
        "scaling": bench_scaling(quick),
        "persistence": bench_persistence(quick),
        "serving": bench_serving(quick),
        "http": bench_http(quick),
        "fleet": bench_fleet(quick),
        "reliability": bench_reliability(quick),
        "htap": bench_htap(quick),
        "subscriptions": bench_subscriptions(quick),
    }


def validate_report(report: Dict) -> None:
    """Assert the report matches the documented schema (used by tests).

    Accepts every committed generation: v1 (kernels + scaling only;
    ``BENCH_PR1.json``) through v7 (no ``subscriptions``;
    ``BENCH_PR7.json``) and current v8 reports -- each version adds one
    section and all older reports still validate.
    """
    assert report["schema_version"] in (1, 2, 3, 4, 5, 6, 7, SCHEMA_VERSION)
    assert report["mode"] in ("full", "quick")
    assert isinstance(report["kernels"], dict) and report["kernels"]
    for name, entry in report["kernels"].items():
        for field in ("naive_seconds", "vectorized_seconds", "speedup", "parity"):
            assert field in entry, f"kernel {name} missing {field}"
        assert entry["naive_seconds"] >= 0 and entry["vectorized_seconds"] >= 0
        assert entry["parity"] is True, f"kernel {name} lost parity"
    assert isinstance(report["scaling"], list) and report["scaling"]
    for row in report["scaling"]:
        for field in ("bin", "tuples", "groups", "build_seconds", "solve"):
            assert field in row, f"scaling row missing {field}"
        assert isinstance(row["solve"], dict) and row["solve"]
    if report["schema_version"] >= 2:
        persistence = report["persistence"]
        for field in (
            "tuples",
            "groups",
            "sqlite_ingest_seconds",
            "sqlite_load_seconds",
            "cold_prepare_seconds",
            "warm_load_seconds",
            "warm_speedup",
            "parity",
        ):
            assert field in persistence, f"persistence missing {field}"
        assert persistence["parity"] is True, "persistence round-trip lost parity"
        assert persistence["warm_speedup"] > 0
    if report["schema_version"] >= 3:
        serving = report["serving"]
        for field in (
            "tuples",
            "groups",
            "inserts",
            "solves",
            "client_threads",
            "wall_seconds",
            "inserts_per_second",
            "solves_per_second",
            "snapshot_rotations",
            "parity",
        ):
            assert field in serving, f"serving missing {field}"
        assert serving["parity"] is True, "serving lost parity with cold replay"
        assert serving["inserts_per_second"] > 0
        assert serving["client_threads"] >= 2
    if report["schema_version"] >= 4:
        http = report["http"]
        for field in (
            "tuples",
            "groups",
            "inserts",
            "solves",
            "client_threads",
            "wall_seconds",
            "requests_per_second",
            "inprocess_solve_ms",
            "http_solve_ms",
            "wire_overhead_ms",
            "parity",
        ):
            assert field in http, f"http missing {field}"
        assert http["parity"] is True, "HTTP solve lost parity with in-process"
        assert http["requests_per_second"] > 0
        assert http["client_threads"] >= 2
    if report["schema_version"] >= 5:
        for field in (
            "unpooled_solve_ms",
            "stats_pooled_ms",
            "stats_unpooled_ms",
            "connection_overhead_ms",
        ):
            assert field in report["http"], f"http missing {field}"
        fleet = report["fleet"]
        for field in (
            "corpora",
            "tuples_per_corpus",
            "cpu_count",
            "groups_returned",
            "client_threads",
            "solves_per_run",
            "runs",
            "throughput_speedup_max_vs_1",
            "routed_solve_ms",
            "direct_solve_ms",
            "router_overhead_ms",
            "parity",
        ):
            assert field in fleet, f"fleet missing {field}"
        assert fleet["parity"] is True, "fleet lost routed/direct/single parity"
        assert isinstance(fleet["runs"], list) and fleet["runs"]
        for run in fleet["runs"]:
            assert run["solves_per_second"] > 0
        assert fleet["groups_returned"] > 0, "fleet bench solved a null result"
        assert fleet["cpu_count"] >= 1
    if report["schema_version"] >= 6:
        reliability = report["reliability"]
        for field in (
            "tuples",
            "inserts",
            "solves",
            "kill_at_insert",
            "worker_restarts",
            "deduplicated_replies",
            "solve_p50_ms",
            "solve_p99_ms",
            "solve_max_ms",
            "lost_inserts",
            "duplicated_inserts",
            "exactly_once",
            "admission",
        ):
            assert field in reliability, f"reliability missing {field}"
        assert reliability["lost_inserts"] == 0, "reliability drill lost inserts"
        assert reliability["duplicated_inserts"] == 0, (
            "reliability drill duplicated inserts"
        )
        assert reliability["exactly_once"] is True
        assert reliability["worker_restarts"] >= 1, "the kill never fired"
        assert reliability["solve_p50_ms"] > 0
        admission = reliability["admission"]
        for field in (
            "offered",
            "accepted",
            "shed",
            "shed_rate",
            "applied_equals_accepted",
        ):
            assert field in admission, f"reliability.admission missing {field}"
        assert admission["applied_equals_accepted"] is True, (
            "shed batches leaked into the store (or accepted batches were lost)"
        )
        assert admission["accepted"] + admission["shed"] == admission["offered"]
    if report["schema_version"] >= 7:
        htap = report["htap"]
        for field in (
            "tuples",
            "inserts",
            "insert_threads",
            "baseline",
            "delta_main",
            "solve_p99_speedup",
            "delta_visible_parity",
            "merged_parity",
            "parity",
        ):
            assert field in htap, f"htap missing {field}"
        for side in ("baseline", "delta_main"):
            for field in (
                "solve_p50_ms",
                "solve_p99_ms",
                "solves_during_storm",
                "storm_wall_seconds",
                "inserts_per_second",
            ):
                assert field in htap[side], f"htap.{side} missing {field}"
            assert htap[side]["solve_p50_ms"] > 0
            assert htap[side]["inserts_per_second"] > 0
            assert htap[side]["solves_during_storm"] >= 1
        assert htap["delta_main"]["merge_count"] >= 1, "the shard never folded"
        assert (
            htap["delta_main"]["final_epoch"]
            == htap["delta_main"]["merge_count"] + 1
        )
        assert htap["parity"] is True, "HTAP solves lost parity with serialized replay"
        assert htap["delta_visible_parity"] is True
        assert htap["merged_parity"] is True
        assert htap["solve_p99_speedup"] > 0
        if report["mode"] == "full":
            # The PR 7 acceptance check: under the same insert storm the
            # lock-free pinned-view solves must beat the RW-lock
            # baseline's p99 (quick mode is too short to assert timing).
            assert htap["solve_p99_speedup"] > 1.0, (
                "delta+main solve p99 did not improve on the RW-lock baseline"
            )
    if report["schema_version"] >= 8:
        subscriptions = report["subscriptions"]
        for field in (
            "tuples",
            "inserts",
            "batches",
            "diffs_delivered",
            "storm_wall_seconds",
            "notify_p50_ms",
            "notify_p99_ms",
            "max_backlog",
            "lost_diffs",
            "duplicated_diffs",
            "warm_solve_ms",
            "cold_replay_ms",
            "incremental_speedup",
            "parity",
        ):
            assert field in subscriptions, f"subscriptions missing {field}"
        assert subscriptions["lost_diffs"] == 0, "subscription ledger lost diffs"
        assert subscriptions["duplicated_diffs"] == 0, (
            "subscription ledger duplicated diffs"
        )
        assert subscriptions["parity"] is True, (
            "composed diff chain lost parity with the cold replay"
        )
        assert subscriptions["notify_p50_ms"] > 0
        assert subscriptions["notify_p99_ms"] >= subscriptions["notify_p50_ms"]
        assert subscriptions["max_backlog"] >= 0
        # The PR 10 acceptance check: re-solving a standing query on the
        # warm serving session must beat a from-scratch cold session
        # replaying the same committed prefix (quick mode included --
        # the cold side pays a full corpus prepare either way).
        assert subscriptions["incremental_speedup"] > 1.0, (
            "warm standing-query solve did not beat the from-scratch replay"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smoke mode: tiny sizes, one repeat"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_PR10.json",
        help="where to write the JSON report (default: repo-root BENCH_PR10.json)",
    )
    args = parser.parse_args(argv)

    report = generate_report(quick=args.quick)
    validate_report(report)
    args.output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    for name, entry in report["kernels"].items():
        print(
            f"{name}: {entry['naive_seconds'] * 1e3:.1f} ms -> "
            f"{entry['vectorized_seconds'] * 1e3:.1f} ms "
            f"({entry['speedup']:.1f}x, parity={entry['parity']})"
        )
    for row in report["scaling"]:
        solve = ", ".join(f"{key}={value:.3f}s" for key, value in row["solve"].items())
        print(
            f"{row['bin']}: tuples={row['tuples']} groups={row['groups']} "
            f"build={row['build_seconds']:.3f}s {solve}"
        )
    persistence = report["persistence"]
    print(
        f"persistence: cold_prepare={persistence['cold_prepare_seconds'] * 1e3:.1f} ms "
        f"warm_load={persistence['warm_load_seconds'] * 1e3:.1f} ms "
        f"({persistence['warm_speedup']:.1f}x, parity={persistence['parity']}); "
        f"sqlite ingest={persistence['sqlite_ingest_seconds'] * 1e3:.1f} ms "
        f"load={persistence['sqlite_load_seconds'] * 1e3:.1f} ms"
    )
    serving = report["serving"]
    print(
        f"serving: {serving['inserts']} inserts + {serving['solves']} solves "
        f"from {serving['client_threads']} client threads in "
        f"{serving['wall_seconds']:.2f}s "
        f"({serving['inserts_per_second']:.0f} ins/s, "
        f"{serving['solves_per_second']:.1f} sol/s, "
        f"{serving['snapshot_rotations']} rotations, parity={serving['parity']})"
    )
    http = report["http"]
    print(
        f"http: {http['inserts']} inserts + {http['solves']} solves "
        f"from {http['client_threads']} wire clients in "
        f"{http['wall_seconds']:.2f}s "
        f"({http['requests_per_second']:.0f} req/s; solve "
        f"{http['inprocess_solve_ms']:.1f} ms in-process vs "
        f"{http['http_solve_ms']:.1f} ms over HTTP, "
        f"overhead {http['wire_overhead_ms']:.1f} ms, parity={http['parity']}; "
        f"stats {http['stats_unpooled_ms']:.2f} ms unpooled vs "
        f"{http['stats_pooled_ms']:.2f} ms pooled, "
        f"pooling saves {http['connection_overhead_ms']:.2f} ms/req)"
    )
    fleet = report["fleet"]
    ladder = ", ".join(
        f"{run['workers']}w={run['solves_per_second']:.1f} sol/s" for run in fleet["runs"]
    )
    print(
        f"fleet: {fleet['corpora']} corpora x {fleet['tuples_per_corpus']} tuples, "
        f"{fleet['client_threads']} clients on {fleet['cpu_count']} cpu(s): {ladder} "
        f"(peak {fleet['throughput_speedup_max_vs_1']:.2f}x vs 1 worker); "
        f"router overhead {fleet['router_overhead_ms']:.1f} ms "
        f"({fleet['routed_solve_ms']:.1f} routed vs {fleet['direct_solve_ms']:.1f} direct), "
        f"parity={fleet['parity']}"
    )
    reliability = report["reliability"]
    admission = reliability["admission"]
    print(
        f"reliability: {reliability['inserts']} keyed inserts through a kill at "
        f"#{reliability['kill_at_insert']} -> lost={reliability['lost_inserts']} "
        f"dup={reliability['duplicated_inserts']} "
        f"({reliability['deduplicated_replies']} dedup replies, "
        f"{reliability['worker_restarts']} respawn); solve p50 "
        f"{reliability['solve_p50_ms']:.1f} ms / p99 "
        f"{reliability['solve_p99_ms']:.1f} ms through the recovery window; "
        f"admission shed {admission['shed']}/{admission['offered']} "
        f"({admission['shed_rate']:.0%}), "
        f"applied==accepted={admission['applied_equals_accepted']}"
    )
    htap = report["htap"]
    print(
        f"htap: {htap['inserts']} inserts from {htap['insert_threads']} writers; "
        f"solve p50/p99 under the storm "
        f"{htap['baseline']['solve_p50_ms']:.1f}/{htap['baseline']['solve_p99_ms']:.1f} ms "
        f"(rw-lock baseline, {htap['baseline']['solves_during_storm']} solves) vs "
        f"{htap['delta_main']['solve_p50_ms']:.1f}/{htap['delta_main']['solve_p99_ms']:.1f} ms "
        f"(delta+main, {htap['delta_main']['solves_during_storm']} solves) -> "
        f"p99 {htap['solve_p99_speedup']:.1f}x; "
        f"{htap['delta_main']['inserts_per_second']:.0f} ins/s with concurrent solves, "
        f"{htap['delta_main']['merge_count']} merges; parity={htap['parity']}"
    )
    subscriptions = report["subscriptions"]
    print(
        f"subscriptions: {subscriptions['inserts']} inserts in "
        f"{subscriptions['batches']} batches -> "
        f"{subscriptions['diffs_delivered']} diffs "
        f"(lost={subscriptions['lost_diffs']} "
        f"dup={subscriptions['duplicated_diffs']}); notify p50/p99 "
        f"{subscriptions['notify_p50_ms']:.1f}/"
        f"{subscriptions['notify_p99_ms']:.1f} ms, "
        f"backlog<= {subscriptions['max_backlog']}; warm solve "
        f"{subscriptions['warm_solve_ms']:.1f} ms vs cold replay "
        f"{subscriptions['cold_replay_ms']:.1f} ms "
        f"({subscriptions['incremental_speedup']:.1f}x, "
        f"parity={subscriptions['parity']})"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
