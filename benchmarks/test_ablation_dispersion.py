"""Ablation: MAX-AVG vs MAX-MIN dispersion objectives.

Section 5 discusses both optimality criteria of the facility dispersion
problem; the paper's DV-FDP uses the MAX-AVG greedy.  This ablation runs
both greedy heuristics (and the exact enumerator as the reference) over
the same tag-signature distance matrix and records objective values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.signatures import signature_matrix
from repro.experiments.reporting import render_figure
from repro.geometry.dispersion import (
    exact_max_dispersion,
    greedy_max_avg_dispersion,
    greedy_max_min_dispersion,
)
from repro.geometry.distance import pairwise_cosine_distance

STRATEGIES = ("greedy-max-avg", "greedy-max-min", "exact-max-avg")

_rows = []


def _distance_matrix(session, limit=40):
    signatures = signature_matrix(session.groups[:limit])
    return pairwise_cosine_distance(signatures)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_ablation_dispersion_objective(benchmark, config, environment, strategy):
    _, session = environment
    matrix = _distance_matrix(session)

    def run():
        if strategy == "greedy-max-avg":
            return greedy_max_avg_dispersion(matrix, config.k)
        if strategy == "greedy-max-min":
            return greedy_max_min_dispersion(matrix, config.k)
        return exact_max_dispersion(matrix, config.k, objective="max-avg")

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _rows.append(
        {
            "strategy": strategy,
            "objective_kind": result.objective_kind,
            "objective": round(result.objective, 4),
            "selected": len(result.indices),
        }
    )
    assert len(result.indices) == config.k


def test_ablation_dispersion_report(benchmark, write_artifact):
    rows = benchmark.pedantic(lambda: list(_rows), rounds=1, iterations=1)
    assert len(rows) == len(STRATEGIES)
    by_strategy = {row["strategy"]: row for row in rows}
    # Theorem 4's guarantee, observed: greedy MAX-AVG within factor 4 of exact.
    assert by_strategy["exact-max-avg"]["objective"] <= 4 * by_strategy["greedy-max-avg"]["objective"] + 1e-9
    write_artifact("ablation_dispersion", render_figure("Ablation: dispersion objective", rows))
