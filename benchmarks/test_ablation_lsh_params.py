"""Ablation: LSH parameters (hash width d' and number of tables l).

The paper uses l = 1 table and an initial width of d' = 10 hash
functions.  This ablation sweeps both knobs on Problem 1 and records the
effect on run time (the benchmark timings), result quality and how much
iterative relaxation was needed.
"""

from __future__ import annotations

import pytest

from repro.experiments.reporting import render_figure
from repro.experiments.runner import build_problem
from repro.algorithms import build_algorithm

SETTINGS = (
    {"n_bits": 4, "n_tables": 1},
    {"n_bits": 10, "n_tables": 1},
    {"n_bits": 16, "n_tables": 1},
    {"n_bits": 10, "n_tables": 2},
    {"n_bits": 10, "n_tables": 4},
)

_rows = []


@pytest.mark.parametrize(
    "setting", SETTINGS, ids=[f"bits{s['n_bits']}-tables{s['n_tables']}" for s in SETTINGS]
)
def test_ablation_lsh_parameters(benchmark, config, environment, setting):
    dataset, session = environment
    problem = build_problem(1, dataset, config)
    algorithm = build_algorithm("sm-lsh-fo", seed=config.seed, **setting)

    def run():
        return algorithm.solve(
            problem, session.groups, session.functions, cache=session.matrix_cache()
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _rows.append(
        {
            "n_bits": setting["n_bits"],
            "n_tables": setting["n_tables"],
            "objective": round(result.objective_value, 4),
            "feasible": result.feasible,
            "relaxations": result.metadata.get("relaxations"),
            "evaluations": result.evaluations,
        }
    )
    assert result.is_empty or result.feasible


def test_ablation_lsh_report(benchmark, write_artifact):
    rows = benchmark.pedantic(lambda: list(_rows), rounds=1, iterations=1)
    assert len(rows) == len(SETTINGS)
    write_artifact("ablation_lsh_params", render_figure("Ablation: LSH parameters", rows))
