"""Ablation: signature backend (frequency vs tf*idf vs LDA).

The paper evaluates with LDA signatures (d = 25); this ablation measures
how the choice of summarisation backend affects signature-building cost
and the downstream mining outcome on the same candidate groups.
"""

from __future__ import annotations

import pytest

from repro.algorithms import build_algorithm
from repro.core.enumeration import GroupEnumerationConfig, enumerate_groups
from repro.core.functions import default_function_suite
from repro.core.problem import table1_problem
from repro.core.signatures import GroupSignatureBuilder
from repro.experiments.reporting import render_figure

BACKENDS = ("frequency", "tfidf", "lda")

_rows = []


@pytest.mark.parametrize("backend", BACKENDS)
def test_ablation_signature_backend(benchmark, config, environment, backend):
    dataset, _ = environment
    groups = enumerate_groups(
        dataset, GroupEnumerationConfig(min_support=config.group_min_support, max_groups=60)
    )

    def build_and_solve():
        builder = GroupSignatureBuilder(
            backend=backend,
            n_dimensions=config.signature_dimensions,
            seed=config.seed,
            lda_iterations=30,
        )
        builder.build(groups)
        problem = table1_problem(
            6, k=config.k, min_support=max(1, dataset.n_actions // 100)
        )
        algorithm = build_algorithm("dv-fdp-fo")
        return algorithm.solve(problem, groups, default_function_suite())

    result = benchmark.pedantic(build_and_solve, rounds=1, iterations=1)
    _rows.append(
        {
            "backend": backend,
            "objective": round(result.objective_value, 4),
            "feasible": result.feasible,
            "k": result.k,
        }
    )
    assert result.k in (0, config.k)


def test_ablation_signature_report(benchmark, write_artifact):
    rows = benchmark.pedantic(lambda: list(_rows), rounds=1, iterations=1)
    assert len(rows) == len(BACKENDS)
    write_artifact(
        "ablation_signatures",
        render_figure("Ablation: signature backend", rows),
    )
