"""Ablation: number of topic categories d in the group tag signatures.

The paper fixes d = 25; this ablation sweeps the signature
dimensionality and records its effect on signature-building cost and the
quality achieved by the similarity-maximising solver.
"""

from __future__ import annotations

import pytest

from repro.algorithms import build_algorithm
from repro.core.enumeration import GroupEnumerationConfig, enumerate_groups
from repro.core.functions import default_function_suite
from repro.core.problem import table1_problem
from repro.core.signatures import GroupSignatureBuilder
from repro.experiments.reporting import render_figure

DIMENSIONS = (10, 25, 50)

_rows = []


@pytest.mark.parametrize("dimensions", DIMENSIONS)
def test_ablation_topic_count(benchmark, config, environment, dimensions):
    dataset, _ = environment
    groups = enumerate_groups(
        dataset, GroupEnumerationConfig(min_support=config.group_min_support, max_groups=60)
    )

    def build_and_solve():
        builder = GroupSignatureBuilder(
            backend="frequency", n_dimensions=dimensions, seed=config.seed
        )
        builder.build(groups)
        problem = table1_problem(
            1, k=config.k, min_support=max(1, dataset.n_actions // 100)
        )
        return build_algorithm("sm-lsh-fo", n_bits=config.lsh_bits).solve(
            problem, groups, default_function_suite()
        )

    result = benchmark.pedantic(build_and_solve, rounds=1, iterations=1)
    _rows.append(
        {
            "dimensions": dimensions,
            "objective": round(result.objective_value, 4),
            "feasible": result.feasible,
            "vector_width": result.metadata.get("vector_dimensions"),
        }
    )


def test_ablation_topics_report(benchmark, write_artifact):
    rows = benchmark.pedantic(lambda: list(_rows), rounds=1, iterations=1)
    assert len(rows) == len(DIMENSIONS)
    write_artifact("ablation_topics", render_figure("Ablation: signature dimensionality d", rows))
