"""Section 6.2.1 case studies: anecdotal group contrasts.

Regenerates the two case-study analyses (who disagrees about one genre
of movies; where do similar user groups disagree) and records the
narrative contrasts between the returned groups.
"""

from __future__ import annotations

from repro.analysis.casestudy import render_case_study
from repro.experiments.figures import case_studies


def test_case_studies(benchmark, config, environment, write_artifact):
    studies = benchmark.pedantic(case_studies, args=(config,), rounds=1, iterations=1)
    assert len(studies) == 2

    rendered = []
    for study in studies:
        assert study.report.scoped_tuples > 0
        assert study.report.result.k >= 1
        rendered.append(render_case_study(study))
        # A useful case study contrasts at least two groups; require it for
        # at least one of the two queries.
    assert any(study.has_findings for study in studies)
    write_artifact("case_studies", "\n\n".join(rendered))
