"""Figures 1-2: group tag signatures rendered as tag clouds.

The paper shows the tag cloud of Woody Allen movies for all users
(Figure 1) and for California users only (Figure 2) and reads off the
overlap and the dropped tags.  The benchmark regenerates both clouds for
the most-tagged director of the synthetic corpus and records the
comparison.
"""

from __future__ import annotations

from repro.experiments.figures import figure_1_2_tag_clouds


def test_fig1_2_tag_clouds(benchmark, config, environment, write_artifact):
    figure = benchmark.pedantic(
        figure_1_2_tag_clouds, args=(config,), rounds=1, iterations=1
    )

    cloud_all = figure.extra["cloud_all"]
    cloud_location = figure.extra["cloud_location"]
    assert cloud_all.entries, "the all-users cloud must not be empty"
    assert cloud_location.entries, "the location-scoped cloud must not be empty"
    # The two clouds overlap (same movies) but are not identical (different
    # user populations) -- the comparison the paper draws between the figures.
    assert cloud_all.overlap(cloud_location)
    assert cloud_all.tags() != cloud_location.tags()

    write_artifact(
        "fig1_2_tag_clouds",
        "\n\n".join(
            [
                figure.render(columns=["figure", "tag", "count", "size"]),
                figure.extra["rendered_all"],
                figure.extra["rendered_location"],
            ]
        ),
    )
