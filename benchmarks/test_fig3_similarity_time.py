"""Figure 3: execution time of Problems 1-3 (tag similarity maximisation).

The paper compares Exact against SM-LSH-Fi and SM-LSH-Fo on the full
candidate-group set and reports wall-clock time per problem.  Here every
(problem, algorithm) pair is a separate pytest-benchmark entry, so the
benchmark report itself is the reproduced figure; the expected shape is
that both LSH variants beat Exact by a large factor on every problem.
"""

from __future__ import annotations

import pytest

from repro.experiments.reporting import render_figure
from repro.experiments.runner import build_problem, run_algorithm

PROBLEMS = (1, 2, 3)
ALGORITHMS = ("exact", "sm-lsh-fi", "sm-lsh-fo")

_collected_rows = []


@pytest.mark.parametrize("problem_id", PROBLEMS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig3_similarity_time(benchmark, config, environment, problem_id, algorithm):
    dataset, session = environment
    problem = build_problem(problem_id, dataset, config)

    def run():
        return run_algorithm(session, problem, algorithm, config, problem_id=problem_id)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _collected_rows.append(result.as_row())
    # The heuristics must cost far fewer candidate-set evaluations than
    # Exact enumerates; wall-clock ordering is captured by the benchmark
    # timings themselves.
    if algorithm != "exact":
        assert result.evaluations < session.n_groups ** 2


def test_fig3_report(benchmark, write_artifact):
    """Write the collected Figure 3 rows once all timed runs finished."""
    rows = benchmark.pedantic(lambda: list(_collected_rows), rounds=1, iterations=1)
    assert len(rows) == len(PROBLEMS) * len(ALGORITHMS)
    write_artifact(
        "fig3_similarity_time",
        render_figure(
            "Figure 3: execution time, Problems 1-3",
            rows,
            columns=["problem", "algorithm", "time_s", "evaluations", "feasible"],
        ),
    )
    exact_times = [row["time_s"] for row in rows if row["algorithm"] == "exact"]
    heuristic_times = [row["time_s"] for row in rows if row["algorithm"] != "exact"]
    assert max(heuristic_times) < max(exact_times)
