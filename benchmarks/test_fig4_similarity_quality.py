"""Figure 4: result quality of Problems 1-3 (tag similarity maximisation).

Quality is the paper's metric: the average pairwise cosine similarity
between the tag signature vectors of the k returned groups.  The
expected shape is that the LSH variants stay close to Exact's optimum.
"""

from __future__ import annotations

from repro.experiments.figures import (
    figure_4_similarity_quality,
    run_similarity_experiment,
)


def test_fig4_similarity_quality(benchmark, config, environment, write_artifact):
    runs = benchmark.pedantic(
        run_similarity_experiment, args=(config,), rounds=1, iterations=1
    )
    figure = figure_4_similarity_quality(config, runs=runs)
    write_artifact("fig4_similarity_quality", figure.render())

    by_problem = {}
    for run in runs:
        by_problem.setdefault(run.problem_id, {})[run.algorithm] = run

    for problem_id, algorithms in by_problem.items():
        exact = algorithms["exact"]
        assert exact.feasible, f"Exact must find a feasible set for problem {problem_id}"
        folded = algorithms["sm-lsh-fo"]
        if folded.quality is not None and exact.quality is not None:
            # Within 30% of the optimum, and never better than Exact.
            assert folded.quality >= 0.7 * exact.quality
            assert folded.objective <= exact.objective + 1e-9
