"""Figure 5: execution time of Problems 4-6 (tag diversity maximisation).

Exact versus DV-FDP-Fi and DV-FDP-Fo; the expected shape is that both
dispersion-based variants beat Exact by a large factor.
"""

from __future__ import annotations

import pytest

from repro.experiments.reporting import render_figure
from repro.experiments.runner import build_problem, run_algorithm

PROBLEMS = (4, 5, 6)
ALGORITHMS = ("exact", "dv-fdp-fi", "dv-fdp-fo")

_collected_rows = []


@pytest.mark.parametrize("problem_id", PROBLEMS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig5_diversity_time(benchmark, config, environment, problem_id, algorithm):
    dataset, session = environment
    problem = build_problem(problem_id, dataset, config)

    def run():
        return run_algorithm(session, problem, algorithm, config, problem_id=problem_id)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _collected_rows.append(result.as_row())
    if algorithm != "exact":
        assert result.evaluations < session.n_groups ** 2


def test_fig5_report(benchmark, write_artifact):
    rows = benchmark.pedantic(lambda: list(_collected_rows), rounds=1, iterations=1)
    assert len(rows) == len(PROBLEMS) * len(ALGORITHMS)
    write_artifact(
        "fig5_diversity_time",
        render_figure(
            "Figure 5: execution time, Problems 4-6",
            rows,
            columns=["problem", "algorithm", "time_s", "evaluations", "feasible"],
        ),
    )
    exact_times = [row["time_s"] for row in rows if row["algorithm"] == "exact"]
    heuristic_times = [row["time_s"] for row in rows if row["algorithm"] != "exact"]
    assert max(heuristic_times) < max(exact_times)
