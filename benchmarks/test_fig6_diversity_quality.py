"""Figure 6: result quality of Problems 4-6 (tag diversity maximisation).

Quality is again the average pairwise cosine similarity of the returned
signatures; for diversity problems *lower* similarity is better, and the
expected shape is that the FDP selections stay close to Exact's.
"""

from __future__ import annotations

from repro.experiments.figures import (
    figure_6_diversity_quality,
    run_diversity_experiment,
)


def test_fig6_diversity_quality(benchmark, config, environment, write_artifact):
    runs = benchmark.pedantic(
        run_diversity_experiment, args=(config,), rounds=1, iterations=1
    )
    figure = figure_6_diversity_quality(config, runs=runs)
    write_artifact("fig6_diversity_quality", figure.render())

    by_problem = {}
    for run in runs:
        by_problem.setdefault(run.problem_id, {})[run.algorithm] = run

    for problem_id, algorithms in by_problem.items():
        exact = algorithms["exact"]
        folded = algorithms["dv-fdp-fo"]
        assert exact.feasible, f"Exact must find a feasible set for problem {problem_id}"
        if not folded.null_result:
            assert folded.feasible
            # Objective here is mean pairwise tag diversity; the greedy must
            # reach a substantial fraction of the optimum (Theorem 4 gives a
            # worst-case factor 4; in practice it is much closer).
            assert folded.objective >= 0.5 * exact.objective
            assert folded.objective <= exact.objective + 1e-9
