"""Figure 7: execution time while varying the number of tagging tuples.

The paper samples the corpus into bins (5K/10K/20K/30K tuples) and
compares Exact against SM-LSH-Fo on Problem 1 and against DV-FDP-Fo on
Problem 6 per bin.  Each (bin, problem, algorithm) triple is one
benchmark entry; the expected shape is that the Exact-vs-heuristic gap
widens as the bins grow.
"""

from __future__ import annotations

import pytest

from repro.experiments.reporting import render_figure
from repro.experiments.runner import build_problem, build_session, run_algorithm

PAIRS = ((1, "exact"), (1, "sm-lsh-fo"), (6, "exact"), (6, "dv-fdp-fo"))

_sessions = {}
_collected_rows = []


def _bin_session(config, dataset, fraction):
    key = round(fraction, 4)
    if key not in _sessions:
        bin_size = max(1, int(round(fraction * dataset.n_actions)))
        bin_dataset = dataset.sample(bin_size, seed=config.seed, name=f"bin-{bin_size}")
        _sessions[key] = (bin_dataset, build_session(bin_dataset, config))
    return _sessions[key]


def _bin_ids(config):
    return [f"bin{int(round(fraction * 100))}pct" for fraction in config.scaling_bins]


@pytest.mark.parametrize("fraction_index", range(3))
@pytest.mark.parametrize("pair", PAIRS, ids=[f"p{p}-{a}" for p, a in PAIRS])
def test_fig7_scaling_time(benchmark, config, environment, fraction_index, pair):
    if fraction_index >= len(config.scaling_bins):
        pytest.skip("configuration defines fewer bins")
    fraction = config.scaling_bins[fraction_index]
    problem_id, algorithm = pair
    dataset, _ = environment
    bin_dataset, session = _bin_session(config, dataset, fraction)
    problem = build_problem(problem_id, bin_dataset, config)

    def run():
        return run_algorithm(session, problem, algorithm, config, problem_id=problem_id)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    row = result.as_row()
    row["tuples"] = bin_dataset.n_actions
    row["groups"] = session.n_groups
    _collected_rows.append(row)


def test_fig7_report(benchmark, config, write_artifact):
    rows = benchmark.pedantic(lambda: list(_collected_rows), rounds=1, iterations=1)
    assert len(rows) == len(PAIRS) * len(config.scaling_bins)
    rows.sort(key=lambda row: (row["problem"], row["algorithm"], row["tuples"]))
    write_artifact(
        "fig7_scaling_time",
        render_figure(
            "Figure 7: execution time vs number of tagging tuples",
            rows,
            columns=["tuples", "groups", "problem", "algorithm", "time_s", "evaluations"],
        ),
    )
    # Exact's enumeration cost must not shrink as the bins grow.
    for problem in ("problem-1", "problem-6"):
        exact_rows = sorted(
            (row for row in rows if row["algorithm"] == "exact" and row["problem"] == problem),
            key=lambda row: row["tuples"],
        )
        evaluations = [row["evaluations"] for row in exact_rows]
        assert evaluations == sorted(evaluations)
