"""Figure 8: result quality while varying the number of tagging tuples.

Runs the same bins as Figure 7 and records the quality metric per bin;
the expected shape is that the heuristics' quality stays comparable to
Exact across every bin (the paper's Figure 8).
"""

from __future__ import annotations

from repro.experiments.figures import figure_8_scaling_quality, run_scaling_experiment


def test_fig8_scaling_quality(benchmark, config, environment, write_artifact):
    rows = benchmark.pedantic(
        run_scaling_experiment, args=(config,), rounds=1, iterations=1
    )
    figure = figure_8_scaling_quality(config, rows=rows)
    write_artifact("fig8_scaling_quality", figure.render())

    assert len(rows) == 4 * len(config.scaling_bins)
    # Per bin and problem, compare heuristic quality against Exact.
    by_key = {}
    for row in rows:
        by_key.setdefault((row["tuples"], row["problem"]), {})[row["algorithm"]] = row
    comparable = 0
    for (tuples, problem), algorithms in by_key.items():
        exact = algorithms.get("exact")
        heuristic = algorithms.get("sm-lsh-fo") or algorithms.get("dv-fdp-fo")
        assert exact is not None and heuristic is not None
        if exact["quality"] is not None and heuristic["quality"] is not None:
            comparable += 1
            if problem == "problem-1":
                # Similarity goal: heuristic quality close to Exact's optimum.
                assert heuristic["quality"] >= 0.6 * exact["quality"]
            else:
                # Diversity goal: heuristic similarity not wildly above Exact's.
                assert heuristic["quality"] <= exact["quality"] + 0.3
    assert comparable >= len(config.scaling_bins)
