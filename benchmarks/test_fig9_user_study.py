"""Figure 9: the user study comparing the six problem instantiations.

The AMT study is simulated (see DESIGN.md, substitution table); the
regenerated artefact is the per-problem preference percentage, and the
expected shape is the paper's: Problems 2, 3 and 6 -- the instances
applying diversity to exactly one tagging component -- are preferred.
"""

from __future__ import annotations

from repro.experiments.figures import figure_9_user_study


def test_fig9_user_study(benchmark, config, write_artifact):
    figure = benchmark.pedantic(
        figure_9_user_study, args=(config,), rounds=1, iterations=1
    )
    write_artifact("fig9_user_study", figure.render(columns=["problem", "votes", "preference_pct"]))

    outcome = figure.extra["outcome"]
    assert sum(outcome.votes.values()) == config.user_study_judges * 3
    assert set(outcome.top_problems(3)) == {2, 3, 6}
    percentages = outcome.preference_percentages
    assert abs(sum(percentages.values()) - 100.0) < 1e-6
    # Every instance receives some attention but the preferred three dominate.
    assert sum(percentages[p] for p in (2, 3, 6)) > 60.0
