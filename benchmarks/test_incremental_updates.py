"""Extension benchmark: incremental inserts vs. full re-preparation.

The paper's future work announces support for updates and insertions of
new users, items and tags.  This benchmark measures the cost of
absorbing a burst of new tagging actions with
:class:`repro.core.incremental.IncrementalTagDM` against re-running the
full enumeration + summarisation pipeline, and checks that the
incrementally maintained groups match a from-scratch enumeration.
"""

from __future__ import annotations

import pytest

from repro.core.enumeration import GroupEnumerationConfig
from repro.core.framework import TagDM
from repro.core.incremental import IncrementalTagDM
from repro.dataset.synthetic import generate_movielens_style
from repro.experiments.reporting import render_figure

BURST_SIZE = 50

_rows = []


def _base_dataset():
    return generate_movielens_style(n_users=100, n_items=200, n_actions=2500, seed=13)


def _burst(dataset):
    return [
        {
            "user_id": dataset.user_of(row),
            "item_id": dataset.item_of(row),
            "tags": ["burst-tag", f"extra-{row % 7}"],
        }
        for row in range(BURST_SIZE)
    ]


def test_incremental_insert_burst(benchmark):
    session = IncrementalTagDM(
        _base_dataset(),
        enumeration=GroupEnumerationConfig(min_support=5),
        signature_backend="frequency",
    ).prepare()
    burst = _burst(session.dataset)

    report = benchmark.pedantic(session.add_actions, args=(burst,), rounds=1, iterations=1)
    assert report.actions_added == BURST_SIZE
    assert session.consistency_errors() == []
    _rows.append(
        {
            "strategy": "incremental",
            "actions": BURST_SIZE,
            "groups_after": session.n_groups,
            "groups_updated": report.groups_updated,
            "groups_created": report.groups_created,
        }
    )


def test_full_reprepare_baseline(benchmark):
    dataset = _base_dataset()
    # Apply the same burst directly to the dataset, then re-prepare from scratch.
    for action in _burst(dataset):
        dataset.add_action(action["user_id"], action["item_id"], action["tags"])

    def reprepare():
        return TagDM(
            dataset,
            enumeration=GroupEnumerationConfig(min_support=5),
            signature_backend="frequency",
        ).prepare()

    session = benchmark.pedantic(reprepare, rounds=1, iterations=1)
    _rows.append(
        {
            "strategy": "full re-prepare",
            "actions": BURST_SIZE,
            "groups_after": session.n_groups,
            "groups_updated": None,
            "groups_created": None,
        }
    )


def test_incremental_report(benchmark, write_artifact):
    rows = benchmark.pedantic(lambda: list(_rows), rounds=1, iterations=1)
    assert len(rows) == 2
    by_strategy = {row["strategy"]: row for row in rows}
    # Both maintenance strategies must end with the same number of groups.
    assert (
        by_strategy["incremental"]["groups_after"]
        == by_strategy["full re-prepare"]["groups_after"]
    )
    write_artifact(
        "incremental_updates",
        render_figure("Extension: incremental inserts vs full re-preparation", rows),
    )
