"""Table 1: the six concrete TagDM problem instantiations."""

from __future__ import annotations

from repro.core.problem import TABLE1_PROBLEMS, enumerate_problem_instances
from repro.experiments.figures import table_1_problem_instances


def test_table1_problem_instances(benchmark, write_artifact):
    figure = benchmark.pedantic(table_1_problem_instances, rounds=1, iterations=1)
    assert len(figure.rows) == 6
    # All six constrain users and items and optimise tags, as in the paper.
    assert all(row["C"] == "U,I" and row["O"] == "T" for row in figure.rows)
    # Rows 1-3 optimise tag similarity, rows 4-6 tag diversity.
    assert [row["tag"] for row in figure.rows] == [
        "similarity",
        "similarity",
        "similarity",
        "diversity",
        "diversity",
        "diversity",
    ]
    write_artifact("table1_instances", figure.render())


def test_framework_instance_enumeration(benchmark, write_artifact):
    """The wider framework: enumerate every concrete problem instance."""
    problems = benchmark.pedantic(enumerate_problem_instances, rounds=1, iterations=1)
    assert len(problems) == 98
    assert len(TABLE1_PROBLEMS) == 6
    lines = [problem.name for problem in problems]
    write_artifact("framework_instances", "\n".join(lines))
