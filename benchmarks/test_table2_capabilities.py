"""Table 2: summary of TagDM problem solutions (algorithm capabilities)."""

from __future__ import annotations

from repro.algorithms.capabilities import recommend_algorithm
from repro.core.problem import table1_problem
from repro.experiments.figures import table_2_capabilities


def test_table2_capabilities(benchmark, write_artifact):
    figure = benchmark.pedantic(table_2_capabilities, rounds=1, iterations=1)
    assert len(figure.rows) == 6
    assert {row["algorithm"] for row in figure.rows} == {"LSH based", "FDP based"}
    # Cross-check the matrix against the recommendation rule used by
    # TagDM's algorithm="auto" mode.
    assert recommend_algorithm(table1_problem(1)).startswith("sm-lsh")
    assert recommend_algorithm(table1_problem(6)).startswith("dv-fdp")
    write_artifact("table2_capabilities", figure.render())
