"""Reproduce the Section 6.2 qualitative evaluation artefacts.

Runs the two case-study queries (who disagrees about one genre; where do
similar users disagree) and the simulated user study comparing the six
Table 1 problem instantiations (Figure 9), then prints both.

Run with:  python examples/case_studies.py
"""

from repro.analysis import SimulatedUserStudy
from repro.analysis.casestudy import render_case_study
from repro.experiments import ExperimentConfig
from repro.experiments.figures import case_studies, figure_9_user_study


def main() -> None:
    config = ExperimentConfig.quick()

    print("### Case studies (Section 6.2.1)\n")
    for study in case_studies(config):
        print(render_case_study(study))
        print()

    print("### Simulated user study (Figure 9 / Section 6.2.2)\n")
    figure = figure_9_user_study(config)
    print(figure.render(columns=["problem", "votes", "preference_pct"]))
    outcome = figure.extra["outcome"]
    preferred = ", ".join(f"problem {p}" for p in outcome.top_problems(3))
    print(f"\nmost preferred instances: {preferred}")
    print(
        "(the paper's AMT study prefers Problems 2, 3 and 6 -- the instances "
        "applying diversity to exactly one tagging component)"
    )

    # The study object is reusable with different populations:
    larger = SimulatedUserStudy(n_judges=100, seed=4).run()
    print(f"\nwith 100 simulated judges the ranking is {larger.ranked_problems()}")


if __name__ == "__main__":
    main()
