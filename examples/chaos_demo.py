"""Chaos drill: seeded faults against a live fleet, exactly-once audit.

Starts a two-worker :class:`~repro.serving.fleet.TagDMFleet` with a
deterministic :class:`~repro.serving.reliability.FaultPlan` armed inside
every worker process:

* **SIGKILL** the worker that owns ``books`` at the moment it has
  applied the third keyed insert -- *after* the batch (and its
  ``Idempotency-Key`` dedup record) committed, *before* the response
  was written.  That is the nastiest window for an insert: the client
  cannot tell "applied" from "lost".
* **SIGKILL** the ``books`` owner a second time inside its
  subscription evaluator, at ``subs.pre_notify`` -- after a standing
  query was re-solved, *before* its diff reached the delivery ledger.
  That is the at-least-once/exactly-once seam for subscriptions: the
  evaluation is lost, the respawned worker's bootstrap replays it, and
  the ledger's watermark guard must keep visible delivery exactly
  once.
* **Slow solves** (injected sleeps at ``shard.solve``) so recovery is
  exercised under mixed latency, not idle traffic.

Every insert goes through the router with an ``Idempotency-Key``, so
the ambiguous retry after the kill must *deduplicate* on the respawned,
warm-started worker.  The drill then audits the authoritative store
counts: ``lost = expected - actual`` and ``duplicated = actual -
expected`` must both be zero, every client call must have succeeded,
and a post-kill solve must be bit-identical to an in-process mirror
session that applied the same batches exactly once with no faults.
The subscription audit is the metamorphic replay contract: the diff
ledger's seqs must be contiguous from 1 (``lost=0`` / ``dup=0``) and
composing the delivered chain from an empty result must byte-match
the fault-free mirror's solve over the final corpus.

Run with::

    PYTHONPATH=src python examples/chaos_demo.py            # full drill
    PYTHONPATH=src python examples/chaos_demo.py --smoke    # CI gate: strict exit code

Smoke mode must finish in well under two minutes and exit 0 only when
the exactly-once audit is clean.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro import (  # noqa: E402
    AdmissionPolicy,
    FaultPlan,
    FaultRule,
    HttpClient,
    LocalClient,
    ProblemSpec,
    TagDMFleet,
    generate_movielens_style,
    table1_problem,
)
from repro.api.diff import (  # noqa: E402
    ResultDiff,
    apply_diff,
    comparable_payload,
    payloads_equal,
)
from repro.core.enumeration import GroupEnumerationConfig  # noqa: E402
from repro.core.incremental import IncrementalTagDM  # noqa: E402
from repro.core.witness import get_witness, witness_enabled  # noqa: E402

SEED = 7
ENUMERATION = GroupEnumerationConfig(min_support=5, max_groups=60)


def groups_key(result):
    return [(str(group.description), group.tuple_indices) for group in result.groups]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke mode: small traffic, strict exit code",
    )
    args = parser.parse_args(argv)

    n_inserts, n_solves = (8, 3) if args.smoke else (30, 10)
    kill_at_insert = 3  # SIGKILL after this many keyed inserts applied

    root = Path(tempfile.mkdtemp(prefix="tagdm-chaos-"))
    datasets = {
        "movies": generate_movielens_style(n_users=60, n_items=120, n_actions=600, seed=SEED),
        "books": generate_movielens_style(n_users=40, n_items=80, n_actions=500, seed=SEED + 1),
    }
    initial_books = datasets["books"].n_actions

    plan = FaultPlan(
        [
            # The tentpole fault: kill the books owner right after the
            # Nth insert applied (absolute count trigger) but before it
            # answered.  once=True latches across respawns, so the
            # deduplicating retry does not re-trigger it.
            FaultRule(
                "insert.applied",
                "kill",
                when_actions=initial_books + kill_at_insert,
                once=True,
            ),
            # The subscription fault: kill the books owner inside its
            # evaluator on the very first subs.pre_notify -- the standing
            # query's initial snapshot was solved and diffed but not yet
            # committed to the delivery ledger.  The respawned worker's
            # bootstrap must replay the evaluation; once=True keeps the
            # replay from re-triggering the kill.
            FaultRule("subs.pre_notify", "kill", at=1, once=True),
            # Background misery: a few solves run slow.
            FaultRule("shard.solve", "sleep", times=3, sleep_seconds=0.05),
        ],
        seed=SEED,
        state_dir=root / "chaos-latches",
    )

    fleet = TagDMFleet(
        root,
        n_workers=2,
        enumeration=ENUMERATION,
        seed=SEED,
        pins={"movies": "worker-0", "books": "worker-1"},
        spawn_timeout=300.0,
        admission=AdmissionPolicy(
            max_queue_depth=256, max_inflight_solves=16, retry_after_seconds=1.0
        ),
        fault_plan=plan,
        heartbeat_interval=0.5,
    )
    for name, dataset in datasets.items():
        fleet.add_corpus(name, dataset)
    started = time.perf_counter()
    fleet.start()
    print(
        f"fleet up in {time.perf_counter() - started:.1f}s at {fleet.url}; "
        f"fault plan: kill books owner at insert #{kill_at_insert}, slow solves"
    )

    client = HttpClient(fleet.url, request_timeout=300.0)
    owner = fleet.placement.owner_of("books")

    shard_spec = ProblemSpec.from_problem(
        table1_problem(1, k=4, min_support=5), algorithm="sm-lsh-fo"
    )

    # Register the standing query first: its initial-snapshot evaluation
    # trips the subs.pre_notify SIGKILL (diff computed, ledger write
    # never ran).  The supervisor respawns the owner, whose bootstrap
    # re-notifies the current view and replays the evaluation -- wait
    # for seq 1 to prove the at-least-once half before the insert storm.
    client.register_subscription(
        "books",
        shard_spec,
        owner="chaos-drill",
        subscription_id="standing-books",
        idempotency_key="chaos-sub-1",
    )
    first_diff_seen = False
    sub_deadline = time.monotonic() + 120.0
    while time.monotonic() < sub_deadline:
        try:
            if client.poll_subscription("books", "standing-books")["diffs"]:
                first_diff_seen = True
                break
        except Exception:
            pass  # owner mid-respawn: the router will shield retries
        time.sleep(0.1)
    print(
        "subscription 'standing-books' registered; initial evaluation "
        f"killed at subs.pre_notify, replayed after respawn={first_diff_seen}"
    )

    restarts_before = fleet.stats()["workers"][owner]["restarts"]

    # Mixed traffic: keyed inserts into 'books' (the insert that crosses
    # the trigger count SIGKILLs the owner mid-request) + solves.
    errors: list = []
    dataset = datasets["books"]
    batches = [
        [
            {
                "user_id": dataset.user_of(index % initial_books),
                "item_id": dataset.item_of(index % initial_books),
                "tags": [f"chaos-{index}"],
            }
        ]
        for index in range(n_inserts)
    ]

    def solver() -> None:
        try:
            for index in range(n_solves):
                client_bg = HttpClient(fleet.url, request_timeout=300.0)
                try:
                    client_bg.solve("books" if index % 2 else "movies", shard_spec)
                finally:
                    client_bg.close()
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    solve_thread = threading.Thread(target=solver)
    solve_thread.start()
    reports = []
    insert_started = time.perf_counter()
    try:
        for index, batch in enumerate(batches):
            reports.append(
                client.insert("books", batch, idempotency_key=f"chaos-insert-{index}")
            )
    except Exception as exc:  # pragma: no cover - failure path
        errors.append(exc)
    solve_thread.join(timeout=300.0)
    elapsed = time.perf_counter() - insert_started
    deduplicated = sum(1 for report in reports if report.deduplicated)
    print(
        f"{len(reports)} keyed inserts + {n_solves} solves in {elapsed:.1f}s "
        f"({deduplicated} answered from the dedup log after the kill)"
    )

    # The owner must have died and been respawned by the supervisor.
    respawned = False
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        worker_stats = fleet.stats()["workers"][owner]
        if worker_stats["alive"] and worker_stats["restarts"] > restarts_before:
            respawned = True
            break
        time.sleep(0.05)

    # Exactly-once audit against the authoritative store count, plus
    # parity against a fault-free in-process mirror that applied the
    # same batches exactly once.
    stats = client.stats("books")
    expected = initial_books + n_inserts
    actual = int(stats["actions"])
    lost = max(0, expected - actual)
    duplicated = max(0, actual - expected)
    post_kill = client.solve("books", shard_spec)
    mirror = LocalClient(
        {
            "books": IncrementalTagDM(
                datasets["books"], enumeration=ENUMERATION, seed=SEED
            ).prepare()
        }
    )
    for batch in batches:
        mirror.insert("books", batch)
    parity = groups_key(post_kill) == groups_key(mirror.solve("books", shard_spec))

    # Subscription audit: wait for the evaluator to cover the final
    # watermark (the corpus action count), then check the metamorphic
    # replay contract on the delivered ledger.
    watermark_reached = False
    sub_deadline = time.monotonic() + 120.0
    while time.monotonic() < sub_deadline:
        rows = {r["subscription_id"]: r for r in client.subscriptions("books")}
        if rows.get("standing-books", {}).get("last_watermark", -1) >= expected:
            watermark_reached = True
            break
        time.sleep(0.1)
    ledger = client.poll_subscription("books", "standing-books")["diffs"]
    seqs = [entry["seq"] for entry in ledger]
    sub_lost = len(set(range(1, (max(seqs) if seqs else 0) + 1)) - set(seqs))
    sub_dup = len(seqs) - len(set(seqs))
    composed = None
    for entry in ledger:
        composed = apply_diff(ResultDiff.from_dict(entry["diff"]), composed)
    sub_parity = payloads_equal(
        composed, comparable_payload(mirror.solve("books", shard_spec).to_dict())
    )
    print(
        f"subscription audit: {len(seqs)} diffs delivered, watermark "
        f"reached {expected}={watermark_reached} -> lost={sub_lost} "
        f"dup={sub_dup}, diff-chain replay parity={sub_parity}"
    )

    router_stats = fleet.router.stats()
    print(
        f"audit: expected {expected} actions, store has {actual} "
        f"-> lost={lost} duplicated={duplicated}; "
        f"owner respawned={respawned} (start_mode={stats['start_mode']}), "
        f"solve parity={parity}"
    )
    print(
        f"router: {router_stats['requests_forwarded']} forwarded, "
        f"{router_stats['forward_retries']} retries, "
        f"{router_stats['workers_unavailable']} gave up, "
        f"{router_stats['heartbeat_probes']} heartbeat probes, "
        f"breakers {router_stats['breakers']}"
    )

    client.close()
    fleet.close()

    killed = any(worker["restarts"] > 0 for worker in fleet.stats()["workers"].values())

    # With TAGDM_LOCK_WITNESS=1 (the CI chaos job), every named lock
    # acquisition in this supervisor process was recorded; any ordering
    # inversion against the canonical hierarchy fails the drill.
    witness_clean = True
    if witness_enabled():
        inversions = get_witness().inversions()
        witness_clean = not inversions
        for report in inversions:
            print(f"LOCK-ORDER INVERSION:\n{report}")
        print(
            f"lock-order witness: {len(get_witness().edges())} edges, "
            f"{len(inversions)} inversions"
        )

    ok = (
        not errors
        and lost == 0
        and duplicated == 0
        and killed
        and respawned
        and parity
        and len(reports) == n_inserts
        and witness_clean
        and first_diff_seen
        and watermark_reached
        and sub_lost == 0
        and sub_dup == 0
        and sub_parity
    )
    for error in errors:
        print(f"ERROR: {type(error).__name__}: {error}")
    print("OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
