"""Bookmark tagging analysis on a Delicious-style corpus.

del.icio.us is one of the motivating sites of the paper's introduction.
This example shows that the framework is schema-agnostic: the same API
runs on a bookmark corpus whose users are described by expertise/region
and whose items are web pages described by domain/page type.  We ask two
questions: which expertise groups tag similar domains with diverse tags
(do novices and experts describe the same content differently?), and
which similar groups agree most in their tagging.

Run with:  python examples/delicious_bookmarks.py
"""

from repro import TagDM, table1_problem
from repro.dataset import DeliciousStyleConfig, generate_delicious_style
from repro.text import build_tag_cloud, render_tag_cloud


def main() -> None:
    dataset = generate_delicious_style(
        DeliciousStyleConfig(n_users=200, n_bookmarks=500, n_actions=4000, seed=3)
    )
    print(f"dataset: {dataset}")

    session = TagDM(dataset, signature_backend="tfidf").prepare()
    print(f"candidate groups: {session.n_groups}\n")
    support = session.default_support()

    # Problem 3: diverse user groups, similar items, maximise tag
    # similarity -- "who are the different groups that still agree?"
    agreement = session.solve(
        table1_problem(3, k=3, min_support=support), algorithm="sm-lsh-fo"
    )
    print(agreement.summary())
    print()

    # Problem 6: similar user groups, similar items, maximise tag
    # diversity -- "where do similar users disagree?"
    disagreement = session.solve(
        table1_problem(6, k=3, min_support=support), algorithm="dv-fdp-fo"
    )
    print(disagreement.summary())
    print()

    # Render the tag clouds of the disagreeing groups for inspection.
    for group in disagreement.groups:
        cloud = build_tag_cloud(group.tags, title=str(group.description), max_tags=12)
        print(render_tag_cloud(cloud))
        print()


if __name__ == "__main__":
    main()
