"""Run a multi-process TagDM serving fleet, kill a worker, prove recovery.

Starts a :class:`~repro.serving.fleet.TagDMFleet` -- two worker
processes behind one :class:`~repro.serving.router.TagDMRouter` -- over
a scratch root with two corpora, drives mixed insert/solve traffic
through the router and through a placement-aware
:class:`~repro.api.client.FleetClient`, then SIGKILLs one worker while
traffic is in flight and asserts the fleet heals: the supervisor
respawns the worker (warm-started from its corpus's snapshot
directory), the router rides out the gap by retrying, and a post-kill
solve is bit-identical to the in-process baseline.

Run with::

    PYTHONPATH=src python examples/fleet_demo.py            # demo traffic
    PYTHONPATH=src python examples/fleet_demo.py --smoke    # CI smoke: strict exit code

Smoke mode is a CI gate: it must finish in well under a minute, raise
nothing across threads, survive the worker kill, and exit 0 only when
routed, direct-to-worker and in-process solves all bit-identically
agree.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro import (  # noqa: E402
    FleetClient,
    HttpClient,
    LocalClient,
    ProblemSpec,
    TagDM,
    TagDMFleet,
    generate_movielens_style,
    table1_problem,
)
from repro.core.enumeration import GroupEnumerationConfig  # noqa: E402

SEED = 7
ENUMERATION = GroupEnumerationConfig(min_support=5, max_groups=60)


def groups_key(result):
    return [(str(group.description), group.tuple_indices) for group in result.groups]


def drive(router_url: str, datasets, spec, n_inserts: int, n_solves: int) -> list:
    """Concurrent traffic via the router: solves on both corpora, inserts
    on 'books' only ('movies' must stay pristine for the parity checks
    against the pre-traffic in-process baseline)."""
    errors: list = []
    corpora = sorted(datasets)
    barrier = threading.Barrier(2)

    def inserter() -> None:
        client = HttpClient(router_url, request_timeout=120.0)
        dataset = datasets["books"]
        try:
            barrier.wait()
            for index in range(n_inserts):
                row = index % dataset.n_actions
                client.insert_action(
                    "books", dataset.user_of(row), dataset.item_of(row), [f"fleet-{index}"]
                )
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)
        finally:
            client.close()

    def solver() -> None:
        client = HttpClient(router_url, request_timeout=120.0)
        try:
            barrier.wait()
            for index in range(n_solves):
                client.solve(corpora[index % len(corpora)], spec)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)
        finally:
            client.close()

    threads = [threading.Thread(target=inserter), threading.Thread(target=solver)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke mode: small traffic, strict exit code",
    )
    args = parser.parse_args(argv)

    n_inserts, n_solves = (10, 4) if args.smoke else (60, 16)
    root = Path(tempfile.mkdtemp(prefix="tagdm-fleet-"))
    datasets = {
        "movies": generate_movielens_style(n_users=60, n_items=120, n_actions=600, seed=SEED),
        "books": generate_movielens_style(n_users=40, n_items=80, n_actions=500, seed=SEED + 1),
    }

    # In-process baseline for the parity checks (prepared over the same
    # dataset + config the fleet ingests, before any inserts land).
    baseline_session = TagDM(datasets["movies"], enumeration=ENUMERATION, seed=SEED).prepare()
    problem = table1_problem(1, k=4, min_support=baseline_session.default_support())
    spec = ProblemSpec.from_problem(problem, algorithm="sm-lsh-fo")
    baseline = LocalClient({"movies": baseline_session}).solve("movies", spec)

    fleet = TagDMFleet(
        root,
        n_workers=2,
        enumeration=ENUMERATION,
        seed=SEED,
        pins={"movies": "worker-0", "books": "worker-1"},
        spawn_timeout=300.0,
    )
    for name, dataset in datasets.items():
        fleet.add_corpus(name, dataset)
    started = time.perf_counter()
    fleet.start()
    print(
        f"fleet up in {time.perf_counter() - started:.1f}s at {fleet.url}; "
        f"placement {fleet.placement.assignments()}"
    )

    routed = HttpClient(fleet.url, request_timeout=300.0)
    direct = FleetClient(fleet.url, request_timeout=300.0)

    # Pre-kill parity: routed == direct-to-worker == in-process.
    via_router = routed.solve("movies", spec)
    via_worker = direct.solve("movies", spec)
    parity_before = (
        groups_key(via_router) == groups_key(via_worker) == groups_key(baseline)
        and via_router.objective_value == baseline.objective_value
    )
    print(
        f"parity routed/direct/in-process: {parity_before} "
        f"(objective {via_router.objective_value:.4f}, {len(via_router.groups)} groups)"
    )

    started = time.perf_counter()
    errors = drive(fleet.url, datasets, spec, n_inserts, n_solves)
    elapsed = time.perf_counter() - started
    print(
        f"{n_inserts} inserts + {n_solves} solves through the router "
        f"in {elapsed:.2f}s ({(n_inserts + n_solves) / elapsed:.0f} req/s)"
    )

    # Kill the worker that owns 'movies' while a solve is in flight.
    owner = fleet.placement.owner_of("movies")
    restarts_before = fleet.stats()["workers"][owner]["restarts"]
    kill_outcome = {}

    def solve_through_the_kill() -> None:
        try:
            kill_outcome["result"] = routed.solve("movies", spec)
        except Exception as exc:  # pragma: no cover - failure path
            kill_outcome["error"] = exc

    solver = threading.Thread(target=solve_through_the_kill)
    solver.start()
    time.sleep(0.05)
    fleet.kill_worker(owner)
    print(f"killed {owner} mid-traffic...")
    solver.join(timeout=300.0)

    recovered = False
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        worker_stats = fleet.stats()["workers"][owner]
        if worker_stats["alive"] and worker_stats["restarts"] > restarts_before:
            recovered = True
            break
        time.sleep(0.05)

    post_kill = routed.solve("movies", spec)
    corpus_stats = routed.stats("movies")
    parity_after = (
        "result" in kill_outcome
        and groups_key(kill_outcome["result"]) == groups_key(baseline)
        and groups_key(post_kill) == groups_key(baseline)
    )
    print(
        f"recovery: respawned={recovered} "
        f"(restarts {fleet.stats()['workers'][owner]['restarts']}), "
        f"start_mode={corpus_stats['start_mode']}, "
        f"in-flight + post-kill parity={parity_after}"
    )
    if "error" in kill_outcome:
        print(f"ERROR: in-flight solve raised {kill_outcome['error']!r}")

    router_stats = fleet.router.stats()
    print(
        f"router: {router_stats['requests_forwarded']} forwarded, "
        f"{router_stats['forward_retries']} retries, "
        f"{router_stats['workers_unavailable']} gave up"
    )

    routed.close()
    direct.close()
    fleet.close()

    ok = (
        not errors
        and parity_before
        and parity_after
        and recovered
        and "error" not in kill_outcome
        and str(corpus_stats["start_mode"]).startswith("warm")
    )
    for error in errors:
        print(f"ERROR: {type(error).__name__}: {error}")
    print("OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
