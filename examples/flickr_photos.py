"""Photo tagging analysis on a Flickr-style corpus.

Flickr is the other motivating site of the paper's abstract.  The corpus
here describes users by camera segment and country and photos by scene
and season; serious-camera users sprinkle technique jargon into their
tags, so camera-defined user groups genuinely differ in tag space.  The
example mines which camera segments tag the same scenes differently and
prints a per-group tag cloud comparison.

Run with:  python examples/flickr_photos.py
"""

from repro import TagDM, Constraint, Criterion, Dimension, Objective, TagDMProblem
from repro.dataset import FlickrStyleConfig, generate_flickr_style
from repro.text import build_tag_cloud


def main() -> None:
    dataset = generate_flickr_style(
        FlickrStyleConfig(n_users=150, n_photos=500, n_actions=3500, seed=5)
    )
    print(f"dataset: {dataset}")

    session = TagDM(dataset, signature_backend="frequency").prepare()
    print(f"candidate groups: {session.n_groups}\n")

    # A custom problem built directly against the framework API (not one
    # of the six Table 1 presets): diverse user groups, similar photos,
    # maximise tag diversity, return exactly two groups.
    problem = TagDMProblem(
        name="flickr-disagreement",
        constraints=(
            Constraint(Dimension.USERS, Criterion.DIVERSITY, 0.3),
            Constraint(Dimension.ITEMS, Criterion.SIMILARITY, 0.5),
        ),
        objectives=(Objective(Dimension.TAGS, Criterion.DIVERSITY),),
        k_lo=2,
        k_hi=2,
        min_support=session.default_support(),
    )
    result = session.solve(problem, algorithm="dv-fdp-fo")
    print(result.summary())
    print()

    if len(result.groups) == 2:
        cloud_a = build_tag_cloud(result.groups[0].tags, title=str(result.groups[0].description))
        cloud_b = build_tag_cloud(result.groups[1].tags, title=str(result.groups[1].description))
        shared = cloud_a.overlap(cloud_b, n=15)
        only_a = cloud_a.difference(cloud_b, n=15)
        only_b = cloud_b.difference(cloud_a, n=15)
        print(f"shared tags: {', '.join(shared[:8]) or '(none)'}")
        print(f"distinctive for {result.groups[0].description}: {', '.join(only_a[:8]) or '(none)'}")
        print(f"distinctive for {result.groups[1].description}: {', '.join(only_b[:8]) or '(none)'}")


if __name__ == "__main__":
    main()
