"""HTAP soak: solve loop under a sustained insert storm, parity audit.

Stands up a :class:`~repro.serving.server.TagDMServer` over one corpus
and soaks its delta+main shard for ~30 seconds of genuinely interleaved
traffic:

* **writer threads** push single-action inserts as fast as they are
  acknowledged -- each ack means the action is durable in the store and
  (under the default fold-per-batch :class:`~repro.serving.policy.
  MergePolicy`) visible to the very next solve;
* **solver threads** call ``shard.solve`` in a tight loop the whole
  time, recording per-call latency.  Solves pin the published immutable
  view by epoch, so no insert -- applying, folding, or snapshotting --
  may ever block or error one.

The soak passes only when *every* solve succeeded, the shard actually
folded (``merge_count >= 1`` with ``epoch == merge_count + 1``), and a
post-storm solve on the merged view is bit-identical to a fresh session
serially replaying the committed insert order.

Run with::

    PYTHONPATH=src python examples/htap_demo.py            # full soak
    PYTHONPATH=src python examples/htap_demo.py --smoke    # CI gate: strict exit code

Smoke mode soaks for ~30 seconds and exits 0 only when the audit is
clean.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro import generate_movielens_style, table1_problem  # noqa: E402
from repro.core.enumeration import GroupEnumerationConfig  # noqa: E402
from repro.core.incremental import IncrementalTagDM  # noqa: E402
from repro.core.witness import get_witness, witness_enabled  # noqa: E402
from repro.serving import SnapshotRotationPolicy, TagDMServer  # noqa: E402

SEED = 13
ENUMERATION = GroupEnumerationConfig(min_support=5, max_groups=60)


def fresh_dataset(n_actions: int):
    return generate_movielens_style(
        n_users=60, n_items=120, n_actions=n_actions, seed=SEED
    )


def result_key(result):
    """Everything a bit-identical solve comparison needs."""
    return (
        result.feasible,
        result.objective_value,
        tuple(group.description for group in result.groups),
        tuple(group.tuple_indices for group in result.groups),
    )


def percentile(latencies, q: float) -> float:
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index] * 1000.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke mode: ~30s soak, strict exit code",
    )
    args = parser.parse_args(argv)

    soak_seconds = 30.0 if args.smoke else 60.0
    n_actions = 600 if args.smoke else 1500
    n_writers, n_solvers = (2, 2) if args.smoke else (4, 2)

    base = fresh_dataset(n_actions)
    initial = base.n_actions
    root = Path(tempfile.mkdtemp(prefix="tagdm-htap-"))
    server = TagDMServer(
        root,
        policy=SnapshotRotationPolicy(every_inserts=200, keep_last=2),
        enumeration=ENUMERATION,
        seed=SEED,
    )
    started = time.perf_counter()
    shard = server.add_corpus("events", base)
    problem = table1_problem(1, k=3, min_support=shard.session.default_support())
    warm_key = result_key(shard.solve(problem, algorithm="sm-lsh-fo"))
    print(
        f"shard warm in {time.perf_counter() - started:.1f}s "
        f"({initial} actions, epoch {shard.stats()['epoch']}); "
        f"soaking {soak_seconds:.0f}s with {n_writers} writers + {n_solvers} solvers"
    )

    errors: list = []
    latencies: list = []
    latency_lock = threading.Lock()
    storm_done = threading.Event()
    deadline = time.monotonic() + soak_seconds
    applied = [0] * n_writers

    def writer(label: int) -> None:
        try:
            index = 0
            while time.monotonic() < deadline:
                shard.insert(
                    user_id=base.user_of((index * 7 + label) % initial),
                    item_id=base.item_of((index * 11 + label) % initial),
                    tags=(f"storm-{label}-{index}", "htap"),
                    rating=float(index % 5),
                )
                applied[label] += 1
                index += 1
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def solver() -> None:
        try:
            while True:
                begin = time.perf_counter()
                shard.solve(problem, algorithm="sm-lsh-fo")
                elapsed = time.perf_counter() - begin
                with latency_lock:
                    latencies.append(elapsed)
                if storm_done.is_set():
                    break
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    solve_threads = [threading.Thread(target=solver) for _ in range(n_solvers)]
    write_threads = [
        threading.Thread(target=writer, args=(label,)) for label in range(n_writers)
    ]
    storm_started = time.perf_counter()
    for thread in solve_threads + write_threads:
        thread.start()
    for thread in write_threads:
        thread.join()
    storm_done.set()
    for thread in solve_threads:
        thread.join()
    wall = time.perf_counter() - storm_started

    shard.flush()
    stats = shard.stats()
    n_inserts = sum(applied)
    print(
        f"{n_inserts} inserts + {len(latencies)} solves in {wall:.1f}s "
        f"({n_inserts / wall:.1f} inserts/s); solve p50 "
        f"{percentile(latencies, 0.50):.1f}ms p99 {percentile(latencies, 0.99):.1f}ms"
    )
    print(
        f"shard: epoch {stats['epoch']}, merges {stats['merge_count']}, "
        f"delta {stats['delta_size']}, merge failures {stats['merge_failures']}, "
        f"rotations {stats['snapshot_rotations']}"
    )

    # Merged-view parity: the folded shard must match a fresh session
    # serially replaying the committed insert order.
    merged_key = result_key(shard.solve(problem, algorithm="sm-lsh-fo"))
    served = shard.session.dataset
    replay = IncrementalTagDM(
        fresh_dataset(n_actions), enumeration=ENUMERATION, seed=SEED
    ).prepare()
    for row in range(initial, served.n_actions):
        replay.add_action(
            served.user_of(row), served.item_of(row), served.tags_of(row),
            served.rating_of(row),
        )
    parity = merged_key == result_key(replay.solve(problem, algorithm="sm-lsh-fo"))
    drifted = merged_key != warm_key  # the storm must have moved the answer's inputs
    print(
        f"audit: committed {served.n_actions - initial} of {n_inserts} acked inserts, "
        f"merged-view parity={parity}"
    )

    # Determinism drill: the same seeded problem solved again (twice) on
    # the merged view must be byte-identical to the first post-storm
    # solve.  Any hidden global state on the solve path -- an unseeded
    # RNG, set-order tie-breaks, a wall-clock read (the DT6xx lint's
    # prey) -- shows up here as a key mismatch.
    duplicate_keys = [
        result_key(shard.solve(problem, algorithm="sm-lsh-fo")) for _ in range(2)
    ]
    deterministic = all(key == merged_key for key in duplicate_keys)
    print(f"determinism drill: 3 identical solves match={deterministic}")

    server.close()
    for error in errors:
        print(f"ERROR: {type(error).__name__}: {error}")

    # With TAGDM_LOCK_WITNESS=1 (the CI HTAP job), the storm above
    # exercised the shard's submit/maintenance/merge/stats locks under
    # real contention; any ordering inversion fails the demo.
    witness_clean = True
    if witness_enabled():
        inversions = get_witness().inversions()
        witness_clean = not inversions
        for report in inversions:
            print(f"LOCK-ORDER INVERSION:\n{report}")
        print(
            f"lock-order witness: {len(get_witness().edges())} edges, "
            f"{len(inversions)} inversions"
        )

    ok = (
        not errors
        and parity
        and deterministic
        and n_inserts > 0
        and len(latencies) >= n_solvers
        and served.n_actions - initial == n_inserts
        and int(stats["merge_count"]) >= 1
        and int(stats["merge_failures"]) == 0
        and int(stats["delta_size"]) == 0
        and int(stats["epoch"]) == int(stats["merge_count"]) + 1
        and witness_clean
    )
    if not drifted:
        # Not a failure -- a tiny storm can leave the optimum unchanged --
        # but worth surfacing: parity proved less than it could have.
        print("note: solve result identical before and after the storm")
    print("OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
