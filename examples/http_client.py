"""Drive the TagDM HTTP front-end with concurrent wire clients.

Starts a :class:`~repro.serving.server.TagDMServer` over a scratch
directory, puts the :class:`~repro.serving.http.TagDMHttpServer`
front-end on a loopback port, and drives it the way remote callers
would: insert clients and solve clients on separate threads, each
speaking the wire-native API through :class:`~repro.api.client.HttpClient`.
The run ends with the PR's acceptance check -- the same
:class:`~repro.api.spec.ProblemSpec` solved over HTTP and in-process
(:class:`~repro.api.client.LocalClient` on the same warm session) must
return bit-identical group selections -- plus a sweep of the error
taxonomy (422 / 404 / 409).

Run with::

    PYTHONPATH=src python examples/http_client.py            # demo traffic
    PYTHONPATH=src python examples/http_client.py --smoke    # CI smoke: strict exit code

Smoke mode is a CI gate: it must finish in seconds, raise nothing
across threads, land every insert in the warm session, and exit 0 only
when wire parity holds.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro import (  # noqa: E402
    CapabilityMismatchError,
    HttpClient,
    LocalClient,
    ProblemSpec,
    SpecValidationError,
    TagDMHttpServer,
    TagDMServer,
    UnknownCorpusError,
    generate_movielens_style,
    table1_problem,
)
from repro.core.enumeration import GroupEnumerationConfig  # noqa: E402


def drive(url: str, dataset, problem, n_inserts: int, n_solves: int) -> list:
    """Concurrent inserts + solves, every request over the wire."""
    errors: list = []
    n_writers = 2
    per_writer = n_inserts // n_writers
    barrier = threading.Barrier(n_writers + 1)
    spec = ProblemSpec.from_problem(problem, algorithm="sm-lsh-fo")

    def inserter(label: int) -> None:
        client = HttpClient(url)
        try:
            barrier.wait()
            for i in range(per_writer):
                row = (label * per_writer + i) % dataset.n_actions
                client.insert_action(
                    "movies",
                    dataset.user_of(row),
                    dataset.item_of(row),
                    [f"http-{label}-{i}"],
                )
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def solver() -> None:
        client = HttpClient(url)
        try:
            barrier.wait()
            for _ in range(n_solves):
                client.solve("movies", spec)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=inserter, args=(label,)) for label in range(n_writers)]
    threads.append(threading.Thread(target=solver))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return errors


def check_error_taxonomy(client: HttpClient, problem) -> list:
    """Every taxonomy class must come back typed over the wire."""
    failures = []
    probes = [
        ("unknown corpus -> 404", UnknownCorpusError, lambda: client.stats("atlantis")),
        (
            "capability mismatch -> 409",
            CapabilityMismatchError,
            lambda: client.solve("movies", table1_problem(4), algorithm="sm-lsh-fo"),
        ),
        (
            "bad spec -> 422",
            SpecValidationError,
            lambda: client.solve("movies", {"problem": {"objectives": []}}),
        ),
    ]
    for label, expected, probe in probes:
        try:
            probe()
        except expected:
            print(f"  {label}: OK")
        except Exception as exc:  # pragma: no cover - failure path
            failures.append(f"{label}: got {type(exc).__name__}: {exc}")
        else:  # pragma: no cover - failure path
            failures.append(f"{label}: no error raised")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke mode: small traffic, strict exit code",
    )
    args = parser.parse_args(argv)

    n_inserts, n_solves = (60, 6) if args.smoke else (200, 20)
    root = Path(tempfile.mkdtemp(prefix="tagdm-http-"))
    dataset = generate_movielens_style(n_users=60, n_items=120, n_actions=800, seed=7)
    initial_actions = dataset.n_actions

    server = TagDMServer(
        root,
        enumeration=GroupEnumerationConfig(min_support=5, max_groups=80),
        seed=7,
    )
    shard = server.add_corpus("movies", dataset)
    problem = table1_problem(1, k=3, min_support=shard.session.default_support())

    with TagDMHttpServer(server) as front:
        client = HttpClient(front.url)
        health = client.health()
        print(f"front-end at {front.url}: {health['corpora']} ({health['status']})")

        started = time.perf_counter()
        errors = drive(front.url, dataset, problem, n_inserts, n_solves)
        shard.flush()
        elapsed = time.perf_counter() - started
        stats = client.stats("movies")
        print(
            f"{stats['inserts_served']} inserts + {stats['solves_served']} solves "
            f"over HTTP in {elapsed:.2f}s "
            f"({(n_inserts + n_solves) / elapsed:.0f} req/s, "
            f"start_mode={stats['start_mode']})"
        )

        # Wire parity: the same spec over HTTP and in-process on the same
        # warm session must select bit-identical groups.
        spec = ProblemSpec.from_problem(problem, algorithm="sm-lsh-fo")
        over_http = client.solve("movies", spec)
        in_process = LocalClient({"movies": shard.session}).solve("movies", spec)
        parity = (
            over_http.objective_value == in_process.objective_value
            and [str(g.description) for g in over_http.groups]
            == [str(g.description) for g in in_process.groups]
            and [g.tuple_indices for g in over_http.groups]
            == [g.tuple_indices for g in in_process.groups]
        )
        print(
            f"wire parity: objective {over_http.objective_value:.4f} "
            f"(bit-identical={parity})"
        )

        failures = check_error_taxonomy(client, problem)
        applied = stats["actions"] == initial_actions + n_inserts

    server.close()

    ok = not errors and not failures and parity and applied
    for error in errors:
        print(f"ERROR: {type(error).__name__}: {error}")
    for failure in failures:
        print(f"TAXONOMY FAILURE: {failure}")
    if not applied:
        print(f"ERROR: expected {initial_actions + n_inserts} actions, got {stats['actions']}")
    print("OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
