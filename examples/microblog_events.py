"""Event characterisation on a microblog corpus (the paper's future work).

The paper's conclusion proposes applying TagDM to topic-centric
exploration of tweets and news.  This example runs that scenario on a
synthetic microblog corpus: which kinds of accounts hashtag the same news
events differently, and how does the session absorb a stream of new
tweets without re-preparing from scratch (incremental maintenance).

Run with:  python examples/microblog_events.py
"""

from repro import Constraint, Criterion, Dimension, Objective, TagDMProblem
from repro.core import IncrementalTagDM
from repro.dataset import MicroblogStyleConfig, generate_microblog_style
from repro.text import build_tag_cloud, render_tag_cloud


def main() -> None:
    dataset = generate_microblog_style(
        MicroblogStyleConfig(n_accounts=150, n_events=300, n_tweets=2500, seed=9)
    )
    print(f"dataset: {dataset}")

    # Incremental session: prepared once, then fed a stream of new tweets.
    session = IncrementalTagDM(dataset, signature_backend="frequency").prepare()
    print(f"candidate groups after preparation: {session.n_groups}")

    # Who tags the same events differently?  Diverse account groups, similar
    # events, maximise hashtag diversity.
    problem = TagDMProblem(
        name="event-disagreement",
        constraints=(
            Constraint(Dimension.USERS, Criterion.DIVERSITY, 0.3),
            Constraint(Dimension.ITEMS, Criterion.SIMILARITY, 0.5),
        ),
        objectives=(Objective(Dimension.TAGS, Criterion.DIVERSITY),),
        k_lo=3,
        k_hi=3,
        min_support=session.default_support(),
    )
    before = session.solve(problem, algorithm="dv-fdp-fo")
    print()
    print(before.summary())

    # A burst of new tweets about one event arrives (including a brand-new
    # account); the session absorbs them in place.
    burst = [
        {
            "user_id": "acct_new_desk",
            "item_id": "event00001",
            "tags": ["breaking", "developing", "ht_00010"],
            "user_attributes": {"account_type": "journalist", "region": "europe"},
        }
    ] + [
        {
            "user_id": f"acct{index:05d}",
            "item_id": "event00001",
            "tags": ["ht_00010", "ht_00011", "breaking"],
        }
        for index in range(20)
    ]
    report = session.add_actions(burst)
    print()
    print(f"incremental update: {report.summary()}")
    print(f"candidate groups after the burst: {session.n_groups}")

    after = session.solve(problem.with_support(session.default_support()), algorithm="dv-fdp-fo")
    print()
    print(after.summary())

    # Show the hashtag cloud of the most tweeted event after the burst.
    counts = session.dataset.value_counts("item.category")
    top_category = max(counts, key=counts.get)
    scoped = session.dataset.filter({"item.category": top_category})
    cloud = build_tag_cloud(
        scoped.tags_for_indices(range(scoped.n_actions)),
        title=f"hashtags for category={top_category}",
        max_tags=15,
    )
    print()
    print(render_tag_cloud(cloud))


if __name__ == "__main__":
    main()
