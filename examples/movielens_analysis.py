"""Query-scoped MovieLens-style analysis, in the spirit of Section 6.2.

Reproduces the flavour of the paper's case-study queries on the
synthetic corpus: analyse how different user sub-populations tag one
genre of movies, and how one user sub-population tags movies overall,
then print the group contrasts (shared vs distinguishing tags).

Run with:  python examples/movielens_analysis.py
"""

from repro import generate_movielens_style
from repro.analysis import AnalysisQuery, analyze, build_case_study, render_case_study


def main() -> None:
    dataset = generate_movielens_style(
        n_users=200, n_items=400, n_actions=6000, seed=11
    )
    print(f"dataset: {dataset}\n")

    # Query 1: who disagrees about one genre of movies?  (Problem 4: diverse
    # user groups, similar items, maximise tag diversity.)
    genre_counts = dataset.value_counts("item.genre")
    genre = max(genre_counts, key=genre_counts.get)
    query_genre = AnalysisQuery.build(
        {"item.genre": genre},
        problem=4,
        title=f"user tagging behaviour for {{genre={genre}}} movies",
    )
    report_genre = analyze(dataset, query_genre, algorithm="dv-fdp-fo")
    print(render_case_study(build_case_study(report_genre)))
    print()

    # Query 2: how does one user sub-population tag movies?  (Problem 6:
    # similar user groups, similar items, maximise tag diversity.)
    query_males = AnalysisQuery.build(
        {"user.gender": "male"},
        problem=6,
        title="tagging behaviour of {gender=male} users for movies",
    )
    report_males = analyze(dataset, query_males, algorithm="dv-fdp-fo")
    print(render_case_study(build_case_study(report_males)))
    print()

    # Query 3: which similar sub-populations agree on diverse items?
    # (Problem 2, solved with the LSH folding algorithm.)
    query_students = AnalysisQuery.build(
        {"user.occupation": "student"},
        problem=2,
        title="tagging behaviour of {occupation=student} users for movies",
    )
    report_students = analyze(dataset, query_students, algorithm="sm-lsh-fo")
    print(report_students.render())


if __name__ == "__main__":
    main()
