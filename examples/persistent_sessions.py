"""Durable datasets and warm-start sessions: the serving-process lifecycle.

Walks the full persistence loop a production deployment runs:

1. ingest a tagging corpus into a durable SQLite store (WAL journaling,
   enforced foreign keys);
2. cold-prepare a TagDM session over it and snapshot the prepared state
   (groups, signatures, fitted topic model, cached LSH sign bits);
3. simulate a process restart: reload the dataset from SQLite and
   warm-start the session from the snapshot in milliseconds;
4. prove the warm session solves identically to the cold one;
5. keep serving inserts through an IncrementalTagDM that mirrors every
   action into the store, then snapshot again.

Run with:  python examples/persistent_sessions.py
"""

import tempfile
import time
from pathlib import Path

from repro import TagDM, generate_movielens_style, table1_problem
from repro.core.incremental import IncrementalTagDM
from repro.core.persistence import load_session, save_session
from repro.dataset.sqlite_store import SqliteTaggingStore


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="tagdm-persist-"))
    db_path = workdir / "corpus.sqlite"
    snapshot_path = workdir / "session.snapshot"

    # 1. Ingest the corpus into SQLite.
    dataset = generate_movielens_style(n_users=150, n_items=300, n_actions=4000, seed=7)
    store = SqliteTaggingStore.from_dataset(dataset, db_path)
    print(f"ingested into {db_path.name}: {store.counts()}")
    print(f"  journal_mode={store.pragma('journal_mode')} foreign_keys={store.pragma('foreign_keys')}")

    # 2. Cold prepare + snapshot.
    started = time.perf_counter()
    session = TagDM(dataset, signature_backend="frequency").prepare()
    cold_seconds = time.perf_counter() - started
    session.signature_lsh(n_bits=10)  # warm the LSH cache into the snapshot
    save_session(session, snapshot_path)
    problem = table1_problem(1, k=3, min_support=session.default_support())
    cold_result = session.solve(problem, algorithm="sm-lsh-fo")
    print(f"\ncold prepare: {session.n_groups} groups in {cold_seconds * 1e3:.1f} ms")

    # 3. "Restart": a fresh process reloads the store and the snapshot.
    reloaded = store.to_dataset()
    started = time.perf_counter()
    warm_session = load_session(snapshot_path, reloaded)
    warm_seconds = time.perf_counter() - started
    print(
        f"warm load: {warm_session.n_groups} groups in {warm_seconds * 1e3:.1f} ms "
        f"({cold_seconds / warm_seconds:.0f}x faster than cold prepare)"
    )

    # 4. Identical solve results.
    warm_result = warm_session.solve(problem, algorithm="sm-lsh-fo")
    assert warm_result.objective_value == cold_result.objective_value
    assert warm_result.descriptions() == cold_result.descriptions()
    print("warm solve matches cold solve bit-for-bit:")
    print(warm_result.summary())

    # 5. Keep serving inserts; the store tracks every action.
    incremental = IncrementalTagDM(reloaded, store=store)
    incremental.prepare()
    report = incremental.add_action(
        reloaded.user_of(0), reloaded.item_of(0), ["persistent", "warm-start"]
    )
    print(f"\ninsert: {report.summary()}")
    print(f"store now holds {store.counts()['actions']} actions")
    incremental.snapshot(snapshot_path)
    print(f"re-snapshotted to {snapshot_path.name}; next restart warm-starts from here")
    store.close()


if __name__ == "__main__":
    main()
