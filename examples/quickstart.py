"""Quickstart: mine tagging behaviour on a synthetic MovieLens-style corpus.

Generates a small corpus, prepares a TagDM session, solves two of the
paper's Table 1 problems (tag-similarity and tag-diversity maximisation)
with the recommended algorithms and prints the returned group sets.

Run with:  python examples/quickstart.py
"""

from repro import TagDM, generate_movielens_style, table1_problem


def main() -> None:
    # 1. A tagging corpus: users, items, tagging actions with tag sets.
    dataset = generate_movielens_style(
        n_users=150, n_items=300, n_actions=4000, seed=7
    )
    print(f"dataset: {dataset}")
    stats = dataset.stats()
    print(
        f"  {stats.n_actions} tagging actions, {stats.n_distinct_tags} distinct tags, "
        f"{stats.mean_tags_per_action:.1f} tags per action on average"
    )

    # 2. Prepare the TagDM session: enumerate describable tagging-action
    #    groups and summarise each group's tags into a signature vector.
    session = TagDM(dataset, signature_backend="frequency").prepare()
    print(f"candidate describable groups: {session.n_groups}")

    # 3. Problem 1 (Table 1): similar users, similar items, maximise tag
    #    similarity -- solved with the LSH-based folding algorithm.
    support = session.default_support()  # 1% of the tagging tuples
    problem_similar = table1_problem(1, k=3, min_support=support)
    result_similar = session.solve(problem_similar, algorithm="sm-lsh-fo")
    print()
    print(result_similar.summary())

    # 4. Problem 6 (Table 1): similar users, similar items, maximise tag
    #    diversity -- solved with the dispersion-based folding algorithm.
    problem_diverse = table1_problem(6, k=3, min_support=support)
    result_diverse = session.solve(problem_diverse, algorithm="dv-fdp-fo")
    print()
    print(result_diverse.summary())

    # 5. The "auto" mode picks the recommended algorithm per problem.
    auto_result = session.solve(table1_problem(4, k=3, min_support=support))
    print()
    print(auto_result.summary())


if __name__ == "__main__":
    main()
