"""Run a long-lived TagDM serving shard under mixed insert/query traffic.

Starts a :class:`~repro.serving.server.TagDMServer` over a scratch
directory, registers one corpus shard, and drives it the way a
production deployment would: insert clients and query clients on
separate threads, snapshot rotation in the background, then a clean
shutdown followed by a warm restart that proves the final snapshot is
immediately servable.

Run with::

    PYTHONPATH=src python examples/serve_corpus.py            # demo traffic
    PYTHONPATH=src python examples/serve_corpus.py --smoke    # CI smoke: 100 inserts + 10 solves

The smoke mode is the CI gate: it must finish in seconds, raise nothing
across threads, and exit 0 only when every insert landed in both the
session and the SQLite store.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro import (  # noqa: E402
    SnapshotRotationPolicy,
    TagDMServer,
    generate_movielens_style,
    table1_problem,
)


def drive(server: TagDMServer, corpus: str, n_inserts: int, n_solves: int) -> list:
    """Interleave inserts and solves from separate client threads."""
    dataset = server.shard(corpus).session.dataset
    # Index only into the pre-existing rows: the writer thread appends to
    # this dataset concurrently, so n_actions is a moving target.
    initial_actions = dataset.n_actions
    problem = table1_problem(
        1, k=3, min_support=server.shard(corpus).session.default_support()
    )
    errors: list = []
    n_writers = 2
    per_writer = n_inserts // n_writers
    barrier = threading.Barrier(n_writers + 1)

    def inserter(label: int) -> None:
        try:
            barrier.wait()
            for i in range(per_writer):
                row = (label * per_writer + i) % initial_actions
                server.insert(
                    corpus,
                    dataset.user_of(row),
                    dataset.item_of(row),
                    [f"served-{label}-{i}"],
                )
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def solver() -> None:
        try:
            barrier.wait()
            for _ in range(n_solves):
                server.solve(corpus, problem, algorithm="sm-lsh-fo")
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=inserter, args=(label,)) for label in range(n_writers)]
    threads.append(threading.Thread(target=solver))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    server.shard(corpus).flush()
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke mode: 100 inserts + 10 solves, strict exit code",
    )
    parser.add_argument(
        "--root", type=Path, default=None, help="server root (default: temp dir)"
    )
    args = parser.parse_args(argv)

    root = args.root or Path(tempfile.mkdtemp(prefix="tagdm-serve-"))
    n_inserts, n_solves = (100, 10) if args.smoke else (400, 40)
    dataset = generate_movielens_style(n_users=60, n_items=120, n_actions=800, seed=7)
    initial_actions = dataset.n_actions

    server = TagDMServer(
        root, policy=SnapshotRotationPolicy(every_inserts=25, keep_last=3), seed=7
    )
    shard = server.add_corpus("movies", dataset)
    print(f"serving 'movies' from {root} ({shard.session.n_groups} groups warm)")

    started = time.perf_counter()
    errors = drive(server, "movies", n_inserts, n_solves)
    elapsed = time.perf_counter() - started

    stats = server.stats()["movies"]
    store_actions = server._stores["movies"].counts()["actions"]
    print(
        f"{stats['inserts_served']} inserts + {stats['solves_served']} solves "
        f"in {elapsed:.2f}s ({stats['snapshot_rotations']} snapshot rotations)"
    )
    print(f"session actions: {stats['actions']}, store actions: {store_actions}")
    server.close()

    ok = (
        not errors
        and stats["inserts_served"] == n_inserts
        and stats["actions"] == initial_actions + n_inserts
        and store_actions == initial_actions + n_inserts
    )
    if errors:
        for error in errors:
            print(f"ERROR: {type(error).__name__}: {error}")

    # Warm restart: the final snapshot must be immediately servable.
    resumed = TagDMServer(root, seed=7)
    warm = resumed.open_corpus("movies")
    problem = table1_problem(1, k=3, min_support=warm.session.default_support())
    result = resumed.solve("movies", problem, algorithm="sm-lsh-fo")
    print(
        f"warm restart: {warm.session.dataset.n_actions} actions, "
        f"{warm.session.n_groups} groups, solve objective {result.objective_value:.4f}"
    )
    ok = ok and warm.session.dataset.n_actions == initial_actions + n_inserts
    resumed.close()

    print("OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
