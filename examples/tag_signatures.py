"""Tag signatures and tag clouds (Figures 1 and 2 of the paper).

Builds the frequency tag cloud of the most-tagged director's movies for
all users and for one location's users, renders both (the paper's
Figures 1 and 2), and then shows the three signature backends --
frequency, tf*idf and LDA -- producing vectors for the same group of
tagging actions.

Run with:  python examples/tag_signatures.py
"""

import numpy as np

from repro import generate_movielens_style
from repro.core import GroupEnumerationConfig, GroupSignatureBuilder, enumerate_groups
from repro.text import build_tag_cloud, render_tag_cloud


def main() -> None:
    dataset = generate_movielens_style(
        n_users=150, n_items=300, n_actions=4000, seed=13
    )

    # --- Figures 1-2: tag clouds of one director, all users vs one state.
    director_counts = dataset.value_counts("item.director")
    director = max(director_counts, key=director_counts.get)
    scoped = dataset.filter({"item.director": director})
    cloud_all = build_tag_cloud(
        scoped.tags_for_indices(range(scoped.n_actions)),
        title=f"director={director}, all users",
        max_tags=16,
    )
    print(render_tag_cloud(cloud_all))
    print()

    location_counts = scoped.value_counts("user.location")
    location = max(location_counts, key=location_counts.get)
    scoped_location = scoped.filter({"user.location": location})
    cloud_location = build_tag_cloud(
        scoped_location.tags_for_indices(range(scoped_location.n_actions)),
        title=f"director={director}, location={location}",
        max_tags=16,
    )
    print(render_tag_cloud(cloud_location))
    print()
    dropped = cloud_all.difference(cloud_location)
    print(
        f"tags prominent for all users but absent for {location} users: "
        + (", ".join(dropped[:6]) or "(none)")
    )
    print()

    # --- Signature backends over the same candidate groups.
    groups = enumerate_groups(
        dataset, GroupEnumerationConfig(min_support=10, max_groups=40)
    )
    print(f"comparing signature backends over {len(groups)} groups")
    for backend in ("frequency", "tfidf", "lda"):
        builder = GroupSignatureBuilder(
            backend=backend, n_dimensions=10, seed=1, lda_iterations=30
        )
        matrix = builder.build(groups)
        norms = np.linalg.norm(matrix, axis=1)
        print(
            f"  {backend:9s}: signature matrix {matrix.shape}, "
            f"mean vector norm {norms.mean():.3f}"
        )
        labels = builder.dimension_labels()
        print(f"             first dimensions: {', '.join(labels[:4])}")


if __name__ == "__main__":
    main()
