"""repro -- reproduction of "Who Tags What? An Analysis Framework".

This library reproduces the TagDM (Tagging Behavior Dual Mining)
framework of Das, Thirumuruganathan, Amer-Yahia, Das and Yu
(PVLDB 5(11), 2012): a constrained-optimisation framework for analysing
which groups of users tag which groups of items with similar or diverse
tags, together with the paper's LSH-based and facility-dispersion-based
mining algorithms and the substrates they run on (tagging data store,
tag summarisation via LDA / tf*idf, cosine LSH, dispersion heuristics,
synthetic MovieLens-style workloads).

Quickstart
----------
>>> from repro import TagDM, generate_movielens_style, table1_problem
>>> dataset = generate_movielens_style(n_actions=2000)
>>> session = TagDM(dataset).prepare()
>>> problem = table1_problem(1, k=3, min_support=session.default_support())
>>> result = session.solve(problem, algorithm="sm-lsh-fo")
>>> print(result.summary())  # doctest: +SKIP
"""

from repro.core import (
    Constraint,
    Criterion,
    Dimension,
    GroupDescription,
    GroupEnumerationConfig,
    GroupSignatureBuilder,
    MiningResult,
    Objective,
    TABLE1_PROBLEMS,
    TagDM,
    TagDMProblem,
    TaggingActionGroup,
    enumerate_groups,
    enumerate_problem_instances,
    group_support,
    table1_problem,
)
from repro.core import load_session, save_session
from repro.dataset import (
    SqliteTaggingStore,
    TaggingDataset,
    generate_delicious_style,
    generate_flickr_style,
    generate_movielens_style,
    load_csv,
    load_sqlite,
    save_csv,
    save_sqlite,
)
from repro.algorithms import available_algorithms, build_algorithm, recommend_algorithm
from repro.serving import SnapshotRotationPolicy, TagDMServer
from repro.text import build_tag_cloud, render_tag_cloud

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "TagDM",
    "TagDMProblem",
    "Constraint",
    "Objective",
    "Criterion",
    "Dimension",
    "TaggingActionGroup",
    "GroupDescription",
    "GroupEnumerationConfig",
    "GroupSignatureBuilder",
    "MiningResult",
    "TABLE1_PROBLEMS",
    "table1_problem",
    "enumerate_problem_instances",
    "enumerate_groups",
    "group_support",
    # dataset
    "TaggingDataset",
    "SqliteTaggingStore",
    "generate_movielens_style",
    "generate_delicious_style",
    "generate_flickr_style",
    "load_csv",
    "save_csv",
    "load_sqlite",
    "save_sqlite",
    # persistence
    "save_session",
    "load_session",
    # serving
    "TagDMServer",
    "SnapshotRotationPolicy",
    # algorithms
    "available_algorithms",
    "build_algorithm",
    "recommend_algorithm",
    # text
    "build_tag_cloud",
    "render_tag_cloud",
]
