"""repro -- reproduction of "Who Tags What? An Analysis Framework".

This library reproduces the TagDM (Tagging Behavior Dual Mining)
framework of Das, Thirumuruganathan, Amer-Yahia, Das and Yu
(PVLDB 5(11), 2012): a constrained-optimisation framework for analysing
which groups of users tag which groups of items with similar or diverse
tags, together with the paper's LSH-based and facility-dispersion-based
mining algorithms and the substrates they run on (tagging data store,
tag summarisation via LDA / tf*idf, cosine LSH, dispersion heuristics,
synthetic MovieLens-style workloads).

Quickstart
----------
>>> from repro import TagDM, generate_movielens_style, table1_problem
>>> dataset = generate_movielens_style(n_actions=2000)
>>> session = TagDM(dataset).prepare()
>>> problem = table1_problem(1, k=3, min_support=session.default_support())
>>> result = session.solve(problem, algorithm="sm-lsh-fo")
>>> print(result.summary())  # doctest: +SKIP

Wire-native API (see ``API.md`` for the full protocol)
------------------------------------------------------
The same solve travels process-to-process as a declarative
:class:`ProblemSpec`; :class:`LocalClient`, :class:`ServerClient`,
:class:`HttpClient` and :class:`FleetClient` are interchangeable
backends of one :class:`TagDMClient` interface:

>>> from repro import LocalClient, ProblemSpec
>>> client = LocalClient({"movies": session})
>>> spec = ProblemSpec.from_problem(problem, algorithm="sm-lsh-fo")
>>> result = client.solve("movies", spec)  # doctest: +SKIP

and over the network, against a :class:`TagDMHttpServer` front-end or a
multi-process :class:`TagDMFleet` (see ``DEPLOYMENT.md``):

>>> from repro import HttpClient
>>> remote = HttpClient("http://127.0.0.1:8631")  # doctest: +SKIP
>>> result = remote.solve("movies", spec)  # doctest: +SKIP
"""

from repro.core import (
    Constraint,
    Criterion,
    Dimension,
    GroupDescription,
    GroupEnumerationConfig,
    GroupSignatureBuilder,
    MiningResult,
    Objective,
    TABLE1_PROBLEMS,
    TagDM,
    TagDMProblem,
    TaggingActionGroup,
    enumerate_groups,
    enumerate_problem_instances,
    group_support,
    table1_problem,
)
from repro.core import load_session, save_session
from repro.dataset import (
    SqliteTaggingStore,
    TaggingDataset,
    generate_delicious_style,
    generate_flickr_style,
    generate_movielens_style,
    load_csv,
    load_sqlite,
    save_csv,
    save_sqlite,
)
from repro.algorithms import (
    algorithm_capabilities,
    available_algorithms,
    build_algorithm,
    check_algorithm_capability,
    recommend_algorithm,
)
from repro.serving import (
    AdmissionPolicy,
    FaultPlan,
    FaultRule,
    PlacementTable,
    SnapshotRotationPolicy,
    TagDMFleet,
    TagDMHttpServer,
    TagDMRouter,
    TagDMServer,
)
from repro.api import (
    ApiError,
    CapabilityMismatchError,
    ConnectionFailedError,
    FleetClient,
    HttpClient,
    LocalClient,
    PageSpec,
    OverloadedError,
    ProblemSpec,
    ResultPage,
    ServerClient,
    SolveTimeoutError,
    SpecValidationError,
    TagDMClient,
    UnknownCorpusError,
    WorkerUnavailableError,
    merge_result_pages,
)
from repro.text import build_tag_cloud, render_tag_cloud

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "TagDM",
    "TagDMProblem",
    "Constraint",
    "Objective",
    "Criterion",
    "Dimension",
    "TaggingActionGroup",
    "GroupDescription",
    "GroupEnumerationConfig",
    "GroupSignatureBuilder",
    "MiningResult",
    "TABLE1_PROBLEMS",
    "table1_problem",
    "enumerate_problem_instances",
    "enumerate_groups",
    "group_support",
    # dataset
    "TaggingDataset",
    "SqliteTaggingStore",
    "generate_movielens_style",
    "generate_delicious_style",
    "generate_flickr_style",
    "load_csv",
    "save_csv",
    "load_sqlite",
    "save_sqlite",
    # persistence
    "save_session",
    "load_session",
    # serving
    "TagDMServer",
    "TagDMHttpServer",
    "TagDMFleet",
    "TagDMRouter",
    "PlacementTable",
    "SnapshotRotationPolicy",
    "AdmissionPolicy",
    "FaultPlan",
    "FaultRule",
    # wire-native API
    "ProblemSpec",
    "PageSpec",
    "ResultPage",
    "merge_result_pages",
    "TagDMClient",
    "LocalClient",
    "ServerClient",
    "HttpClient",
    "FleetClient",
    "ApiError",
    "SpecValidationError",
    "UnknownCorpusError",
    "CapabilityMismatchError",
    "ConnectionFailedError",
    "OverloadedError",
    "WorkerUnavailableError",
    "SolveTimeoutError",
    # algorithms
    "available_algorithms",
    "build_algorithm",
    "recommend_algorithm",
    "algorithm_capabilities",
    "check_algorithm_capability",
    # text
    "build_tag_cloud",
    "render_tag_cloud",
]
