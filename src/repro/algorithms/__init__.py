"""TagDM mining algorithms.

Two heuristic families plus the brute-force baseline, mirroring
Sections 3.1, 4 and 5 of the paper:

* :class:`~repro.algorithms.exact.ExactAlgorithm` -- exhaustive
  enumeration of candidate group sets;
* the SM-LSH family (:mod:`repro.algorithms.sm_lsh`) for tag-similarity
  maximisation, with filtering and folding constraint handling;
* the DV-FDP family (:mod:`repro.algorithms.dv_fdp`) for tag-diversity
  maximisation, with filtering and folding constraint handling.

Algorithms are obtained by name through :func:`build_algorithm`.
"""

from repro.algorithms.base import (
    MiningAlgorithm,
    algorithm_class,
    algorithm_options,
    available_algorithms,
    build_algorithm,
    register_algorithm,
)
from repro.algorithms.scoring import (
    GroupSetEvaluation,
    PairwiseMatrixCache,
    ProblemEvaluator,
)
from repro.algorithms.exact import ExactAlgorithm
from repro.algorithms.sm_lsh import (
    SmLshAlgorithm,
    SmLshFilterAlgorithm,
    SmLshFoldAlgorithm,
)
from repro.algorithms.dv_fdp import (
    DvFdpAlgorithm,
    DvFdpFilterAlgorithm,
    DvFdpFoldAlgorithm,
)
from repro.algorithms.capabilities import (
    AlgorithmCapability,
    CapabilityRow,
    algorithm_capabilities,
    capability_matrix,
    check_algorithm_capability,
    recommend_algorithm,
)

__all__ = [
    "MiningAlgorithm",
    "algorithm_class",
    "algorithm_options",
    "available_algorithms",
    "build_algorithm",
    "register_algorithm",
    "GroupSetEvaluation",
    "PairwiseMatrixCache",
    "ProblemEvaluator",
    "ExactAlgorithm",
    "SmLshAlgorithm",
    "SmLshFilterAlgorithm",
    "SmLshFoldAlgorithm",
    "DvFdpAlgorithm",
    "DvFdpFilterAlgorithm",
    "DvFdpFoldAlgorithm",
    "AlgorithmCapability",
    "CapabilityRow",
    "algorithm_capabilities",
    "capability_matrix",
    "check_algorithm_capability",
    "recommend_algorithm",
]
