"""Algorithm interface and registry.

All TagDM solvers share one contract: given a problem specification, a
list of candidate tagging-action groups (with signatures computed) and a
function suite, return a :class:`~repro.core.result.MiningResult`.  The
registry lets the :class:`~repro.core.framework.TagDM` session and the
benchmark harness construct solvers by name.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional, Sequence, Type

from repro.core.functions import FunctionSuite
from repro.core.groups import TaggingActionGroup
from repro.core.problem import TagDMProblem
from repro.core.result import MiningResult
from repro.algorithms.scoring import PairwiseMatrixCache, ProblemEvaluator

__all__ = [
    "MiningAlgorithm",
    "register_algorithm",
    "build_algorithm",
    "available_algorithms",
    "algorithm_class",
    "algorithm_options",
]


class MiningAlgorithm(ABC):
    """Base class of all TagDM solvers."""

    #: Registry / reporting name, e.g. ``"sm-lsh-fo"``.
    name: str = "abstract"

    @abstractmethod
    def _solve(
        self,
        problem: TagDMProblem,
        groups: Sequence[TaggingActionGroup],
        evaluator: ProblemEvaluator,
    ) -> MiningResult:
        """Algorithm-specific solving logic (timing handled by ``solve``)."""

    def solve(
        self,
        problem: TagDMProblem,
        groups: Sequence[TaggingActionGroup],
        functions: FunctionSuite,
        cache: Optional[PairwiseMatrixCache] = None,
        lsh_provider: Optional[Callable] = None,
    ) -> MiningResult:
        """Solve ``problem`` over ``groups`` and time the call.

        ``cache`` optionally supplies a pre-built pairwise matrix cache
        over the same group list (the :class:`~repro.core.framework.TagDM`
        session shares one across solve calls so repeated runs do not pay
        for the matrices again).  ``lsh_provider`` optionally supplies
        pre-built LSH indexes over the raw signature matrix -- a callable
        ``(n_bits, n_tables, seed) -> CosineLshIndex | None`` that the
        SM-LSH family consults before projecting vectors itself.
        """
        if not groups:
            raise ValueError("cannot solve a TagDM problem over zero candidate groups")
        evaluator = ProblemEvaluator(problem, functions)
        self._shared_cache = cache
        self._lsh_provider = lsh_provider
        started = time.perf_counter()
        result = self._solve(problem, list(groups), evaluator)
        result.elapsed_seconds = time.perf_counter() - started
        return result

    def _matrix_cache(
        self,
        groups: Sequence[TaggingActionGroup],
        functions: FunctionSuite,
    ) -> PairwiseMatrixCache:
        """Return the shared matrix cache when it covers ``groups``."""
        cache = getattr(self, "_shared_cache", None)
        if cache is not None and len(cache) == len(groups) and cache.groups == list(groups):
            return cache
        return PairwiseMatrixCache(groups, functions)

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _result_from_groups(
        self,
        problem: TagDMProblem,
        groups: Sequence[TaggingActionGroup],
        evaluator: ProblemEvaluator,
        evaluations: int,
        metadata: Optional[Dict[str, object]] = None,
    ) -> MiningResult:
        """Package a chosen group set (possibly empty) into a result."""
        chosen = tuple(groups)
        if not chosen:
            return MiningResult(
                problem=problem,
                algorithm=self.name,
                groups=(),
                objective_value=0.0,
                constraint_scores={},
                support=0,
                feasible=False,
                evaluations=evaluations,
                metadata=dict(metadata or {}),
            )
        evaluation = evaluator.evaluate(chosen)
        return MiningResult(
            problem=problem,
            algorithm=self.name,
            groups=chosen,
            objective_value=evaluation.objective_value,
            constraint_scores=evaluation.constraint_scores,
            support=evaluation.support,
            feasible=evaluation.feasible,
            evaluations=evaluations,
            metadata=dict(metadata or {}),
        )


_REGISTRY: Dict[str, Type[MiningAlgorithm]] = {}


def register_algorithm(cls: Type[MiningAlgorithm]) -> Type[MiningAlgorithm]:
    """Class decorator adding an algorithm to the registry by its name."""
    if not getattr(cls, "name", None) or cls.name == "abstract":
        raise ValueError("algorithm classes must define a non-default 'name'")
    _REGISTRY[cls.name] = cls
    return cls


def available_algorithms() -> List[str]:
    """Names of all registered algorithms."""
    return sorted(_REGISTRY)


def algorithm_class(name: str) -> Type[MiningAlgorithm]:
    """The registered algorithm class for ``name`` (case-insensitive).

    Raises ``KeyError`` naming the available algorithms when unknown --
    the wire API's spec validator maps that to a validation error.
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {', '.join(available_algorithms())}"
        )
    return _REGISTRY[key]


def algorithm_options(name: str) -> List[str]:
    """The keyword options the named algorithm's constructor accepts.

    The wire API validates a spec's ``options`` against this list so a
    typo'd parameter is rejected instead of silently dropped (which is
    what :func:`build_algorithm`'s permissive filtering would do).
    """
    import inspect

    cls = algorithm_class(name)
    return sorted(set(inspect.signature(cls.__init__).parameters) - {"self"})


def build_algorithm(name: str, **options) -> MiningAlgorithm:
    """Construct a registered algorithm by name.

    Only keyword options accepted by the target constructor are passed
    through, so callers can forward a common option set (e.g. ``seed``)
    to any algorithm.
    """
    cls = algorithm_class(name)
    import inspect

    accepted = set(inspect.signature(cls.__init__).parameters) - {"self"}
    filtered = {k: v for k, v in options.items() if k in accepted}
    return cls(**filtered)
