"""Algorithm capability matrix (Table 2 of the paper).

Table 2 summarises which algorithm family handles which combination of
optimisation criterion and constraint criteria, and with which
additional technique (folding / filtering).  :func:`capability_matrix`
reproduces that table as data, and :func:`recommend_algorithm` maps a
concrete problem specification to the paper's recommended solver -- the
rule the ``algorithm="auto"`` mode of :class:`repro.core.framework.TagDM`
uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.measures import Criterion, Dimension
from repro.core.problem import TagDMProblem

__all__ = ["CapabilityRow", "capability_matrix", "recommend_algorithm"]


@dataclass(frozen=True)
class CapabilityRow:
    """One row of Table 2."""

    optimization: str
    algorithm_family: str
    constraints: str
    technique: str


def capability_matrix() -> List[CapabilityRow]:
    """The rows of Table 2 (optimisation / family / constraints / technique)."""
    return [
        CapabilityRow(
            optimization="similarity",
            algorithm_family="LSH based",
            constraints="similarity",
            technique="fold constraints",
        ),
        CapabilityRow(
            optimization="similarity",
            algorithm_family="LSH based",
            constraints="diversity",
            technique="filter constraints",
        ),
        CapabilityRow(
            optimization="similarity",
            algorithm_family="LSH based",
            constraints="similarity, diversity",
            technique="fold similarity constraints, filter diversity constraints",
        ),
        CapabilityRow(
            optimization="diversity",
            algorithm_family="FDP based",
            constraints="similarity",
            technique="fold constraints",
        ),
        CapabilityRow(
            optimization="diversity",
            algorithm_family="FDP based",
            constraints="diversity",
            technique="fold constraints",
        ),
        CapabilityRow(
            optimization="diversity",
            algorithm_family="FDP based",
            constraints="similarity, diversity",
            technique="fold constraints",
        ),
    ]


def recommend_algorithm(problem: TagDMProblem) -> str:
    """Return the paper's recommended solver name for ``problem``.

    Tag-similarity goals go to the LSH family, tag-diversity goals (and
    any goal that mixes diversity terms) to the FDP family.  When the
    problem carries hard constraints the folding variant is preferred;
    without constraints the plain variant suffices.
    """
    family_is_fdp = problem.maximises_tag_diversity or any(
        objective.criterion is Criterion.DIVERSITY for objective in problem.objectives
    )
    if family_is_fdp:
        return "dv-fdp-fo" if problem.constraints else "dv-fdp"
    return "sm-lsh-fo" if problem.constraints else "sm-lsh"
