"""Algorithm capability matrix (Table 2 of the paper).

Table 2 summarises which algorithm family handles which combination of
optimisation criterion and constraint criteria, and with which
additional technique (folding / filtering).  :func:`capability_matrix`
reproduces that table as data, and :func:`recommend_algorithm` maps a
concrete problem specification to the paper's recommended solver -- the
rule the ``algorithm="auto"`` mode of :class:`repro.core.framework.TagDM`
uses.

On top of the paper's table, :func:`algorithm_capabilities` keys the
same knowledge by registry name (one :class:`AlgorithmCapability` per
concrete solver), and :func:`check_algorithm_capability` is the
machine-checkable rule the wire API's spec validator consults: asking
the LSH family to maximise diversity, the FDP family to maximise pure
similarity, or a plain (non-folding, non-filtering) variant to honour
hard constraints is a *capability mismatch*, rejected before the solve
starts instead of silently returning a result the algorithm was never
designed to produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.measures import Criterion, Dimension
from repro.core.problem import TagDMProblem

__all__ = [
    "CapabilityRow",
    "capability_matrix",
    "recommend_algorithm",
    "AlgorithmCapability",
    "algorithm_capabilities",
    "check_algorithm_capability",
]


@dataclass(frozen=True)
class CapabilityRow:
    """One row of Table 2."""

    optimization: str
    algorithm_family: str
    constraints: str
    technique: str


def capability_matrix() -> List[CapabilityRow]:
    """The rows of Table 2 (optimisation / family / constraints / technique)."""
    return [
        CapabilityRow(
            optimization="similarity",
            algorithm_family="LSH based",
            constraints="similarity",
            technique="fold constraints",
        ),
        CapabilityRow(
            optimization="similarity",
            algorithm_family="LSH based",
            constraints="diversity",
            technique="filter constraints",
        ),
        CapabilityRow(
            optimization="similarity",
            algorithm_family="LSH based",
            constraints="similarity, diversity",
            technique="fold similarity constraints, filter diversity constraints",
        ),
        CapabilityRow(
            optimization="diversity",
            algorithm_family="FDP based",
            constraints="similarity",
            technique="fold constraints",
        ),
        CapabilityRow(
            optimization="diversity",
            algorithm_family="FDP based",
            constraints="diversity",
            technique="fold constraints",
        ),
        CapabilityRow(
            optimization="diversity",
            algorithm_family="FDP based",
            constraints="similarity, diversity",
            technique="fold constraints",
        ),
    ]


@dataclass(frozen=True)
class AlgorithmCapability:
    """What one registered solver can be asked to do.

    Attributes
    ----------
    name:
        Registry name (``"sm-lsh-fo"``, ...).
    family:
        ``"exact"``, ``"lsh"`` or ``"fdp"``.
    objective_criteria:
        The criteria the solver's optimisation heuristic targets; a
        problem whose objectives use any other criterion is a mismatch.
    handles_constraints:
        Whether the solver enforces hard dual-mining constraints (via
        folding or filtering); plain variants do not, so a constrained
        problem routed to them is a mismatch.
    """

    name: str
    family: str
    objective_criteria: Tuple[Criterion, ...]
    handles_constraints: bool


def algorithm_capabilities() -> Dict[str, AlgorithmCapability]:
    """Table 2 keyed by registry name, one entry per concrete solver."""
    both = (Criterion.SIMILARITY, Criterion.DIVERSITY)
    rows = [
        AlgorithmCapability("exact", "exact", both, True),
        AlgorithmCapability("sm-lsh", "lsh", (Criterion.SIMILARITY,), False),
        AlgorithmCapability("sm-lsh-fi", "lsh", (Criterion.SIMILARITY,), True),
        AlgorithmCapability("sm-lsh-fo", "lsh", (Criterion.SIMILARITY,), True),
        AlgorithmCapability("dv-fdp", "fdp", both, False),
        AlgorithmCapability("dv-fdp-fi", "fdp", both, True),
        AlgorithmCapability("dv-fdp-fo", "fdp", both, True),
    ]
    return {row.name: row for row in rows}


def check_algorithm_capability(problem: TagDMProblem, algorithm: str) -> Optional[str]:
    """Why ``algorithm`` cannot solve ``problem``, or ``None`` when it can.

    ``"auto"`` always passes (the session resolves it to a recommended
    solver); an algorithm missing from the capability table also passes,
    so externally registered solvers are not rejected by a table they
    never appeared in.  The returned string is a human-readable reason
    the wire API wraps in a capability-mismatch error (HTTP 409).

    The rules encode Table 2 plus the family split of Sections 4 and 5:
    the LSH family's bucket search only maximises similarity, the FDP
    family's dispersion heuristic is built for diversity goals (the
    paper folds similarity terms into its distances, so mixed objectives
    stay in the FDP family), and only the folding/filtering variants
    enforce hard constraints.
    """
    name = algorithm.lower()
    if name == "auto":
        return None
    capability = algorithm_capabilities().get(name)
    if capability is None:
        return None
    objective_criteria = {objective.criterion for objective in problem.objectives}
    unsupported = objective_criteria - set(capability.objective_criteria)
    if unsupported:
        return (
            f"{name} only maximises "
            f"{'/'.join(c.value for c in capability.objective_criteria)} objectives; "
            f"problem {problem.name!r} optimises "
            f"{'/'.join(sorted(c.value for c in unsupported))}"
        )
    if capability.family == "fdp" and Criterion.DIVERSITY not in objective_criteria:
        return (
            f"{name} (FDP family) needs at least one diversity objective; "
            f"problem {problem.name!r} maximises similarity only "
            "(use the SM-LSH family or exact)"
        )
    if problem.constraints and not capability.handles_constraints:
        return (
            f"{name} ignores hard constraints; problem {problem.name!r} has "
            f"{len(problem.constraints)} (use the -fi/-fo variant)"
        )
    return None


def recommend_algorithm(problem: TagDMProblem) -> str:
    """Return the paper's recommended solver name for ``problem``.

    Tag-similarity goals go to the LSH family, tag-diversity goals (and
    any goal that mixes diversity terms) to the FDP family.  When the
    problem carries hard constraints the folding variant is preferred;
    without constraints the plain variant suffices.
    """
    family_is_fdp = problem.maximises_tag_diversity or any(
        objective.criterion is Criterion.DIVERSITY for objective in problem.objectives
    )
    if family_is_fdp:
        return "dv-fdp-fo" if problem.constraints else "dv-fdp"
    return "sm-lsh-fo" if problem.constraints else "sm-lsh"
