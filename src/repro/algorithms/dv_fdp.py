"""DV-FDP, DV-FDP-Fi and DV-FDP-Fo (Section 5).

The facility-dispersion family solves TagDM instances whose optimisation
goal is tag *diversity* (Problems 4-6 of Table 1), and -- as the paper
notes -- the same greedy construction extends to similarity goals by
maximising pairwise similarity instead of distance.

The shared machinery: build the ``n x n`` pairwise objective-score
matrix over the candidate groups' tag signatures, seed with the heaviest
pair and greedily add the group with the largest total score against the
already-selected set (Algorithm 2), which inherits the factor-4
approximation guarantee of the MAX-AVG dispersion heuristic (Theorem 4)
when no hard constraints are present.

Variants:

* ``DV-FDP`` (:class:`DvFdpAlgorithm`) -- the pure optimisation of
  Section 5.1: hard constraints are ignored;
* ``DV-FDP-Fi`` -- run the greedy, then post-filter the selected set
  for hard-constraint satisfaction, falling back to the best feasible
  subset of the selection (Section 5.2);
* ``DV-FDP-Fo`` -- fold the hard constraints into the greedy add step:
  only pairwise-feasible groups may join the result (Section 5.3).
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.base import MiningAlgorithm, register_algorithm
from repro.algorithms.scoring import (
    BatchCandidateScorer,
    PairwiseMatrixCache,
    ProblemEvaluator,
)
from repro.core.groups import TaggingActionGroup
from repro.core.problem import TagDMProblem
from repro.core.result import MiningResult
from repro.geometry.dispersion import (
    constrained_greedy_dispersion,
    greedy_max_avg_dispersion,
)

__all__ = ["DvFdpAlgorithm", "DvFdpFilterAlgorithm", "DvFdpFoldAlgorithm"]

#: Ceiling on ``C(pool, size)`` below which the DV-FDP-Fi post-filter
#: enumerates subsets exhaustively (the exact Section 5.2 semantics).
#: Above the cap -- e.g. the default pool of ``3k`` groups already gives
#: ``C(60, 20) ~ 4e15`` at ``k = 20`` -- enumeration is replaced by the
#: greedy feasible-subset construction, which evaluates ``O(pool)``
#: candidates per admissible size instead.
EXACT_POST_FILTER_CAP = 2000


class _BaseDvFdp(MiningAlgorithm):
    """Shared implementation of the DV-FDP family."""

    #: How hard constraints participate: "none", "filter" or "fold".
    constraint_mode = "none"

    def __init__(
        self,
        seed: int = 0,
        filter_pool_multiplier: int = 3,
        post_filter_cap: int = EXACT_POST_FILTER_CAP,
    ) -> None:
        # The greedy construction is deterministic; ``seed`` is accepted so
        # the common option set of ``build_algorithm`` applies uniformly.
        if filter_pool_multiplier < 1:
            raise ValueError("filter_pool_multiplier must be at least 1")
        if post_filter_cap < 1:
            raise ValueError("post_filter_cap must be at least 1")
        self.seed = seed
        self.filter_pool_multiplier = filter_pool_multiplier
        self.post_filter_cap = post_filter_cap

    # ------------------------------------------------------------------
    def _select_indices(
        self,
        problem: TagDMProblem,
        cache: PairwiseMatrixCache,
    ) -> Tuple[Optional[List[int]], int]:
        """Run the greedy selection; returns (indices or None, evaluations)."""
        objective_matrix = cache.objective_matrix(problem)
        n = objective_matrix.shape[0]
        k = min(problem.k_hi, n)
        evaluations = 0

        if self.constraint_mode == "filter":
            # Select a slightly larger pool greedily; the post-filter then
            # searches that pool for the best feasible k-subset, which keeps
            # the filtering variant from returning null on every run while
            # staying a pure post-processing step.
            pool_size = min(n, max(k, k * self.filter_pool_multiplier))
            result = greedy_max_avg_dispersion(objective_matrix, pool_size)
            evaluations += n * pool_size
            return list(result.indices), evaluations

        if self.constraint_mode == "fold":
            constraint_matrices = cache.constraint_matrices(problem)
            feasible = np.ones((n, n), dtype=bool)
            for matrix, threshold, _key in constraint_matrices:
                feasible &= matrix >= threshold

            result = constrained_greedy_dispersion(
                objective_matrix, k, feasible_matrix=feasible
            )
            evaluations += n * k  # greedy scans candidates each round
            if result is not None and len(result.indices) >= min(k, problem.k_lo):
                return list(result.indices), evaluations

            # The strict per-pair folding stalled.  The actual constraint is
            # on the *mean* pairwise score of the set, so retry with a greedy
            # whose add step checks the aggregated constraint instead.
            indices = self._mean_feasible_greedy(
                objective_matrix, constraint_matrices, feasible, k
            )
            evaluations += n * k
            if indices is None and result is not None:
                return list(result.indices), evaluations
            return indices, evaluations

        result = greedy_max_avg_dispersion(objective_matrix, k)
        evaluations += n * k
        return list(result.indices), evaluations

    @staticmethod
    def _mean_feasible_greedy(
        objective_matrix: np.ndarray,
        constraint_matrices: Sequence[Tuple[np.ndarray, float, str]],
        pair_feasible: np.ndarray,
        k: int,
    ) -> Optional[List[int]]:
        """Greedy add step checking the *aggregated* constraints.

        Seeds with the heaviest pair that satisfies every constraint
        pairwise (for a pair, mean and pairwise coincide), then adds the
        candidate with the best objective gain among those that keep the
        mean pairwise score of every constraint at or above its threshold.
        """
        n = objective_matrix.shape[0]
        seed_mask = pair_feasible.copy()
        np.fill_diagonal(seed_mask, False)
        if not seed_mask.any():
            return None
        masked = np.where(seed_mask, objective_matrix, -np.inf)
        seed_a, seed_b = np.unravel_index(np.argmax(masked), masked.shape)
        selected = [int(seed_a), int(seed_b)]
        constraint_pair_sums = [
            float(matrix[seed_a, seed_b]) for matrix, _, _ in constraint_matrices
        ]

        remaining = np.ones(n, dtype=bool)
        remaining[selected] = False
        while len(selected) < k and remaining.any():
            # Pairs within the would-be set of size len(selected)+1.
            total_pairs = (len(selected) + 1) * len(selected) // 2
            admissible = remaining.copy()
            for (matrix, threshold, _key), pair_sum in zip(
                constraint_matrices, constraint_pair_sums
            ):
                candidate_sums = matrix[:, selected].sum(axis=1)
                means = (pair_sum + candidate_sums) / total_pairs
                admissible &= means >= threshold
            if not admissible.any():
                break
            gains = objective_matrix[:, selected].sum(axis=1)
            gains[~admissible] = -np.inf
            best = int(np.argmax(gains))
            for position, (matrix, _, _) in enumerate(constraint_matrices):
                constraint_pair_sums[position] += float(matrix[best, selected].sum())
            selected.append(best)
            remaining[best] = False
        if len(selected) < k:
            return None
        return selected

    def _post_filter(
        self,
        indices: List[int],
        problem: TagDMProblem,
        groups: Sequence[TaggingActionGroup],
        evaluator: ProblemEvaluator,
        cache: PairwiseMatrixCache,
    ) -> Tuple[Optional[List[int]], int]:
        """DV-FDP-Fi post-processing: best feasible subset of the selection.

        For each admissible size (largest first), candidate subsets of the
        greedy pool are enumerated exhaustively only while
        ``C(pool, size)`` stays at or below ``post_filter_cap``
        (:data:`EXACT_POST_FILTER_CAP`); beyond the cap, where exhaustive
        enumeration explodes combinatorially (``C(60, 20) ~ 4e15`` at the
        defaults with ``k = 20``), a greedy feasible-subset construction
        emits ``O(pool)`` candidates per size instead.  Every candidate is
        judged with the exact problem semantics, so a returned subset is
        always genuinely feasible; the greedy path merely searches fewer
        subsets.
        """
        evaluations = 0
        best: Optional[List[int]] = None
        best_objective = float("-inf")
        for size in range(min(problem.k_hi, len(indices)), problem.k_lo - 1, -1):
            if comb(len(indices), size) <= self.post_filter_cap:
                candidates: List[List[int]] = [
                    list(subset) for subset in combinations(indices, size)
                ]
            else:
                candidates = self._greedy_feasible_subsets(
                    indices, size, problem, cache
                )
            evaluations += len(candidates)
            for subset, (feasible, objective) in zip(
                candidates,
                self._judge_candidates(candidates, problem, groups, evaluator, cache),
            ):
                if feasible and objective > best_objective:
                    best_objective = objective
                    best = list(subset)
            if best is not None:
                break
        return best, evaluations

    @staticmethod
    def _judge_candidates(
        candidates: List[List[int]],
        problem: TagDMProblem,
        groups: Sequence[TaggingActionGroup],
        evaluator: ProblemEvaluator,
        cache: PairwiseMatrixCache,
    ) -> List[Tuple[bool, float]]:
        """Exact ``(feasible, objective)`` per candidate, batched when possible."""
        if candidates and BatchCandidateScorer.supports(problem, evaluator.functions):
            scorer = BatchCandidateScorer(cache, problem)
            return scorer.score(candidates, require_constraints=True)
        results: List[Tuple[bool, float]] = []
        for subset in candidates:
            evaluation = evaluator.evaluate([groups[i] for i in subset])
            results.append((evaluation.feasible, evaluation.objective_value))
        return results

    def _greedy_feasible_subsets(
        self,
        pool: List[int],
        size: int,
        problem: TagDMProblem,
        cache: PairwiseMatrixCache,
    ) -> List[List[int]]:
        """Bounded search for feasible ``size``-subsets of the greedy pool.

        Every pool member seeds two greedy constructions over the cached
        pairwise matrices: one adds the member with the best *objective*
        gain among those keeping every constraint's mean pairwise score at
        or above its threshold, the other maximises the worst *constraint
        margin* (feasibility-first, for problems whose thresholds bind
        tightly).  Candidates are deduplicated; final feasibility is
        decided by the exact evaluation in :meth:`_post_filter`.
        """
        pool = list(pool)
        n = len(pool)
        if size > n:
            return []
        objective = cache.objective_matrix(problem)[np.ix_(pool, pool)]
        constraint_entries = [
            (matrix[np.ix_(pool, pool)], threshold)
            for matrix, threshold, _key in cache.constraint_matrices(problem)
        ]

        candidates: List[List[int]] = []
        seen: set = set()
        for seed_position in range(n):
            for feasibility_first in (False, True):
                local = self._grow_subset(
                    seed_position, size, objective, constraint_entries, feasibility_first
                )
                if local is None:
                    continue
                key = frozenset(local)
                if key in seen:
                    continue
                seen.add(key)
                candidates.append(sorted(pool[position] for position in local))
        return candidates

    @staticmethod
    def _grow_subset(
        seed: int,
        size: int,
        objective: np.ndarray,
        constraint_entries: Sequence[Tuple[np.ndarray, float]],
        feasibility_first: bool,
    ) -> Optional[List[int]]:
        """Grow one ``size``-subset from ``seed`` over local pool indices.

        Maintains the pairwise-sum of every constraint matrix so the mean
        score of the would-be set is evaluated in O(pool) per step.  When
        no admissible candidate remains the growth continues with the
        least-violating one -- the exact evaluation downstream rejects
        infeasible outcomes, but an optimistic completion beats returning
        nothing when a later addition restores the mean.
        """
        n = objective.shape[0]
        selected = [seed]
        remaining = np.ones(n, dtype=bool)
        remaining[seed] = False
        objective_gains = objective[:, seed].copy()
        constraint_sums = [matrix[:, seed].copy() for matrix, _ in constraint_entries]
        pair_sums = [0.0 for _ in constraint_entries]

        while len(selected) < size:
            total_pairs = (len(selected) + 1) * len(selected) // 2
            margins = np.full(n, np.inf)
            admissible = remaining.copy()
            for position, (_, threshold) in enumerate(constraint_entries):
                means = (pair_sums[position] + constraint_sums[position]) / total_pairs
                margins = np.minimum(margins, means - threshold)
                admissible &= means >= threshold
            pick_from = admissible if admissible.any() else remaining
            if not pick_from.any():
                return None
            if feasibility_first and constraint_entries:
                scores = np.where(pick_from, margins, -np.inf)
            else:
                scores = np.where(pick_from, objective_gains, -np.inf)
            best = int(np.argmax(scores))
            for position, (matrix, _) in enumerate(constraint_entries):
                pair_sums[position] += float(constraint_sums[position][best])
                constraint_sums[position] += matrix[:, best]
            objective_gains += objective[:, best]
            selected.append(best)
            remaining[best] = False
        return selected

    def _solve(
        self,
        problem: TagDMProblem,
        groups: Sequence[TaggingActionGroup],
        evaluator: ProblemEvaluator,
    ) -> MiningResult:
        cache = self._matrix_cache(groups, evaluator.functions)
        indices, evaluations = self._select_indices(problem, cache)
        metadata: Dict[str, object] = {
            "constraint_mode": self.constraint_mode,
            "candidate_groups": len(groups),
        }

        if indices is None:
            metadata["failure"] = "no feasible seed pair"
            return self._result_from_groups(problem, (), evaluator, evaluations, metadata)

        if self.constraint_mode == "fold" and len(indices) < problem.k_lo:
            # The folded greedy could not grow a feasible set of admissible
            # size; report a null result rather than an undersized one.
            metadata["failure"] = (
                f"constrained greedy stalled at {len(indices)} groups "
                f"(k_lo={problem.k_lo})"
            )
            return self._result_from_groups(problem, (), evaluator, evaluations, metadata)

        if self.constraint_mode == "filter":
            filtered, extra = self._post_filter(indices, problem, groups, evaluator, cache)
            evaluations += extra
            if filtered is None:
                metadata["failure"] = "post-filtering removed every subset"
                return self._result_from_groups(
                    problem, (), evaluator, evaluations, metadata
                )
            indices = filtered

        chosen = [groups[i] for i in indices]
        return self._result_from_groups(problem, chosen, evaluator, evaluations, metadata)


@register_algorithm
class DvFdpAlgorithm(_BaseDvFdp):
    """DV-FDP: greedy dispersion on the objective, constraints ignored."""

    name = "dv-fdp"
    constraint_mode = "none"


@register_algorithm
class DvFdpFilterAlgorithm(_BaseDvFdp):
    """DV-FDP-Fi: greedy dispersion followed by constraint post-filtering."""

    name = "dv-fdp-fi"
    constraint_mode = "filter"


@register_algorithm
class DvFdpFoldAlgorithm(_BaseDvFdp):
    """DV-FDP-Fo: constraints folded into every greedy add step."""

    name = "dv-fdp-fo"
    constraint_mode = "fold"
