"""The Exact brute-force baseline (Section 3.1).

Exact enumerates every candidate set of tagging-action groups whose size
lies within the problem's ``[k_lo, k_hi]`` bounds, checks the hard
constraints on each, and returns the feasible set with the maximum
optimisation score.  The number of candidate sets is
``sum_k C(n, k)`` and grows combinatorially with the number of candidate
groups ``n``, which is exactly why the paper develops the LSH and FDP
heuristics; the class guards against accidental blow-ups with an
explicit ``max_candidates`` cap.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithms.base import MiningAlgorithm, register_algorithm
from repro.algorithms.scoring import PairwiseMatrixCache, ProblemEvaluator
from repro.core.groups import TaggingActionGroup
from repro.core.problem import TagDMProblem
from repro.core.result import MiningResult

__all__ = ["ExactAlgorithm"]


@register_algorithm
class ExactAlgorithm(MiningAlgorithm):
    """Exhaustive enumeration of candidate group sets.

    Parameters
    ----------
    max_candidates:
        Upper bound on the number of candidate sets that will be
        enumerated; exceeding it raises ``ValueError`` instead of
        silently running for hours.
    """

    name = "exact"

    def __init__(self, max_candidates: int = 2_000_000) -> None:
        if max_candidates <= 0:
            raise ValueError("max_candidates must be positive")
        self.max_candidates = max_candidates

    def _candidate_count(self, n_groups: int, problem: TagDMProblem) -> int:
        k_hi = min(problem.k_hi, n_groups)
        return sum(comb(n_groups, k) for k in range(problem.k_lo, k_hi + 1))

    def _solve(
        self,
        problem: TagDMProblem,
        groups: Sequence[TaggingActionGroup],
        evaluator: ProblemEvaluator,
    ) -> MiningResult:
        n = len(groups)
        total_candidates = self._candidate_count(n, problem)
        if total_candidates > self.max_candidates:
            raise ValueError(
                f"Exact would enumerate {total_candidates} candidate sets over "
                f"{n} groups, exceeding max_candidates={self.max_candidates}; "
                "reduce the candidate group count or use a heuristic algorithm"
            )

        cache = self._matrix_cache(groups, evaluator.functions)
        objective_matrix = cache.objective_matrix(problem)
        constraint_matrices = cache.constraint_matrices(problem)

        best_indices: Optional[Tuple[int, ...]] = None
        best_objective = float("-inf")
        evaluations = 0

        k_hi = min(problem.k_hi, n)
        for k in range(problem.k_lo, k_hi + 1):
            for subset in combinations(range(n), k):
                evaluations += 1
                if cache.subset_support(subset) < problem.min_support:
                    continue
                if not self._constraints_hold(subset, constraint_matrices, problem):
                    continue
                objective = self._subset_objective(subset, objective_matrix, problem)
                if objective > best_objective:
                    best_objective = objective
                    best_indices = subset

        metadata: Dict[str, object] = {
            "candidates_enumerated": evaluations,
            "candidate_groups": n,
        }
        if best_indices is None:
            return self._result_from_groups(problem, (), evaluator, evaluations, metadata)
        chosen = [groups[i] for i in best_indices]
        return self._result_from_groups(problem, chosen, evaluator, evaluations, metadata)

    # ------------------------------------------------------------------
    @staticmethod
    def _subset_objective(
        subset: Sequence[int], objective_matrix, problem: TagDMProblem
    ) -> float:
        """Mean pairwise objective score of a subset (singleton handling
        mirrors :class:`PairwiseAggregationFunction`)."""
        if len(subset) < 2:
            # The diagonal of each objective matrix already encodes the
            # singleton convention (1 for similarity, 0 for diversity),
            # weighted and summed across objectives.
            index = subset[0]
            return float(objective_matrix[index, index])
        values = [objective_matrix[a, b] for a, b in combinations(subset, 2)]
        return float(sum(values) / len(values))

    @staticmethod
    def _constraints_hold(
        subset: Sequence[int],
        constraint_matrices: List[Tuple],
        problem: TagDMProblem,
    ) -> bool:
        for matrix, threshold, _key in constraint_matrices:
            if len(subset) < 2:
                score = float(matrix[subset[0], subset[0]])
            else:
                values = [matrix[a, b] for a, b in combinations(subset, 2)]
                score = float(sum(values) / len(values))
            if score < threshold:
                return False
        return True
