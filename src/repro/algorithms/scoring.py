"""Evaluating TagDM problems over candidate group sets.

Every algorithm needs the same three judgements about a candidate set of
tagging-action groups: the optimisation score (weighted sum of the
objective dual-mining functions), the per-constraint scores, and overall
feasibility (constraints + group support + group-count bounds).
:class:`ProblemEvaluator` centralises those judgements, and
:class:`PairwiseMatrixCache` precomputes the pairwise comparison matrices
the Exact baseline and the FDP algorithms iterate over.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.functions import FunctionSuite
from repro.core.groups import TaggingActionGroup, group_support
from repro.core.measures import Criterion, Dimension
from repro.core.problem import TagDMProblem

__all__ = ["GroupSetEvaluation", "ProblemEvaluator", "PairwiseMatrixCache"]


@dataclass(frozen=True)
class GroupSetEvaluation:
    """Full evaluation of one candidate group set."""

    objective_value: float
    constraint_scores: Dict[str, float]
    support: int
    size_ok: bool
    support_ok: bool
    constraints_ok: bool

    @property
    def feasible(self) -> bool:
        """All hard requirements hold simultaneously."""
        return self.size_ok and self.support_ok and self.constraints_ok


class ProblemEvaluator:
    """Score candidate group sets against one problem specification."""

    def __init__(self, problem: TagDMProblem, functions: FunctionSuite) -> None:
        self.problem = problem
        self.functions = functions

    # ------------------------------------------------------------------
    def objective_value(self, groups: Sequence[TaggingActionGroup]) -> float:
        """Weighted sum of objective scores (the quantity to maximise)."""
        total = 0.0
        for objective in self.problem.objectives:
            total += objective.weight * self.functions.score(
                groups, objective.dimension, objective.criterion
            )
        return total

    def constraint_scores(self, groups: Sequence[TaggingActionGroup]) -> Dict[str, float]:
        """Achieved score of every constraint, keyed ``dimension.criterion``."""
        scores: Dict[str, float] = {}
        for constraint in self.problem.constraints:
            key = f"{constraint.dimension.value}.{constraint.criterion.value}"
            scores[key] = self.functions.score(
                groups, constraint.dimension, constraint.criterion
            )
        return scores

    def evaluate(self, groups: Sequence[TaggingActionGroup]) -> GroupSetEvaluation:
        """Evaluate objective, constraints, support and size bounds."""
        groups = list(groups)
        size_ok = self.problem.k_lo <= len(groups) <= self.problem.k_hi
        support = group_support(groups)
        support_ok = support >= self.problem.min_support
        scores = self.constraint_scores(groups)
        constraints_ok = all(
            scores[f"{c.dimension.value}.{c.criterion.value}"] >= c.threshold
            for c in self.problem.constraints
        )
        return GroupSetEvaluation(
            objective_value=self.objective_value(groups),
            constraint_scores=scores,
            support=support,
            size_ok=size_ok,
            support_ok=support_ok,
            constraints_ok=constraints_ok,
        )

    def is_feasible(self, groups: Sequence[TaggingActionGroup]) -> bool:
        """Shorthand for ``evaluate(groups).feasible``."""
        return self.evaluate(groups).feasible


class PairwiseMatrixCache:
    """Precomputed pairwise comparison matrices over a fixed group list.

    For ``n`` candidate groups the cache materialises, on demand, the
    ``(n, n)`` matrix of pairwise scores for a (dimension, criterion)
    pair.  Subset scores under mean aggregation then reduce to averaging
    matrix entries, which is what makes the Exact baseline and the FDP
    greedy loops tractable.
    """

    def __init__(
        self, groups: Sequence[TaggingActionGroup], functions: FunctionSuite
    ) -> None:
        self.groups = list(groups)
        self.functions = functions
        self._matrices: Dict[Tuple[Dimension, Criterion], np.ndarray] = {}
        self._sizes = np.array([group.support for group in self.groups], dtype=np.int64)
        self._disjoint: Optional[bool] = None

    def __len__(self) -> int:
        return len(self.groups)

    # ------------------------------------------------------------------
    def matrix(self, dimension: Dimension, criterion: Criterion) -> np.ndarray:
        """Return (building if needed) the pairwise score matrix."""
        key = (dimension, criterion)
        cached = self._matrices.get(key)
        if cached is not None:
            return cached
        builder = self.functions.matrix_builder_for(dimension)
        opposite = self._matrices.get((dimension, criterion.opposite))
        if builder is not None and opposite is not None:
            # The vectorised builders define diversity as 1 - similarity, so
            # the opposite criterion's matrix can be derived for free.
            matrix = 1.0 - opposite
        elif builder is not None:
            matrix = np.asarray(builder(self.groups, dimension, criterion), dtype=float)
        elif dimension is Dimension.TAGS and self._all_groups_have_signatures():
            matrix = self._tag_matrix(criterion)
        else:
            matrix = self._generic_matrix(dimension, criterion)
        # The diagonal is never used by mean-over-distinct-pairs scoring,
        # but a self-comparison is maximally similar by definition.
        fill = 1.0 if criterion is Criterion.SIMILARITY else 0.0
        np.fill_diagonal(matrix, fill)
        self._matrices[key] = matrix
        return matrix

    def _all_groups_have_signatures(self) -> bool:
        return all(group.has_signature() for group in self.groups)

    def _tag_matrix(self, criterion: Criterion) -> np.ndarray:
        """Vectorised tag pairwise matrix (cosine over stacked signatures).

        Matches :func:`repro.core.functions.tag_signature_pairwise`:
        similarity is clipped at zero, diversity is its complement.
        """
        from repro.geometry.distance import pairwise_cosine_similarity

        signatures = np.vstack([group.require_signature() for group in self.groups])
        similarity = np.clip(pairwise_cosine_similarity(signatures), 0.0, 1.0)
        if criterion is Criterion.SIMILARITY:
            return similarity
        return 1.0 - similarity

    def _generic_matrix(self, dimension: Dimension, criterion: Criterion) -> np.ndarray:
        n = len(self.groups)
        matrix = np.zeros((n, n), dtype=float)
        for i in range(n):
            for j in range(i + 1, n):
                score = self.functions.pairwise(
                    self.groups[i], self.groups[j], dimension, criterion
                )
                matrix[i, j] = score
                matrix[j, i] = score
        return matrix

    def subset_mean(
        self, indices: Sequence[int], dimension: Dimension, criterion: Criterion
    ) -> float:
        """Mean pairwise score of the subset (1.0/0.0 for singletons)."""
        if len(indices) < 2:
            return 1.0 if criterion is Criterion.SIMILARITY else 0.0
        matrix = self.matrix(dimension, criterion)
        values = [matrix[a, b] for a, b in combinations(indices, 2)]
        return float(np.mean(values))

    # ------------------------------------------------------------------
    @property
    def groups_are_disjoint(self) -> bool:
        """Whether the candidate groups have pairwise disjoint tuple sets.

        Full-conjunction enumeration yields disjoint groups, in which
        case subset support is simply the sum of group sizes.
        """
        if self._disjoint is None:
            union_size = len(
                set().union(*(group.tuple_indices for group in self.groups))
            ) if self.groups else 0
            self._disjoint = union_size == int(self._sizes.sum())
        return self._disjoint

    def subset_support(self, indices: Sequence[int]) -> int:
        """Group support (Definition 1) of the subset."""
        if self.groups_are_disjoint:
            return int(self._sizes[list(indices)].sum())
        return group_support([self.groups[i] for i in indices])

    def objective_matrix(self, problem: TagDMProblem) -> np.ndarray:
        """Weighted sum of objective matrices (pairwise objective scores)."""
        n = len(self.groups)
        total = np.zeros((n, n), dtype=float)
        for objective in problem.objectives:
            total += objective.weight * self.matrix(objective.dimension, objective.criterion)
        return total

    def constraint_matrices(
        self, problem: TagDMProblem
    ) -> List[Tuple[np.ndarray, float, str]]:
        """Pairwise matrix, threshold and key for every constraint."""
        out: List[Tuple[np.ndarray, float, str]] = []
        for constraint in problem.constraints:
            key = f"{constraint.dimension.value}.{constraint.criterion.value}"
            out.append(
                (self.matrix(constraint.dimension, constraint.criterion), constraint.threshold, key)
            )
        return out
