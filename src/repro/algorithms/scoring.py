"""Evaluating TagDM problems over candidate group sets.

Every algorithm needs the same three judgements about a candidate set of
tagging-action groups: the optimisation score (weighted sum of the
objective dual-mining functions), the per-constraint scores, and overall
feasibility (constraints + group support + group-count bounds).
:class:`ProblemEvaluator` centralises those judgements, and
:class:`PairwiseMatrixCache` precomputes the pairwise comparison matrices
the Exact baseline and the FDP algorithms iterate over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.functions import FunctionSuite
from repro.core.groups import TaggingActionGroup, group_support
from repro.core.measures import Criterion, Dimension
from repro.core.problem import TagDMProblem

__all__ = [
    "GroupSetEvaluation",
    "ProblemEvaluator",
    "PairwiseMatrixCache",
    "BatchCandidateScorer",
    "batch_subset_means",
]


def batch_subset_means(matrix: np.ndarray, subsets: np.ndarray) -> np.ndarray:
    """Mean pairwise score of many equal-size subsets in one gather.

    ``subsets`` is an ``(m, s)`` integer array of row/column indices with
    ``s >= 2`` into the symmetric ``matrix``; the off-diagonal submatrix
    sum counts every distinct pair exactly twice.
    """
    idx = np.asarray(subsets, dtype=np.intp)
    size = idx.shape[1]
    gathered = matrix[idx[:, :, None], idx[:, None, :]]
    trace = np.einsum("mii->m", gathered)
    return (gathered.sum(axis=(1, 2)) - trace) / (size * (size - 1))


@dataclass(frozen=True)
class GroupSetEvaluation:
    """Full evaluation of one candidate group set."""

    objective_value: float
    constraint_scores: Dict[str, float]
    support: int
    size_ok: bool
    support_ok: bool
    constraints_ok: bool

    @property
    def feasible(self) -> bool:
        """All hard requirements hold simultaneously."""
        return self.size_ok and self.support_ok and self.constraints_ok


class ProblemEvaluator:
    """Score candidate group sets against one problem specification."""

    def __init__(self, problem: TagDMProblem, functions: FunctionSuite) -> None:
        self.problem = problem
        self.functions = functions

    # ------------------------------------------------------------------
    def objective_value(self, groups: Sequence[TaggingActionGroup]) -> float:
        """Weighted sum of objective scores (the quantity to maximise)."""
        total = 0.0
        for objective in self.problem.objectives:
            total += objective.weight * self.functions.score(
                groups, objective.dimension, objective.criterion
            )
        return total

    def constraint_scores(self, groups: Sequence[TaggingActionGroup]) -> Dict[str, float]:
        """Achieved score of every constraint, keyed ``dimension.criterion``."""
        scores: Dict[str, float] = {}
        for constraint in self.problem.constraints:
            key = f"{constraint.dimension.value}.{constraint.criterion.value}"
            scores[key] = self.functions.score(
                groups, constraint.dimension, constraint.criterion
            )
        return scores

    def evaluate(self, groups: Sequence[TaggingActionGroup]) -> GroupSetEvaluation:
        """Evaluate objective, constraints, support and size bounds."""
        groups = list(groups)
        size_ok = self.problem.k_lo <= len(groups) <= self.problem.k_hi
        support = group_support(groups)
        support_ok = support >= self.problem.min_support
        scores = self.constraint_scores(groups)
        constraints_ok = all(
            scores[f"{c.dimension.value}.{c.criterion.value}"] >= c.threshold
            for c in self.problem.constraints
        )
        return GroupSetEvaluation(
            objective_value=self.objective_value(groups),
            constraint_scores=scores,
            support=support,
            size_ok=size_ok,
            support_ok=support_ok,
            constraints_ok=constraints_ok,
        )

    def is_feasible(self, groups: Sequence[TaggingActionGroup]) -> bool:
        """Shorthand for ``evaluate(groups).feasible``."""
        return self.evaluate(groups).feasible


class PairwiseMatrixCache:
    """Precomputed pairwise comparison matrices over a fixed group list.

    For ``n`` candidate groups the cache materialises, on demand, the
    ``(n, n)`` matrix of pairwise scores for a (dimension, criterion)
    pair.  Subset scores under mean aggregation then reduce to averaging
    matrix entries, which is what makes the Exact baseline and the FDP
    greedy loops tractable.
    """

    def __init__(
        self, groups: Sequence[TaggingActionGroup], functions: FunctionSuite
    ) -> None:
        self.groups = list(groups)
        self.functions = functions
        self._matrices: Dict[Tuple[Dimension, Criterion], np.ndarray] = {}
        self._sizes = np.array([group.support for group in self.groups], dtype=np.int64)
        self._disjoint: Optional[bool] = None

    def __len__(self) -> int:
        return len(self.groups)

    # ------------------------------------------------------------------
    def matrix(self, dimension: Dimension, criterion: Criterion) -> np.ndarray:
        """Return (building if needed) the pairwise score matrix."""
        key = (dimension, criterion)
        cached = self._matrices.get(key)
        if cached is not None:
            return cached
        builder = self.functions.matrix_builder_for(dimension)
        opposite = self._matrices.get((dimension, criterion.opposite))
        if builder is not None and opposite is not None:
            # The vectorised builders define diversity as 1 - similarity, so
            # the opposite criterion's matrix can be derived for free.
            matrix = 1.0 - opposite
        elif builder is not None:
            matrix = np.asarray(builder(self.groups, dimension, criterion), dtype=float)
        elif dimension is Dimension.TAGS and self._all_groups_have_signatures():
            matrix = self._tag_matrix(criterion)
        else:
            matrix = self._generic_matrix(dimension, criterion)
        # The diagonal is never used by mean-over-distinct-pairs scoring,
        # but a self-comparison is maximally similar by definition.
        fill = 1.0 if criterion is Criterion.SIMILARITY else 0.0
        np.fill_diagonal(matrix, fill)
        self._matrices[key] = matrix
        return matrix

    def _all_groups_have_signatures(self) -> bool:
        return all(group.has_signature() for group in self.groups)

    def _tag_matrix(self, criterion: Criterion) -> np.ndarray:
        """Vectorised tag pairwise matrix (cosine over stacked signatures).

        Matches :func:`repro.core.functions.tag_signature_pairwise`:
        similarity is clipped at zero, diversity is its complement.
        """
        from repro.geometry.distance import pairwise_cosine_similarity

        signatures = np.vstack([group.require_signature() for group in self.groups])
        similarity = np.clip(pairwise_cosine_similarity(signatures), 0.0, 1.0)
        if criterion is Criterion.SIMILARITY:
            return similarity
        return 1.0 - similarity

    def _generic_matrix(self, dimension: Dimension, criterion: Criterion) -> np.ndarray:
        n = len(self.groups)
        matrix = np.zeros((n, n), dtype=float)
        for i in range(n):
            for j in range(i + 1, n):
                score = self.functions.pairwise(
                    self.groups[i], self.groups[j], dimension, criterion
                )
                matrix[i, j] = score
                matrix[j, i] = score
        return matrix

    def subset_mean(
        self, indices: Sequence[int], dimension: Dimension, criterion: Criterion
    ) -> float:
        """Mean pairwise score of the subset (1.0/0.0 for singletons).

        Computed via an ``np.ix_`` submatrix gather; the matrices are
        symmetric, so the off-diagonal submatrix sum counts every
        distinct pair exactly twice.
        """
        size = len(indices)
        if size < 2:
            return 1.0 if criterion is Criterion.SIMILARITY else 0.0
        matrix = self.matrix(dimension, criterion)
        idx = np.asarray(indices, dtype=np.intp)
        submatrix = matrix[np.ix_(idx, idx)]
        return float((submatrix.sum() - np.trace(submatrix)) / (size * (size - 1)))

    # ------------------------------------------------------------------
    @property
    def groups_are_disjoint(self) -> bool:
        """Whether the candidate groups have pairwise disjoint tuple sets.

        Full-conjunction enumeration yields disjoint groups, in which
        case subset support is simply the sum of group sizes.
        """
        if self._disjoint is None:
            union_size = len(
                set().union(*(group.tuple_indices for group in self.groups))
            ) if self.groups else 0
            self._disjoint = union_size == int(self._sizes.sum())
        return self._disjoint

    def subset_support(self, indices: Sequence[int]) -> int:
        """Group support (Definition 1) of the subset."""
        if self.groups_are_disjoint:
            return int(self._sizes[list(indices)].sum())
        return group_support([self.groups[i] for i in indices])

    def batch_subset_means(
        self,
        subsets: np.ndarray,
        dimension: Dimension,
        criterion: Criterion,
    ) -> np.ndarray:
        """Mean pairwise score of many equal-size subsets in one gather.

        ``subsets`` is an ``(m, s)`` integer array of group indices with
        ``s >= 2``.  Returns the ``m`` subset means that ``subset_mean``
        would produce one by one.
        """
        return batch_subset_means(self.matrix(dimension, criterion), subsets)

    def objective_matrix(self, problem: TagDMProblem) -> np.ndarray:
        """Weighted sum of objective matrices (pairwise objective scores)."""
        n = len(self.groups)
        total = np.zeros((n, n), dtype=float)
        for objective in problem.objectives:
            total += objective.weight * self.matrix(objective.dimension, objective.criterion)
        return total

    def constraint_matrices(
        self, problem: TagDMProblem
    ) -> List[Tuple[np.ndarray, float, str]]:
        """Pairwise matrix, threshold and key for every constraint."""
        out: List[Tuple[np.ndarray, float, str]] = []
        for constraint in problem.constraints:
            key = f"{constraint.dimension.value}.{constraint.criterion.value}"
            out.append(
                (self.matrix(constraint.dimension, constraint.criterion), constraint.threshold, key)
            )
        return out


class BatchCandidateScorer:
    """Score many candidate index sets against one problem in batch.

    The SM-LSH bucket post-processing emits up to ``max_subsets_per_bucket``
    candidate subsets per bucket; evaluating each through
    :meth:`ProblemEvaluator.evaluate` costs one Python pairwise loop per
    subset.  When every objective and constraint uses mean-of-pairs
    aggregation (the paper's default), the same judgements reduce to
    submatrix sums over the cached pairwise matrices, so a whole bucket's
    candidates are ranked with a handful of numpy gathers.

    ``score`` mirrors the (feasible, objective) contract of the per-set
    evaluator: size bounds always apply; support and constraint
    thresholds apply only when ``require_constraints`` is set (SM-LSH's
    ``constraint_mode="none"`` ranks by size alone, matching
    ``GroupSetEvaluation.size_ok``).
    """

    def __init__(self, cache: PairwiseMatrixCache, problem: TagDMProblem) -> None:
        self.cache = cache
        self.problem = problem

    @staticmethod
    def supports(problem: TagDMProblem, functions: FunctionSuite) -> bool:
        """Whether batch scoring reproduces the evaluator's judgements cheaply.

        Requires mean-of-pairs aggregation (correctness) *and* a
        vectorised pairwise-matrix path (cost): without a registered
        matrix builder the cache would fall back to an ``O(n^2)`` Python
        pairwise loop over all candidate groups, which can dwarf the
        per-candidate evaluation it replaces.  The tags dimension is
        exempt because the cache has a dedicated vectorised path over
        the stacked group signatures.
        """
        dimensions = {objective.dimension for objective in problem.objectives}
        dimensions |= {constraint.dimension for constraint in problem.constraints}
        for dimension in dimensions:
            if not functions.is_mean_pairwise(dimension):
                return False
            if (
                functions.matrix_builder_for(dimension) is None
                and dimension is not Dimension.TAGS
            ):
                return False
        return True

    @staticmethod
    def _singleton_score(criterion: Criterion) -> float:
        # Mirrors PairwiseAggregationFunction.score for < 2 groups.
        return 1.0 if criterion is Criterion.SIMILARITY else 0.0

    def score(
        self,
        candidates: Sequence[Sequence[int]],
        require_constraints: bool,
    ) -> List[Tuple[bool, float]]:
        """Return ``(feasible, objective_value)`` per candidate set."""
        problem = self.problem
        results: List[Optional[Tuple[bool, float]]] = [None] * len(candidates)
        by_size: Dict[int, List[int]] = {}
        for position, candidate in enumerate(candidates):
            by_size.setdefault(len(candidate), []).append(position)

        for size, positions in by_size.items():
            count = len(positions)
            size_ok = problem.k_lo <= size <= problem.k_hi
            if size < 2:
                objective_values = np.full(
                    count,
                    sum(
                        objective.weight * self._singleton_score(objective.criterion)
                        for objective in problem.objectives
                    ),
                )
                constraints_ok = np.full(
                    count,
                    all(
                        self._singleton_score(constraint.criterion) >= constraint.threshold
                        for constraint in problem.constraints
                    ),
                )
            else:
                subsets = np.asarray([candidates[p] for p in positions], dtype=np.intp)
                objective_values = np.zeros(count)
                for objective in problem.objectives:
                    objective_values += objective.weight * self.cache.batch_subset_means(
                        subsets, objective.dimension, objective.criterion
                    )
                constraints_ok = np.ones(count, dtype=bool)
                for constraint in problem.constraints:
                    means = self.cache.batch_subset_means(
                        subsets, constraint.dimension, constraint.criterion
                    )
                    constraints_ok &= means >= constraint.threshold

            if require_constraints:
                if problem.min_support > 0:
                    support_ok = np.fromiter(
                        (
                            self.cache.subset_support(candidates[p]) >= problem.min_support
                            for p in positions
                        ),
                        dtype=bool,
                        count=count,
                    )
                else:
                    support_ok = np.ones(count, dtype=bool)
                feasible = size_ok & support_ok & constraints_ok
            else:
                feasible = np.full(count, size_ok)

            for offset, position in enumerate(positions):
                results[position] = (bool(feasible[offset]), float(objective_values[offset]))
        return results  # type: ignore[return-value]
