"""SM-LSH, SM-LSH-Fi and SM-LSH-Fo (Section 4).

The LSH family solves TagDM instances whose optimisation goal is tag
*similarity* (Problems 1-3 of Table 1).  The shared machinery:

1. every candidate group is represented by its tag signature vector
   (optionally concatenated with a one-hot encoding of its user/item
   description -- the *folding* of Section 4.3);
2. the vectors are hashed into ``l`` tables of ``d'``-bit buckets using
   the random-hyperplane scheme of Theorem 2;
3. instead of nearest-neighbour lookups, whole buckets are treated as
   candidate result sets, ranked by the optimisation score, and the best
   feasible bucket wins;
4. if no bucket yields a feasible set, the bit width ``d'`` is relaxed
   (halved) and the search repeats -- coarser buckets hold more groups.

Variants:

* ``SM-LSH`` (:class:`SmLshAlgorithm` with ``constraint_mode="none"``)
  ignores the hard user/item constraints (the pure optimisation of
  Section 4.1);
* ``SM-LSH-Fi`` filters buckets for full constraint satisfaction after
  hashing (Section 4.2);
* ``SM-LSH-Fo`` folds the similarity constraints into the hashed vectors
  and filters only the remaining constraints (Section 4.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.base import MiningAlgorithm, register_algorithm
from repro.algorithms.scoring import BatchCandidateScorer, ProblemEvaluator
from repro.core.groups import TaggingActionGroup  # noqa: F401 (used in annotations)
from repro.core.measures import Criterion, Dimension
from repro.core.problem import TagDMProblem
from repro.core.result import MiningResult
from repro.core.signatures import signature_matrix
from repro.index.lsh import CosineLshIndex

__all__ = ["SmLshAlgorithm", "SmLshFilterAlgorithm", "SmLshFoldAlgorithm"]


def _one_hot_descriptions(
    groups: Sequence[TaggingActionGroup], dimensions: Sequence[Dimension]
) -> np.ndarray:
    """One-hot encode the group descriptions over the folded dimensions.

    The slots are learned from the descriptions themselves (every
    ``(column, value)`` pair present in any candidate group), which keeps
    the encoder independent of the originating dataset.
    """
    prefixes = []
    if Dimension.USERS in dimensions:
        prefixes.append("user.")
    if Dimension.ITEMS in dimensions:
        prefixes.append("item.")
    slots: Dict[Tuple[str, str], int] = {}
    for group in groups:
        for column, value in group.description.predicates:
            if any(column.startswith(prefix) for prefix in prefixes):
                slots.setdefault((column, value), len(slots))
    matrix = np.zeros((len(groups), max(1, len(slots))), dtype=float)
    if not slots:
        return matrix
    for row, group in enumerate(groups):
        for column, value in group.description.predicates:
            slot = slots.get((column, value))
            if slot is not None:
                matrix[row, slot] = 1.0
    return matrix


class _BaseSmLsh(MiningAlgorithm):
    """Shared implementation of the SM-LSH family."""

    #: How hard constraints participate: "none", "filter" or "fold".
    constraint_mode = "none"

    def __init__(
        self,
        n_bits: int = 10,
        n_tables: int = 1,
        seed: int = 0,
        max_relaxations: int = 8,
        max_subsets_per_bucket: int = 256,
    ) -> None:
        if n_bits <= 0:
            raise ValueError("n_bits must be positive")
        if n_tables <= 0:
            raise ValueError("n_tables must be positive")
        if max_relaxations < 1:
            raise ValueError("max_relaxations must be at least 1")
        if max_subsets_per_bucket < 1:
            raise ValueError("max_subsets_per_bucket must be at least 1")
        self.n_bits = n_bits
        self.n_tables = n_tables
        self.seed = seed
        self.max_relaxations = max_relaxations
        self.max_subsets_per_bucket = max_subsets_per_bucket

    # ------------------------------------------------------------------
    def _vectors(
        self, problem: TagDMProblem, groups: Sequence[TaggingActionGroup]
    ) -> Tuple[np.ndarray, bool]:
        """The vectors to hash and whether they are the raw signatures.

        Returns ``(vectors, pure)`` where ``pure`` is True when nothing
        was folded in -- exactly the case a session-cached LSH index over
        the signature matrix can serve.
        """
        signatures = signature_matrix(groups)
        if self.constraint_mode != "fold":
            return signatures, True
        folded_dimensions = [
            constraint.dimension
            for constraint in problem.constraints
            if constraint.criterion is Criterion.SIMILARITY
            and constraint.dimension in (Dimension.USERS, Dimension.ITEMS)
        ]
        if not folded_dimensions:
            return signatures, True
        one_hot = _one_hot_descriptions(groups, folded_dimensions)
        return np.hstack([one_hot, signatures]), False

    def _provided_index(
        self, bits: int, n_groups: int
    ) -> Optional[CosineLshIndex]:
        """Ask the session's LSH cache for an index (None when unusable)."""
        provider = getattr(self, "_lsh_provider", None)
        if provider is None:
            return None
        index = provider(bits, self.n_tables, self.seed)
        if index is None or index.n_indexed != n_groups:
            return None
        return index

    def _candidate_sets_from_bucket(
        self,
        members: List[int],
        vectors: np.ndarray,
        problem: TagDMProblem,
        groups: Sequence[TaggingActionGroup],
        evaluator: ProblemEvaluator,
        pair_cache: Dict[Tuple[int, int], bool],
    ) -> List[List[int]]:
        """Turn one bucket into candidate result sets of admissible size.

        Buckets no larger than ``k_hi`` are candidates as-is.  Larger
        buckets are post-processed (Sections 4.1-4.2 "check each bucket,
        then rank"): the members closest to the bucket centroid are kept
        and up to ``max_subsets_per_bucket`` of their ``k_hi``-subsets are
        emitted; in the constraint-aware modes a pairwise-feasible greedy
        over the bucket adds further candidates, so hard-constraint
        filtering has several chances per bucket instead of exactly one.
        """
        from itertools import combinations, islice
        from math import comb

        k_lo, k_hi = problem.k_lo, problem.k_hi
        if len(members) < k_lo:
            return []
        if len(members) <= k_hi:
            return [list(members)]

        bucket_vectors = vectors[members]
        centroid = bucket_vectors.mean(axis=0)
        norms = np.linalg.norm(bucket_vectors, axis=1) * (np.linalg.norm(centroid) or 1.0)
        norms[norms == 0] = 1.0
        similarity_to_centroid = bucket_vectors @ centroid / norms
        order = np.argsort(similarity_to_centroid)[::-1]
        ordered_members = [members[i] for i in order]

        # Keep only enough top members that the subset budget is respected.
        pool_size = k_hi
        while pool_size < len(members):
            if comb(pool_size + 1, k_hi) > self.max_subsets_per_bucket:
                break
            pool_size += 1
        pool = ordered_members[:pool_size]
        candidates = [
            list(subset)
            for subset in islice(combinations(pool, k_hi), self.max_subsets_per_bucket)
        ]

        if self.constraint_mode != "none":
            candidates.extend(
                self._greedy_feasible_candidates(
                    ordered_members, problem, groups, evaluator, pair_cache
                )
            )
        return candidates

    def _greedy_feasible_candidates(
        self,
        ordered_members: List[int],
        problem: TagDMProblem,
        groups: Sequence[TaggingActionGroup],
        evaluator: ProblemEvaluator,
        pair_cache: Dict[Tuple[int, int], bool],
        max_seeds: int = 16,
    ) -> List[List[int]]:
        """Grow pairwise-constraint-feasible sets inside one bucket.

        Starting from each of the first ``max_seeds`` members (in
        centroid order), greedily add further bucket members that keep
        every hard constraint satisfied pairwise.  This is the
        bucket-level analogue of the DV-FDP-Fo folding step and is what
        lets the filtering/folding LSH variants find feasible sets inside
        large, heterogeneous buckets.
        """
        constraints = problem.constraints
        if not constraints:
            return []

        def pair_ok(a: int, b: int) -> bool:
            key = (a, b) if a < b else (b, a)
            cached = pair_cache.get(key)
            if cached is not None:
                return cached
            ok = all(
                evaluator.functions.pairwise(
                    groups[a], groups[b], constraint.dimension, constraint.criterion
                )
                >= constraint.threshold
                for constraint in constraints
            )
            pair_cache[key] = ok
            return ok

        k_lo, k_hi = problem.k_lo, problem.k_hi
        candidates: List[List[int]] = []
        for seed in ordered_members[:max_seeds]:
            selected = [seed]
            for member in ordered_members:
                if member in selected:
                    continue
                if all(pair_ok(member, chosen) for chosen in selected):
                    selected.append(member)
                    if len(selected) == k_hi:
                        break
            if len(selected) >= k_lo and selected not in candidates:
                candidates.append(selected)
        return candidates

    def _bucket_feasible(
        self,
        candidate: List[int],
        groups: Sequence[TaggingActionGroup],
        evaluator: ProblemEvaluator,
    ) -> Tuple[bool, float]:
        """Check the candidate set and return (feasible, objective)."""
        chosen = [groups[i] for i in candidate]
        evaluation = evaluator.evaluate(chosen)
        if self.constraint_mode == "none":
            feasible = evaluation.size_ok
        else:
            feasible = evaluation.feasible
        return feasible, evaluation.objective_value

    def _score_candidates(
        self,
        candidates: List[List[int]],
        groups: Sequence[TaggingActionGroup],
        evaluator: ProblemEvaluator,
        scorer: Optional[BatchCandidateScorer],
    ) -> List[Tuple[bool, float]]:
        """(feasible, objective) for every candidate, batched when possible.

        With mean-of-pairs functions (the default suite) all of a
        bucket's candidate subsets are scored through submatrix gathers
        on the shared pairwise-matrix cache; otherwise each candidate
        falls back to one :meth:`ProblemEvaluator.evaluate` call.
        """
        if scorer is not None:
            return scorer.score(
                candidates, require_constraints=self.constraint_mode != "none"
            )
        return [
            self._bucket_feasible(candidate, groups, evaluator)
            for candidate in candidates
        ]

    def _solve(
        self,
        problem: TagDMProblem,
        groups: Sequence[TaggingActionGroup],
        evaluator: ProblemEvaluator,
    ) -> MiningResult:
        vectors, pure_signatures = self._vectors(problem, groups)
        n_dimensions = vectors.shape[1]
        evaluations = 0
        relaxations = 0
        bits = min(self.n_bits, max(1, n_dimensions))

        best_candidate: Optional[List[int]] = None
        best_objective = float("-inf")
        bits_used = bits
        pair_cache: Dict[Tuple[int, int], bool] = {}

        scorer: Optional[BatchCandidateScorer] = None
        if BatchCandidateScorer.supports(problem, evaluator.functions):
            scorer = BatchCandidateScorer(
                self._matrix_cache(groups, evaluator.functions), problem
            )

        index: Optional[CosineLshIndex] = None
        while relaxations < self.max_relaxations:
            if index is None:
                if pure_signatures:
                    # Session-cached sign-bit matrices (warm-started
                    # snapshots restore these without any projection).
                    index = self._provided_index(bits, len(groups))
                if index is None:
                    index = CosineLshIndex(
                        n_dimensions=n_dimensions,
                        n_bits=bits,
                        n_tables=self.n_tables,
                        seed=self.seed,
                    ).build(vectors)
            elif index.n_bits != bits:
                # Relaxation re-hash: prefix truncation of the cached
                # sign bits, no re-projection (see CosineLshIndex).
                index = index.rebuild_with_bits(bits)

            for bucket in index.buckets():
                candidates = self._candidate_sets_from_bucket(
                    list(bucket.members), vectors, problem, groups, evaluator, pair_cache
                )
                if not candidates:
                    continue
                evaluations += len(candidates)
                for candidate, (feasible, objective) in zip(
                    candidates,
                    self._score_candidates(candidates, groups, evaluator, scorer),
                ):
                    if feasible and objective > best_objective:
                        best_objective = objective
                        best_candidate = candidate
                        bits_used = bits

            if best_candidate is not None:
                break
            # Iterative relaxation: halve the signature width so more
            # groups collide, then retry (Section 4.1).
            if bits == 1:
                break
            bits = max(1, bits // 2)
            relaxations += 1

        if best_candidate is None:
            # Terminal relaxation: with zero hash bits every group falls in
            # one bucket, so post-process the whole candidate set once.
            candidates = self._candidate_sets_from_bucket(
                list(range(len(groups))), vectors, problem, groups, evaluator, pair_cache
            )
            evaluations += len(candidates)
            for candidate, (feasible, objective) in zip(
                candidates,
                self._score_candidates(candidates, groups, evaluator, scorer),
            ):
                if feasible and objective > best_objective:
                    best_objective = objective
                    best_candidate = candidate
                    bits_used = 0

        metadata: Dict[str, object] = {
            "n_bits_initial": self.n_bits,
            "n_bits_used": bits_used if best_candidate is not None else bits,
            "n_tables": self.n_tables,
            "relaxations": relaxations,
            "vector_dimensions": n_dimensions,
            "constraint_mode": self.constraint_mode,
        }
        if best_candidate is None:
            return self._result_from_groups(problem, (), evaluator, evaluations, metadata)
        chosen = [groups[i] for i in best_candidate]
        return self._result_from_groups(problem, chosen, evaluator, evaluations, metadata)


@register_algorithm
class SmLshAlgorithm(_BaseSmLsh):
    """SM-LSH: maximise tag similarity, ignore hard user/item constraints."""

    name = "sm-lsh"
    constraint_mode = "none"


@register_algorithm
class SmLshFilterAlgorithm(_BaseSmLsh):
    """SM-LSH-Fi: filter buckets for hard-constraint satisfaction."""

    name = "sm-lsh-fi"
    constraint_mode = "filter"


@register_algorithm
class SmLshFoldAlgorithm(_BaseSmLsh):
    """SM-LSH-Fo: fold similarity constraints into the hashed vectors."""

    name = "sm-lsh-fo"
    constraint_mode = "fold"
