"""High-level analysis tasks on top of the TagDM framework.

Section 6.2 of the paper evaluates TagDM qualitatively: query-scoped
analyses ("analyse user tagging behaviour for Spielberg war movies"),
anecdotal case studies contrasting the tag usage of the returned groups,
and an Amazon Mechanical Turk user study comparing the six Table 1
problem instantiations.  This package provides those layers:

* :mod:`repro.analysis.queries` -- scope a dataset with a conjunctive
  query, run a TagDM problem on it and report the groups with their tag
  clouds;
* :mod:`repro.analysis.casestudy` -- narrative contrasts between the
  returned groups (shared tags, distinguishing tags);
* :mod:`repro.analysis.userstudy` -- a simulated user study that stands
  in for the paper's AMT experiment (Figure 9).
"""

from repro.analysis.queries import AnalysisQuery, GroupReport, AnalysisReport, analyze
from repro.analysis.casestudy import CaseStudy, build_case_study, render_case_study
from repro.analysis.userstudy import (
    JudgeProfile,
    SimulatedUserStudy,
    UserStudyOutcome,
)

__all__ = [
    "AnalysisQuery",
    "GroupReport",
    "AnalysisReport",
    "analyze",
    "CaseStudy",
    "build_case_study",
    "render_case_study",
    "JudgeProfile",
    "SimulatedUserStudy",
    "UserStudyOutcome",
]
