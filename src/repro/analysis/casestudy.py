"""Case-study narratives contrasting the returned groups.

Section 6.2.1 of the paper presents anecdotal results of the form
"old male and young female users use diverse sets of tags for Spielberg
war movies": the interesting content is *how* the returned groups'
tag usage overlaps and differs.  :func:`build_case_study` turns an
:class:`~repro.analysis.queries.AnalysisReport` into that narrative:
per-pair shared tags, per-group distinguishing tags and a compact
rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, List, Tuple

from repro.analysis.queries import AnalysisReport

__all__ = ["GroupContrast", "CaseStudy", "build_case_study", "render_case_study"]


@dataclass
class GroupContrast:
    """Contrast between one pair of returned groups."""

    group_a: str
    group_b: str
    shared_tags: List[str]
    only_a: List[str]
    only_b: List[str]

    def describe(self, max_tags: int = 5) -> str:
        """One-paragraph description of the contrast."""
        shared = ", ".join(self.shared_tags[:max_tags]) or "(none)"
        a_only = ", ".join(self.only_a[:max_tags]) or "(none)"
        b_only = ", ".join(self.only_b[:max_tags]) or "(none)"
        return (
            f"{self.group_a} vs {self.group_b}: shared tags [{shared}]; "
            f"distinctive for the former [{a_only}]; "
            f"distinctive for the latter [{b_only}]"
        )


@dataclass
class CaseStudy:
    """A full case study: the analysis plus pairwise group contrasts."""

    title: str
    report: AnalysisReport
    contrasts: List[GroupContrast] = field(default_factory=list)

    @property
    def has_findings(self) -> bool:
        """Whether the underlying analysis returned at least two groups."""
        return len(self.report.groups) >= 2


def build_case_study(report: AnalysisReport, top_n: int = 15) -> CaseStudy:
    """Derive pairwise tag-usage contrasts from an analysis report.

    ``top_n`` controls how many of each group's most frequent tags
    participate in the comparison (mirroring how the paper reasons over
    the prominent part of a tag cloud rather than its long tail).
    """
    contrasts: List[GroupContrast] = []
    for report_a, report_b in combinations(report.groups, 2):
        top_a = [tag for tag, _ in report_a.top_tags[:top_n]]
        top_b = [tag for tag, _ in report_b.top_tags[:top_n]]
        set_a, set_b = set(top_a), set(top_b)
        contrasts.append(
            GroupContrast(
                group_a=report_a.description,
                group_b=report_b.description,
                shared_tags=[tag for tag in top_a if tag in set_b],
                only_a=[tag for tag in top_a if tag not in set_b],
                only_b=[tag for tag in top_b if tag not in set_a],
            )
        )
    return CaseStudy(title=report.query.title, report=report, contrasts=contrasts)


def render_case_study(case_study: CaseStudy, max_tags: int = 5) -> str:
    """Readable multi-line rendering of a case study."""
    lines = [f"# Case study: {case_study.title}"]
    lines.append(case_study.report.render(max_tags=max_tags))
    if not case_study.contrasts:
        lines.append("(fewer than two groups returned; no contrast to report)")
    for contrast in case_study.contrasts:
        lines.append("* " + contrast.describe(max_tags=max_tags))
    return "\n".join(lines)
