"""Query-scoped tagging behaviour analysis.

Section 6.1 of the paper points out that the number of input tagging
tuples depends on the query under consideration ("all movies tagged by
{gender=male}", "all users who tagged {genre=drama} movies", ...), and
Section 6.2 builds its qualitative evaluation around such queries.
:class:`AnalysisQuery` captures one query; :func:`analyze` scopes the
dataset, prepares a TagDM session over the scoped tuples, solves the
requested problem and returns an :class:`AnalysisReport` whose per-group
entries carry tag clouds ready for rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.enumeration import GroupEnumerationConfig
from repro.core.framework import TagDM
from repro.core.problem import TagDMProblem, table1_problem
from repro.core.result import MiningResult
from repro.dataset.store import TaggingDataset
from repro.text.tagcloud import TagCloud, build_tag_cloud

__all__ = ["AnalysisQuery", "GroupReport", "AnalysisReport", "analyze"]


@dataclass(frozen=True)
class AnalysisQuery:
    """One analysis query: a scope plus a problem selection.

    Attributes
    ----------
    predicates:
        Conjunctive predicate over prefixed columns scoping the input
        tuples (e.g. ``{"item.genre": "war"}``); empty means the whole
        dataset.
    problem:
        Either a Table 1 problem id (1-6) or a full
        :class:`TagDMProblem`.
    title:
        Human-readable description used in reports.
    """

    predicates: Tuple[Tuple[str, str], ...]
    problem: Union[int, TagDMProblem]
    title: str = ""

    @classmethod
    def build(
        cls,
        predicates: Mapping[str, str],
        problem: Union[int, TagDMProblem],
        title: str = "",
    ) -> "AnalysisQuery":
        """Build a query from a predicate mapping."""
        items = tuple(sorted((str(k), str(v)) for k, v in predicates.items()))
        if not title:
            scope = ", ".join(f"{k}={v}" for k, v in items) or "all tagging actions"
            title = f"analysis of {scope}"
        return cls(predicates=items, problem=problem, title=title)

    def predicate_dict(self) -> Dict[str, str]:
        """The scope predicates as a dictionary."""
        return dict(self.predicates)


@dataclass
class GroupReport:
    """One returned group with its tag cloud and description."""

    description: str
    support: int
    top_tags: List[Tuple[str, int]]
    cloud: TagCloud

    def headline(self, n_tags: int = 5) -> str:
        """A one-line summary: description plus its most frequent tags."""
        tags = ", ".join(tag for tag, _ in self.top_tags[:n_tags])
        return f"{self.description}: ({tags})"


@dataclass
class AnalysisReport:
    """Outcome of one query-scoped analysis."""

    query: AnalysisQuery
    result: MiningResult
    scoped_tuples: int
    groups: List[GroupReport] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        """Whether the underlying mining result satisfied all constraints."""
        return self.result.feasible

    def render(self, max_tags: int = 8) -> str:
        """Readable multi-line rendering of the analysis."""
        lines = [f"## {self.query.title}"]
        lines.append(
            f"scoped tuples: {self.scoped_tuples}; problem: {self.result.problem.name}; "
            f"algorithm: {self.result.algorithm}; objective: {self.result.objective_value:.3f}"
        )
        if not self.groups:
            lines.append("(no feasible group set found)")
        for report in self.groups:
            tags = ", ".join(f"{tag}({count})" for tag, count in report.top_tags[:max_tags])
            lines.append(f"- {report.description} [n={report.support}]: {tags}")
        return "\n".join(lines)


def analyze(
    dataset: TaggingDataset,
    query: AnalysisQuery,
    algorithm: str = "auto",
    k: int = 3,
    min_support: Optional[int] = None,
    support_fraction: float = 0.01,
    enumeration: Optional[GroupEnumerationConfig] = None,
    signature_backend: str = "frequency",
    signature_dimensions: int = 25,
    seed: int = 0,
    session: Optional[TagDM] = None,
) -> AnalysisReport:
    """Run one query-scoped TagDM analysis.

    The dataset is filtered by the query predicates, a session is
    prepared over the scoped tuples (unless a pre-built ``session`` is
    supplied), the problem is solved with ``algorithm`` and the returned
    groups are summarised as frequency tag clouds.
    """
    predicates = query.predicate_dict()
    scoped = dataset.filter(predicates) if predicates else dataset
    if scoped.n_actions == 0:
        raise ValueError(f"query {query.title!r} matches no tagging actions")

    if session is None:
        config = enumeration
        if config is None:
            min_sup_groups = max(2, min(5, scoped.n_actions // 50 or 2))
            config = GroupEnumerationConfig(min_support=min_sup_groups)
        session = TagDM(
            scoped,
            enumeration=config,
            signature_backend=signature_backend,
            signature_dimensions=signature_dimensions,
            seed=seed,
        ).prepare()

    if isinstance(query.problem, TagDMProblem):
        problem = query.problem
    else:
        support = (
            min_support
            if min_support is not None
            else max(1, int(round(support_fraction * scoped.n_actions)))
        )
        problem = table1_problem(int(query.problem), k=k, min_support=support)

    result = session.solve(problem, algorithm=algorithm)

    groups: List[GroupReport] = []
    for group in result.groups:
        cloud = build_tag_cloud(group.tags, title=str(group.description))
        groups.append(
            GroupReport(
                description=str(group.description),
                support=group.support,
                top_tags=[(entry.tag, entry.count) for entry in cloud.entries],
                cloud=cloud,
            )
        )
    return AnalysisReport(
        query=query,
        result=result,
        scoped_tuples=scoped.n_actions,
        groups=groups,
    )
