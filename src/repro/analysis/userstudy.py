"""Simulated user study over the six TagDM problem instantiations.

Figure 9 of the paper reports an Amazon Mechanical Turk study: 30
single-user tasks, each judging which of the six Table 1 analyses is most
useful for three randomly selected queries; Problems 2, 3 and 6 -- the
ones applying diversity to exactly one component -- are preferred.

Running an AMT study is outside the scope of an offline reproduction, so
this module *simulates* the judging population: each synthetic judge has
a preference weight per problem instance, drawn around calibrated means
(documented in :data:`DEFAULT_PREFERENCE_WEIGHTS`), plus per-judge noise
and a per-query perturbation; every (judge, query) pair votes for its
highest-scoring problem.  The output is the same artefact Figure 9 plots:
the percentage of votes per problem instance.  The calibration choice --
one-diversity-component instances rank highest -- reproduces the shape
of the paper's finding and is explicitly recorded as a substitution in
DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "DEFAULT_PREFERENCE_WEIGHTS",
    "JudgeProfile",
    "UserStudyOutcome",
    "SimulatedUserStudy",
]

#: Mean preference weight per Table 1 problem id.  Calibrated so that the
#: instances with exactly one diversity component (2, 3 and 6) are
#: preferred, matching the qualitative outcome the paper reports.
DEFAULT_PREFERENCE_WEIGHTS: Dict[int, float] = {
    1: 0.62,
    2: 1.00,
    3: 0.93,
    4: 0.58,
    5: 0.66,
    6: 0.88,
}

#: The three queries of Section 6.2.2.
DEFAULT_QUERIES: Tuple[str, ...] = (
    "tagging behaviour of {gender=male} users for movies",
    "tagging behaviour of {occupation=student} users for movies",
    "user tagging behaviour for {genre=drama} movies",
)


@dataclass(frozen=True)
class JudgeProfile:
    """One synthetic judge: id, movie familiarity and preference weights."""

    judge_id: int
    familiarity: float
    weights: Tuple[float, ...]


@dataclass
class UserStudyOutcome:
    """Aggregated result of the simulated study."""

    votes: Dict[int, int]
    preference_percentages: Dict[int, float]
    n_judges: int
    n_queries: int

    def ranked_problems(self) -> List[int]:
        """Problem ids sorted by descending preference percentage."""
        return sorted(
            self.preference_percentages,
            key=lambda problem_id: -self.preference_percentages[problem_id],
        )

    def top_problems(self, n: int = 3) -> List[int]:
        """The ``n`` most preferred problem ids."""
        return self.ranked_problems()[:n]

    def as_rows(self) -> List[Dict[str, object]]:
        """Tabular form (one row per problem) for reporting."""
        return [
            {
                "problem": problem_id,
                "votes": self.votes[problem_id],
                "preference_pct": round(self.preference_percentages[problem_id], 2),
            }
            for problem_id in sorted(self.votes)
        ]


class SimulatedUserStudy:
    """Simulate the AMT study of Section 6.2.2.

    Parameters
    ----------
    n_judges:
        Number of single-user tasks (the paper uses 30).
    queries:
        Query descriptions judged by every participant.
    preference_weights:
        Mean preference weight per problem id; defaults to the calibrated
        :data:`DEFAULT_PREFERENCE_WEIGHTS`.
    judge_noise:
        Standard deviation of the per-judge weight perturbation.
    query_noise:
        Standard deviation of the per-(judge, query) score noise.
    seed:
        Seed of the random generator; the study is deterministic given
        the seed.
    """

    def __init__(
        self,
        n_judges: int = 30,
        queries: Sequence[str] = DEFAULT_QUERIES,
        preference_weights: Optional[Mapping[int, float]] = None,
        judge_noise: float = 0.28,
        query_noise: float = 0.22,
        seed: int = 0,
    ) -> None:
        if n_judges < 1:
            raise ValueError("n_judges must be at least 1")
        if not queries:
            raise ValueError("at least one query is required")
        self.n_judges = n_judges
        self.queries = tuple(queries)
        self.weights = dict(
            DEFAULT_PREFERENCE_WEIGHTS if preference_weights is None else preference_weights
        )
        if not self.weights:
            raise ValueError("preference_weights must not be empty")
        self.judge_noise = judge_noise
        self.query_noise = query_noise
        self.seed = seed

    # ------------------------------------------------------------------
    def recruit_judges(self) -> List[JudgeProfile]:
        """Draw the synthetic judging population (User Knowledge Phase)."""
        rng = np.random.default_rng(self.seed)
        problem_ids = sorted(self.weights)
        base = np.array([self.weights[p] for p in problem_ids], dtype=float)
        judges: List[JudgeProfile] = []
        for judge_id in range(self.n_judges):
            familiarity = float(np.clip(rng.normal(0.6, 0.2), 0.0, 1.0))
            personal = base + rng.normal(0.0, self.judge_noise, size=base.shape)
            judges.append(
                JudgeProfile(
                    judge_id=judge_id,
                    familiarity=familiarity,
                    weights=tuple(float(w) for w in personal),
                )
            )
        return judges

    def run(self) -> UserStudyOutcome:
        """Run the full study (User Judgment Phase) and aggregate votes."""
        rng = np.random.default_rng(self.seed + 1)
        problem_ids = sorted(self.weights)
        judges = self.recruit_judges()
        votes: Dict[int, int] = {problem_id: 0 for problem_id in problem_ids}
        for judge in judges:
            weights = np.asarray(judge.weights)
            for _query in self.queries:
                # Less familiar judges behave more randomly, which is what
                # the paper's knowledge-phase screening is meant to detect.
                noise_scale = self.query_noise * (1.5 - judge.familiarity)
                scores = weights + rng.normal(0.0, noise_scale, size=weights.shape)
                choice = problem_ids[int(np.argmax(scores))]
                votes[choice] += 1
        total = sum(votes.values())
        percentages = {
            problem_id: 100.0 * count / total for problem_id, count in votes.items()
        }
        return UserStudyOutcome(
            votes=votes,
            preference_percentages=percentages,
            n_judges=self.n_judges,
            n_queries=len(self.queries),
        )
