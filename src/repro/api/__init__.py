"""Wire-native TagDM API: declarative specs, typed errors, unified client.

This package defines the transport-agnostic request/response protocol of
the TagDM serving stack (documented in ``API.md``):

* :class:`~repro.api.spec.ProblemSpec` -- JSON-serialisable solve
  requests covering every Table-1 instance (constraints, objectives,
  support, k-range, algorithm + options), validated against the
  string-keyed algorithm and capability registries;
* result serialisation lives on the core types themselves
  (:meth:`TagDMProblem.to_dict` / :meth:`MiningResult.to_dict` and their
  inverses), so a solve survives a JSON round-trip unchanged;
* :class:`~repro.api.errors.ApiError` -- the typed error taxonomy
  (validation 422, unknown corpus 404, capability mismatch 409,
  timeout 504) shared by every backend;
* :class:`~repro.api.client.TagDMClient` -- one client API with three
  interchangeable backends: :class:`LocalClient` (in-process sessions),
  :class:`ServerClient` (a :class:`TagDMServer`'s warm shards) and
  :class:`HttpClient` (the HTTP front-end in :mod:`repro.serving.http`).
"""

from repro.api.errors import (
    ApiError,
    CapabilityMismatchError,
    SolveTimeoutError,
    SpecValidationError,
    UnknownCorpusError,
    UnknownRouteError,
    api_error_from_payload,
    run_with_timeout,
)
from repro.api.spec import ProblemSpec
from repro.api.client import HttpClient, LocalClient, ServerClient, TagDMClient

__all__ = [
    "ApiError",
    "SpecValidationError",
    "UnknownCorpusError",
    "UnknownRouteError",
    "CapabilityMismatchError",
    "SolveTimeoutError",
    "api_error_from_payload",
    "run_with_timeout",
    "ProblemSpec",
    "TagDMClient",
    "LocalClient",
    "ServerClient",
    "HttpClient",
]
