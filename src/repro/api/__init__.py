"""Wire-native TagDM API: declarative specs, typed errors, unified client.

This package defines the transport-agnostic request/response protocol of
the TagDM serving stack (documented in ``API.md``):

* :class:`~repro.api.spec.ProblemSpec` -- JSON-serialisable solve
  requests covering every Table-1 instance (constraints, objectives,
  support, k-range, algorithm + options), validated against the
  string-keyed algorithm and capability registries;
* result serialisation lives on the core types themselves
  (:meth:`TagDMProblem.to_dict` / :meth:`MiningResult.to_dict` and their
  inverses), so a solve survives a JSON round-trip unchanged;
* :class:`~repro.api.spec.PageSpec` / :class:`~repro.api.spec.ResultPage`
  -- declarative result windowing (``?page=``/``?page_size=``) with a
  lossless :func:`~repro.api.spec.merge_result_pages` round-trip, and an
  NDJSON stream form for very large group sets;
* :class:`~repro.api.errors.ApiError` -- the typed error taxonomy
  (validation 422, unknown corpus 404, capability mismatch 409,
  worker unavailable 503, timeout 504) shared by every backend;
* :class:`~repro.api.client.TagDMClient` -- one client API with four
  interchangeable backends: :class:`LocalClient` (in-process sessions),
  :class:`ServerClient` (a :class:`TagDMServer`'s warm shards),
  :class:`HttpClient` (any HTTP front-end, over a pooled keep-alive
  :class:`~repro.api.client.HttpConnectionPool`) and
  :class:`FleetClient` (placement-aware direct-to-worker fleet access).
"""

from repro.api.errors import (
    ApiError,
    CapabilityMismatchError,
    ConnectionFailedError,
    OverloadedError,
    SolveTimeoutError,
    SpecValidationError,
    UnknownCorpusError,
    UnknownRouteError,
    WorkerUnavailableError,
    api_error_from_payload,
    run_with_timeout,
)
from repro.api.spec import (
    DEFAULT_PAGE_SIZE,
    PageSpec,
    ProblemSpec,
    ResultPage,
    merge_result_pages,
)
from repro.api.client import (
    FleetClient,
    HttpClient,
    HttpConnectionPool,
    LocalClient,
    ServerClient,
    TagDMClient,
)

__all__ = [
    "ApiError",
    "SpecValidationError",
    "UnknownCorpusError",
    "UnknownRouteError",
    "CapabilityMismatchError",
    "ConnectionFailedError",
    "OverloadedError",
    "WorkerUnavailableError",
    "SolveTimeoutError",
    "api_error_from_payload",
    "run_with_timeout",
    "ProblemSpec",
    "PageSpec",
    "ResultPage",
    "merge_result_pages",
    "DEFAULT_PAGE_SIZE",
    "TagDMClient",
    "LocalClient",
    "ServerClient",
    "HttpClient",
    "FleetClient",
    "HttpConnectionPool",
]
