"""The unified TagDM client: one API, four interchangeable backends.

:class:`TagDMClient` is the caller-facing abstraction of the wire-native
API.  Code written against it does not know -- and does not need to know
-- where the corpus lives:

* :class:`LocalClient` wraps in-process :class:`~repro.core.framework.TagDM`
  / :class:`~repro.core.incremental.IncrementalTagDM` sessions (the
  embedded-library deployment);
* :class:`ServerClient` wraps a :class:`~repro.serving.server.TagDMServer`
  and routes through its warm shards (the single-process serving
  deployment);
* :class:`HttpClient` speaks JSON to an HTTP front-end
  (:mod:`repro.serving.http` or the fleet router in
  :mod:`repro.serving.router`) over pooled keep-alive connections (the
  remote deployment);
* :class:`FleetClient` fetches a fleet's corpus->worker placement map
  from its router and talks to the owning workers directly, falling
  back to the router when placement drifts (the high-fan-in remote
  deployment).

All backends validate requests through the same
:class:`~repro.api.spec.ProblemSpec` machinery and raise the same typed
:class:`~repro.api.errors.ApiError` taxonomy, and a solve produces
bit-identical group selections on every backend serving the same warm
session -- that is the contract the smoke tests in
``examples/http_client.py`` and ``examples/fleet_demo.py`` prove.
"""

from __future__ import annotations

import http.client
import json
import socket  # noqa: F401 - timeout type + TCP_NODELAY
import threading
import urllib.parse
import uuid
from abc import ABC, abstractmethod
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

from repro.api.errors import (
    ApiError,
    CapabilityMismatchError,
    ConnectionFailedError,
    SolveTimeoutError,
    SpecValidationError,
    UnknownCorpusError,
    api_error_from_payload,
    run_with_timeout,
)
from repro.api.service import (
    coerce_spec,
    corpus_stats,
    diffs_from_ndjson,
    health as server_health,
    insert_actions,
    list_corpora,
    poll_subscription as service_poll_subscription,
    register_subscription as service_register_subscription,
    list_subscriptions as service_list_subscriptions,
    result_from_ndjson,
    solve_spec,
    validate_actions,
)
from repro.api.spec import DEFAULT_PAGE_SIZE, PageSpec, ProblemSpec, ResultPage
from repro.core.incremental import IncrementalTagDM, IncrementalUpdateReport
from repro.core.witness import named_lock
from repro.core.problem import TagDMProblem
from repro.core.result import MiningResult

__all__ = [
    "TagDMClient",
    "LocalClient",
    "ServerClient",
    "HttpClient",
    "FleetClient",
    "HttpConnectionPool",
]

SolveRequest = Union[ProblemSpec, TagDMProblem, Mapping[str, object]]


class TagDMClient(ABC):
    """Backend-independent TagDM request interface.

    Solve requests accept a :class:`ProblemSpec`, a plain
    :class:`TagDMProblem` (with ``algorithm`` / keyword options), or a
    raw spec payload dict -- the three forms the wire protocol defines.
    """

    # ------------------------------------------------------------------
    # Abstract operations
    # ------------------------------------------------------------------
    @abstractmethod
    def corpora(self) -> List[str]:
        """Names of the corpora this client can reach."""

    @abstractmethod
    def insert(
        self,
        corpus: str,
        actions: Iterable[Mapping[str, object]],
        idempotency_key: Optional[str] = None,
    ) -> IncrementalUpdateReport:
        """Apply a batch of action dicts and return the merged report.

        ``idempotency_key`` names the batch for exactly-once semantics:
        retrying the same batch under the same key (after a transport
        failure, through any backend reaching the same durable corpus)
        never double-applies -- the original report comes back with
        ``deduplicated=True``.  Backends that talk over the network
        generate a key automatically when none is given.
        """

    @abstractmethod
    def solve(
        self,
        corpus: str,
        request: SolveRequest,
        algorithm: str = "auto",
        timeout: Optional[float] = None,
        **options: object,
    ) -> MiningResult:
        """Validate and run one solve request over the named corpus."""

    @abstractmethod
    def stats(self, corpus: str) -> Dict[str, object]:
        """Serving counters for one corpus."""

    @abstractmethod
    def health(self) -> Dict[str, object]:
        """Aggregate liveness payload (shape of ``/healthz``)."""

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------
    def insert_action(
        self,
        corpus: str,
        user_id: str,
        item_id: str,
        tags: Iterable[str],
        rating: Optional[float] = None,
        user_attributes: Optional[Mapping[str, str]] = None,
        item_attributes: Optional[Mapping[str, str]] = None,
        idempotency_key: Optional[str] = None,
    ) -> IncrementalUpdateReport:
        """Insert a single tagging action (one-element batch)."""
        return self.insert(
            corpus,
            [
                {
                    "user_id": user_id,
                    "item_id": item_id,
                    "tags": list(tags),
                    "rating": rating,
                    "user_attributes": (
                        None if user_attributes is None else dict(user_attributes)
                    ),
                    "item_attributes": (
                        None if item_attributes is None else dict(item_attributes)
                    ),
                }
            ],
            idempotency_key=idempotency_key,
        )

    def solve_page(
        self,
        corpus: str,
        request: SolveRequest,
        page: int = 1,
        page_size: int = DEFAULT_PAGE_SIZE,
        algorithm: str = "auto",
        timeout: Optional[float] = None,
        **options: object,
    ) -> ResultPage:
        """Solve and return one page of the result's group list.

        The default implementation runs the full solve and windows it
        client-side, so every backend answers pages identically;
        :class:`HttpClient` overrides it to request the window on the
        wire instead (``?page=``/``?page_size=``), keeping large group
        sets off the response body.  Blocks for the whole solve either
        way -- pagination bounds the transfer, not the computation.
        """
        window = PageSpec(page=page, page_size=page_size)
        result = self.solve(
            corpus, request, algorithm=algorithm, timeout=timeout, **options
        )
        return ResultPage.from_payload(window.paginate(result.to_dict()))

    def solve_pages(
        self,
        corpus: str,
        request: SolveRequest,
        page_size: int = DEFAULT_PAGE_SIZE,
        algorithm: str = "auto",
        timeout: Optional[float] = None,
        **options: object,
    ) -> Iterator[ResultPage]:
        """Iterate every page of a solve, first to last.

        The default implementation solves once and windows locally.
        :class:`HttpClient` fetches page by page over the wire; because
        serving solves are deterministic over a warm session, those
        per-page solves agree, and
        :func:`~repro.api.spec.merge_result_pages` over the yielded
        pages reconstructs the unpaginated result bit-identically.
        """
        result = self.solve(
            corpus, request, algorithm=algorithm, timeout=timeout, **options
        )
        payload = result.to_dict()
        page = 1
        while True:
            entry = ResultPage.from_payload(
                PageSpec(page=page, page_size=page_size).paginate(payload)
            )
            yield entry
            if not entry.has_more:
                return
            page += 1

    def solve_stream(
        self,
        corpus: str,
        request: SolveRequest,
        algorithm: str = "auto",
        timeout: Optional[float] = None,
        **options: object,
    ) -> MiningResult:
        """Solve, transferring the result incrementally where possible.

        In-process backends have nothing to stream, so the default is a
        plain :meth:`solve`.  :class:`HttpClient` overrides it to read
        the response as NDJSON (one group per line), bounding the size
        of any single JSON document it must parse.
        """
        return self.solve(corpus, request, algorithm=algorithm, timeout=timeout, **options)

    # ------------------------------------------------------------------
    # Subscriptions (standing queries)
    # ------------------------------------------------------------------
    def _no_subscriptions(self, corpus: str) -> CapabilityMismatchError:
        return CapabilityMismatchError(
            f"the {type(self).__name__} backend has no durable subscription "
            f"ledger for corpus {corpus!r}; use a server-backed client",
            details={"corpus": corpus},
        )

    def register_subscription(
        self,
        corpus: str,
        spec: SolveRequest,
        owner: str = "anonymous",
        subscription_id: Optional[str] = None,
        idempotency_key: Optional[str] = None,
    ) -> Dict[str, object]:
        """Register a standing query; returns the subscription row.

        ``idempotency_key`` makes retried registrations exactly-once
        (the replay answers ``deduplicated=True``); reusing a
        ``subscription_id`` without it is a 409.  Backends without a
        durable store report a capability mismatch.
        """
        raise self._no_subscriptions(corpus)

    def subscriptions(self, corpus: str) -> List[Dict[str, object]]:
        """All subscriptions registered on the named corpus."""
        raise self._no_subscriptions(corpus)

    def poll_subscription(
        self, corpus: str, subscription_id: str, from_seq: int = 1
    ) -> Dict[str, object]:
        """Delivered diffs with ``seq >= from_seq`` plus ledger position."""
        raise self._no_subscriptions(corpus)

    def stream_subscription(
        self, corpus: str, subscription_id: str, from_seq: int = 1
    ) -> Dict[str, object]:
        """Like :meth:`poll_subscription`; HTTP backends read NDJSON.

        In-process backends have nothing to stream, so the default
        delegates to the poll implementation.
        """
        return self.poll_subscription(corpus, subscription_id, from_seq=from_seq)

    def close(self) -> None:
        """Release client-held resources (default: nothing to release)."""

    def __enter__(self) -> "TagDMClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class LocalClient(TagDMClient):
    """Speak the wire API to in-process sessions (no server, no socket).

    Calls run synchronously on the calling thread against the raw
    sessions -- there is no shard locking here, so concurrent inserts
    and solves on the *same* session need external coordination (that
    is what :class:`ServerClient` over a :class:`TagDMServer` provides).

    Parameters
    ----------
    sessions:
        ``corpus name -> prepared session`` mapping.  Solves work with
        both :class:`TagDM` and :class:`IncrementalTagDM`; inserts need
        the incremental wrapper (a plain session cannot absorb actions,
        which the client reports as a capability mismatch).
    """

    def __init__(self, sessions: Mapping[str, object]) -> None:
        self._sessions: Dict[str, object] = dict(sessions)

    def _session(self, corpus: str):
        try:
            return self._sessions[corpus]
        except KeyError:
            raise UnknownCorpusError(
                f"corpus {corpus!r} is not registered with this client",
                details={"corpus": corpus, "known": sorted(self._sessions)},
            ) from None

    def corpora(self) -> List[str]:
        return sorted(self._sessions)

    def insert(
        self,
        corpus: str,
        actions: Iterable[Mapping[str, object]],
        idempotency_key: Optional[str] = None,
    ) -> IncrementalUpdateReport:
        session = self._session(corpus)
        if not isinstance(session, IncrementalTagDM):
            raise CapabilityMismatchError(
                f"corpus {corpus!r} is served by a static TagDM session; "
                "inserts need an IncrementalTagDM",
                details={"corpus": corpus},
            )
        batch = validate_actions(actions)
        # analyze: writer-context -- the local backend owns no threads;
        # the caller that handed us these sessions is their only writer.
        try:
            return session.add_actions(batch, request_id=idempotency_key)
        except (KeyError, ValueError, TypeError) as exc:
            raise SpecValidationError(f"insert rejected: {exc}") from exc

    def solve(
        self,
        corpus: str,
        request: SolveRequest,
        algorithm: str = "auto",
        timeout: Optional[float] = None,
        **options: object,
    ) -> MiningResult:
        session = self._session(corpus)
        spec = coerce_spec(request, algorithm=algorithm, options=options)
        problem, name = spec.validate()
        return run_with_timeout(
            lambda: session.solve(problem, algorithm=name, **dict(spec.options)),
            timeout,
            f"solve({corpus})",
        )

    def stats(self, corpus: str) -> Dict[str, object]:
        session = self._session(corpus)
        dataset = session.dataset
        return {
            "name": corpus,
            "backend": "local",
            "actions": dataset.n_actions,
            "groups": session.n_groups,
        }

    def health(self) -> Dict[str, object]:
        return {"status": "ok", "corpora": self.corpora()}


class ServerClient(TagDMClient):
    """Route requests through a :class:`TagDMServer`'s warm shards.

    Thread-safe to share: every call delegates to the server's
    per-shard locking (solves shared, inserts single-writer and
    blocking until applied).  The client does not own the server:
    closing the client leaves the server (and its stores and snapshot
    rotators) running.
    """

    def __init__(self, server) -> None:
        self.server = server

    def corpora(self) -> List[str]:
        return list_corpora(self.server)

    def insert(
        self,
        corpus: str,
        actions: Iterable[Mapping[str, object]],
        idempotency_key: Optional[str] = None,
    ) -> IncrementalUpdateReport:
        return insert_actions(
            self.server, corpus, actions, request_id=idempotency_key
        )

    def solve(
        self,
        corpus: str,
        request: SolveRequest,
        algorithm: str = "auto",
        timeout: Optional[float] = None,
        **options: object,
    ) -> MiningResult:
        spec = coerce_spec(request, algorithm=algorithm, options=options)
        return solve_spec(self.server, corpus, spec, timeout=timeout)

    def stats(self, corpus: str) -> Dict[str, object]:
        return corpus_stats(self.server, corpus)

    def health(self) -> Dict[str, object]:
        return server_health(self.server)

    def register_subscription(
        self,
        corpus: str,
        spec: SolveRequest,
        owner: str = "anonymous",
        subscription_id: Optional[str] = None,
        idempotency_key: Optional[str] = None,
    ) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "spec": coerce_spec(spec).to_dict(),
            "owner": owner,
        }
        if subscription_id is not None:
            payload["subscription_id"] = subscription_id
        return service_register_subscription(
            self.server, corpus, payload, request_id=idempotency_key
        )

    def subscriptions(self, corpus: str) -> List[Dict[str, object]]:
        return service_list_subscriptions(self.server, corpus)

    def poll_subscription(
        self, corpus: str, subscription_id: str, from_seq: int = 1
    ) -> Dict[str, object]:
        return service_poll_subscription(
            self.server, corpus, subscription_id, from_seq=from_seq
        )


#: Transport failures that mean "the reused keep-alive connection went
#: stale before the server saw this request" -- safe to retry once on a
#: fresh connection.  Failures *after* the status line arrived are never
#: in this set (the server already processed the request by then).
_STALE_CONNECTION_ERRORS = (
    http.client.BadStatusLine,
    http.client.RemoteDisconnected,
    http.client.CannotSendRequest,
    BrokenPipeError,
    ConnectionResetError,
    ConnectionAbortedError,
)


class HttpConnectionPool:
    """Thread-safe pool of keep-alive connections to one HTTP endpoint.

    Every wire client used to open a fresh TCP connection per request;
    this pool is the shared fix: idle :class:`http.client.HTTPConnection`
    objects are parked per endpoint and reused across requests (and
    across threads -- each connection is used by one thread at a time,
    the pool itself is locked).  A reused connection that the server
    closed while idle is detected by its failure mode
    (:data:`_STALE_CONNECTION_ERRORS` before any response byte) and the
    request is replayed once on a fresh connection -- but only when the
    replay is provably safe (see :meth:`open_response`); a fresh
    connection that fails is a real error and propagates.

    All methods block only for their own socket I/O; acquiring and
    releasing connections never blocks on other requests.
    """

    def __init__(
        self,
        base_url: str,
        request_timeout: float = 30.0,
        max_idle: int = 8,
        keep_alive: bool = True,
        fault_plan=None,
    ) -> None:
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme != "http":
            raise ValueError(
                f"HttpConnectionPool speaks plain http, got {base_url!r}"
            )
        self.base_url = base_url.rstrip("/")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 80
        self.request_timeout = request_timeout
        self.max_idle = max_idle
        #: ``keep_alive=False`` degrades to one-connection-per-request
        #: (the pre-pool behaviour) -- kept so the perf report can
        #: measure exactly what pooling saves.
        self.keep_alive = keep_alive
        #: Optional :class:`~repro.serving.reliability.FaultPlan`; the
        #: ``pool.pre_send`` point fires before each send on a *reused*
        #: connection (``reset`` shuts the socket down first, simulating
        #: a server that closed the idle connection).
        self.fault_plan = fault_plan
        self._idle: List[http.client.HTTPConnection] = []
        self._lock = named_lock("pool.lock")
        self._closed = False
        self._reused = 0
        self._opened = 0

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------
    def _acquire(self, fresh: bool = False) -> Tuple[http.client.HTTPConnection, bool]:
        with self._lock:
            if self._closed:
                raise ConnectionFailedError(f"connection pool for {self.base_url} is closed")
            if self._idle and not fresh:
                self._reused += 1
                return self._idle.pop(), True
            self._opened += 1
        return (
            http.client.HTTPConnection(self.host, self.port, timeout=self.request_timeout),
            False,
        )

    def _release(self, connection: http.client.HTTPConnection) -> None:
        with self._lock:
            if (
                self.keep_alive
                and not self._closed
                and len(self._idle) < self.max_idle
            ):
                self._idle.append(connection)
                return
        connection.close()

    @staticmethod
    def _discard(connection: http.client.HTTPConnection) -> None:
        try:
            connection.close()
        except OSError:  # pragma: no cover - close() should not raise
            pass

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    @staticmethod
    def _infer_idempotent(method: str, headers: Mapping[str, str]) -> bool:
        """Whether a request is provably safe to replay after an
        ambiguous failure: GETs (read-only by contract) and requests
        carrying an ``Idempotency-Key`` (the server deduplicates)."""
        if method.upper() == "GET":
            return True
        return any(key.lower() == "idempotency-key" for key in headers)

    def open_response(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Mapping[str, str]] = None,
        timeout: Optional[float] = None,
        idempotent: Optional[bool] = None,
    ) -> http.client.HTTPResponse:
        """Send one request and return the live (unread) response.

        The caller owns the response: it must either read it fully and
        hand it back through :meth:`finish` (so the connection can be
        reused) or :meth:`abandon` it.

        Retry rule: a reused connection that fails while *sending* never
        delivered the request, so it is always safe to replay once -- on
        a deliberately fresh connection, since a restarted server leaves
        the whole idle pool stale at once.  A failure while *waiting for
        the response* is ambiguous (the server may have applied the
        request before dying), so it is replayed only when the request
        is idempotent -- by default that is inferred: GETs and requests
        carrying an ``Idempotency-Key`` header replay (the server
        deduplicates the key), any other POST propagates the failure as
        :class:`~repro.api.errors.ConnectionFailedError` territory and
        the caller decides.  Pass ``idempotent=True``/``False`` to
        override the inference (e.g. solve POSTs are read-only).  All
        non-stale failures propagate as the underlying
        :mod:`socket`/:mod:`http.client` exceptions.
        """
        request_headers = dict(headers or {})
        if idempotent is None:
            idempotent = self._infer_idempotent(method, request_headers)
        budget = self.request_timeout if timeout is None else timeout
        for attempt in (1, 2):
            connection, reused = self._acquire(fresh=attempt > 1)
            connection.timeout = budget
            sent = False
            try:
                if (
                    self.fault_plan is not None
                    and reused
                    and self.fault_plan.fire("pool.pre_send", path=path) == "reset"
                ):
                    # Simulate the server closing this idle keep-alive
                    # connection: the send below fails stale.
                    try:
                        connection.sock.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass
                if connection.sock is None:
                    connection.connect()
                    # Nagle + the peer's delayed ACK costs ~40ms on every
                    # request that needs two writes (headers, then body)
                    # over a warm keep-alive connection; a fresh
                    # connection hides it behind TCP quickack, which is
                    # exactly why an unpooled client never shows it.
                    connection.sock.setsockopt(
                        socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                    )
                connection.sock.settimeout(budget)
                connection.request(method, path, body=body, headers=request_headers)
                sent = True
                response = connection.getresponse()
            except _STALE_CONNECTION_ERRORS:
                self._discard(connection)
                if reused and attempt == 1 and (not sent or idempotent):
                    continue
                raise
            except BaseException:
                self._discard(connection)
                raise
            response._pool_connection = connection  # type: ignore[attr-defined]
            return response
        raise AssertionError("unreachable")  # pragma: no cover

    def finish(self, response: http.client.HTTPResponse) -> None:
        """Return a fully-read response's connection to the idle pool."""
        connection = getattr(response, "_pool_connection", None)
        if connection is None:  # pragma: no cover - not one of ours
            response.close()
            return
        if response.isclosed() and not response.will_close:
            self._release(connection)
        else:
            response.close()
            self._discard(connection)

    def abandon(self, response: http.client.HTTPResponse) -> None:
        """Drop a response (and its connection) without draining it."""
        connection = getattr(response, "_pool_connection", None)
        response.close()
        if connection is not None:
            self._discard(connection)

    def request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Mapping[str, str]] = None,
        timeout: Optional[float] = None,
        idempotent: Optional[bool] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One full request/response cycle over a pooled connection.

        Returns ``(status, lowercased headers, body bytes)``.  Blocks
        for the whole exchange.  ``idempotent`` follows
        :meth:`open_response`: ``None`` infers replay safety from the
        method and an ``Idempotency-Key`` header; ``False`` restricts
        the stale-connection replay to send-stage failures.
        """
        response = self.open_response(
            method, path, body=body, headers=headers, timeout=timeout, idempotent=idempotent
        )
        try:
            data = response.read()
        except BaseException:
            self.abandon(response)
            raise
        header_map = {key.lower(): value for key, value in response.getheaders()}
        status = response.status
        self.finish(response)
        return status, header_map, data

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Pool counters: connections opened, requests on reused ones."""
        with self._lock:
            return {
                "opened": self._opened,
                "reused": self._reused,
                "idle": len(self._idle),
            }

    def close(self) -> None:
        """Close every idle connection; in-flight ones close on finish."""
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for connection in idle:
            self._discard(connection)


class HttpClient(TagDMClient):
    """Speak JSON to an HTTP front-end over pooled keep-alive connections.

    Works against both a single-process front-end
    (:class:`~repro.serving.http.TagDMHttpServer`) and a fleet router
    (:class:`~repro.serving.router.TagDMRouter`) -- the routes are
    identical.  Thread-safe: any number of threads may share one client;
    each in-flight request holds its own pooled connection.

    Parameters
    ----------
    base_url:
        Front-end address, e.g. ``"http://127.0.0.1:8631"``.
    request_timeout:
        Socket timeout applied to every request (seconds).  A solve with
        an explicit ``timeout`` also sends it to the server as its
        compute budget and widens the socket timeout to cover it.
    keep_alive:
        ``False`` opens a fresh connection per request (the pre-PR-5
        behaviour; kept for benchmarking the difference).
    pool_size:
        Upper bound on idle connections kept warm.

    Error bodies are decoded back into the same typed
    :class:`~repro.api.errors.ApiError` classes the server raised, so
    ``except SpecValidationError`` works identically against every
    backend; transport failures raise
    :class:`~repro.api.errors.ConnectionFailedError`.
    """

    def __init__(
        self,
        base_url: str,
        request_timeout: float = 30.0,
        keep_alive: bool = True,
        pool_size: int = 8,
        fault_plan=None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.request_timeout = request_timeout
        self.pool = HttpConnectionPool(
            self.base_url,
            request_timeout=request_timeout,
            max_idle=pool_size,
            keep_alive=keep_alive,
            fault_plan=fault_plan,
        )

    # ------------------------------------------------------------------
    # Transport plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _encode_body(
        body: Optional[Mapping[str, object]],
    ) -> Tuple[Optional[bytes], Dict[str, str]]:
        if body is None:
            return None, {}
        return json.dumps(body).encode("utf-8"), {"Content-Type": "application/json"}

    def _budget(self, timeout: Optional[float]) -> float:
        return self.request_timeout if timeout is None else timeout + self.request_timeout

    def _raise_transport_error(
        self, exc: BaseException, method: str, path: str, budget: float
    ) -> None:
        if isinstance(exc, (socket.timeout, TimeoutError)):
            raise SolveTimeoutError(
                f"{method} {path} timed out after {budget:g}s",
                details={"timeout_seconds": budget},
            ) from exc
        raise ConnectionFailedError(f"cannot reach {self.base_url}: {exc}") from exc

    @staticmethod
    def _decode_payload(status: int, data: bytes, method: str, path: str) -> Dict[str, object]:
        try:
            payload = json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ApiError(
                f"HTTP {status} with non-JSON body from {method} {path}"
            ) from exc
        if not isinstance(payload, dict):
            raise ApiError(f"malformed response body from {method} {path}")
        if status >= 400:
            raise api_error_from_payload(payload)
        return payload

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, object]] = None,
        timeout: Optional[float] = None,
        idempotent: Optional[bool] = None,
        extra_headers: Optional[Mapping[str, str]] = None,
    ) -> Dict[str, object]:
        data, headers = self._encode_body(body)
        if extra_headers:
            headers.update(extra_headers)
        budget = self._budget(timeout)
        try:
            status, _headers, raw = self.pool.request(
                method, path, body=data, headers=headers, timeout=budget,
                idempotent=idempotent,
            )
        except (OSError, http.client.HTTPException) as exc:
            self._raise_transport_error(exc, method, path, budget)
        return self._decode_payload(status, raw, method, path)

    # ------------------------------------------------------------------
    # TagDMClient operations
    # ------------------------------------------------------------------
    @staticmethod
    def _corpus_path(corpus: str, verb: str, query: str = "") -> str:
        # Corpus names are caller input; a name with a slash or space
        # must not produce a malformed or misrouted request line.
        quoted = urllib.parse.quote(corpus, safe="")
        suffix = f"?{query}" if query else ""
        return f"/corpora/{quoted}/{verb}{suffix}"

    def corpora(self) -> List[str]:
        payload = self._request("GET", "/corpora")
        return [str(name) for name in payload.get("corpora", [])]

    def insert(
        self,
        corpus: str,
        actions: Iterable[Mapping[str, object]],
        idempotency_key: Optional[str] = None,
    ) -> IncrementalUpdateReport:
        # Every insert travels with an Idempotency-Key (generated when
        # the caller brings none): the server deduplicates the key, so a
        # stale-connection replay -- or any caller retry under the same
        # key -- can never double-apply the batch.
        key = idempotency_key or uuid.uuid4().hex
        payload = self._request(
            "POST",
            self._corpus_path(corpus, "insert"),
            body={"actions": list(actions)},
            extra_headers={"Idempotency-Key": key},
        )
        return IncrementalUpdateReport.from_dict(payload)

    def _solve_body(
        self,
        request: SolveRequest,
        algorithm: str,
        timeout: Optional[float],
        options: Mapping[str, object],
    ) -> Dict[str, object]:
        spec = coerce_spec(request, algorithm=algorithm, options=options)
        body = spec.to_dict()
        if timeout is not None:
            body["timeout_seconds"] = timeout
        return body

    def solve(
        self,
        corpus: str,
        request: SolveRequest,
        algorithm: str = "auto",
        timeout: Optional[float] = None,
        **options: object,
    ) -> MiningResult:
        body = self._solve_body(request, algorithm, timeout, options)
        # Solves are read-only: safe to replay on a stale keep-alive
        # connection even though they travel as POSTs.
        payload = self._request(
            "POST",
            self._corpus_path(corpus, "solve"),
            body=body,
            timeout=timeout,
            idempotent=True,
        )
        return MiningResult.from_dict(payload)

    def solve_page(
        self,
        corpus: str,
        request: SolveRequest,
        page: int = 1,
        page_size: int = DEFAULT_PAGE_SIZE,
        algorithm: str = "auto",
        timeout: Optional[float] = None,
        **options: object,
    ) -> ResultPage:
        """One wire-paged solve: only this page's groups travel back."""
        window = PageSpec(page=page, page_size=page_size)
        body = self._solve_body(request, algorithm, timeout, options)
        payload = self._request(
            "POST",
            self._corpus_path(corpus, "solve", window.to_query()),
            body=body,
            timeout=timeout,
            idempotent=True,
        )
        return ResultPage.from_payload(payload)

    def solve_pages(
        self,
        corpus: str,
        request: SolveRequest,
        page_size: int = DEFAULT_PAGE_SIZE,
        algorithm: str = "auto",
        timeout: Optional[float] = None,
        **options: object,
    ) -> Iterator[ResultPage]:
        """Fetch a solve page by page over the wire (see base docstring)."""
        page = 1
        while True:
            entry = self.solve_page(
                corpus,
                request,
                page=page,
                page_size=page_size,
                algorithm=algorithm,
                timeout=timeout,
                **options,
            )
            yield entry
            if not entry.has_more:
                return
            page += 1

    def solve_stream(
        self,
        corpus: str,
        request: SolveRequest,
        algorithm: str = "auto",
        timeout: Optional[float] = None,
        **options: object,
    ) -> MiningResult:
        """Solve with an NDJSON response body, parsed line by line.

        The server sends one group per line after a result envelope
        (``?stream=ndjson``), and this client decodes each line as it
        arrives off the socket -- the largest JSON document ever parsed
        is one group, not the whole result.  A stream cut mid-transfer
        raises :class:`SpecValidationError` (truncation is detected by
        the envelope's group count), never a silently short result.
        """
        body = self._solve_body(request, algorithm, timeout, options)
        data, headers = self._encode_body(body)
        path = self._corpus_path(corpus, "solve", "stream=ndjson")
        budget = self._budget(timeout)
        try:
            response = self.pool.open_response(
                "POST", path, body=data, headers=headers, timeout=budget,
                idempotent=True,
            )
        except (OSError, http.client.HTTPException) as exc:
            self._raise_transport_error(exc, "POST", path, budget)
        error_body: Optional[bytes] = None
        try:
            status = response.status
            if status >= 400:
                error_body = response.read()
            else:
                payload = result_from_ndjson(iter(response.readline, b""))
        except (OSError, http.client.HTTPException) as exc:
            self.pool.abandon(response)
            self._raise_transport_error(exc, "POST", path, budget)
        except BaseException:
            self.pool.abandon(response)
            raise
        if response.isclosed():
            self.pool.finish(response)
        else:
            self.pool.abandon(response)
        if error_body is not None:
            self._decode_payload(status, error_body, "POST", path)  # raises
        return MiningResult.from_dict(payload)

    def stats(self, corpus: str) -> Dict[str, object]:
        return self._request("GET", self._corpus_path(corpus, "stats"))

    def health(self) -> Dict[str, object]:
        return self._request("GET", "/healthz")

    def placement(self) -> Dict[str, object]:
        """Fetch a fleet router's corpus->worker placement map.

        Only routers answer this route; a single-process front-end
        raises :class:`~repro.api.errors.UnknownRouteError` (404).
        """
        return self._request("GET", "/placement")

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------
    @staticmethod
    def _subscription_path(corpus: str, subscription_id: str, suffix: str = "") -> str:
        quoted = urllib.parse.quote(corpus, safe="")
        quoted_sub = urllib.parse.quote(subscription_id, safe="")
        return f"/corpora/{quoted}/subscriptions/{quoted_sub}{suffix}"

    def register_subscription(
        self,
        corpus: str,
        spec: SolveRequest,
        owner: str = "anonymous",
        subscription_id: Optional[str] = None,
        idempotency_key: Optional[str] = None,
    ) -> Dict[str, object]:
        # Registrations travel with an Idempotency-Key exactly like
        # inserts: a stale-connection replay or caller retry under the
        # same key returns the original row (deduplicated=True) instead
        # of a 409.
        key = idempotency_key or uuid.uuid4().hex
        body: Dict[str, object] = {
            "spec": coerce_spec(spec).to_dict(),
            "owner": owner,
        }
        if subscription_id is not None:
            body["subscription_id"] = subscription_id
        return self._request(
            "POST",
            self._corpus_path(corpus, "subscriptions"),
            body=body,
            extra_headers={"Idempotency-Key": key},
        )

    def subscriptions(self, corpus: str) -> List[Dict[str, object]]:
        payload = self._request("GET", self._corpus_path(corpus, "subscriptions"))
        entries = payload.get("subscriptions", [])
        return [entry for entry in entries if isinstance(entry, dict)]

    def poll_subscription(
        self, corpus: str, subscription_id: str, from_seq: int = 1
    ) -> Dict[str, object]:
        return self._request(
            "GET",
            self._subscription_path(
                corpus, subscription_id, f"?from_seq={int(from_seq)}"
            ),
        )

    def stream_subscription(
        self, corpus: str, subscription_id: str, from_seq: int = 1
    ) -> Dict[str, object]:
        """Fetch a diff suffix as NDJSON, parsed line by line.

        Truncation is detected by the envelope's diff count -- a
        connection cut mid-stream raises :class:`SpecValidationError`
        (or :class:`ConnectionFailedError` at the transport level),
        never a silently short diff list.  :meth:`follow_subscription`
        layers reconnect-and-resume on top of this.
        """
        path = self._subscription_path(
            corpus, subscription_id, f"/stream?from_seq={int(from_seq)}"
        )
        budget = self._budget(None)
        try:
            response = self.pool.open_response(
                "GET", path, body=None, headers={}, timeout=budget,
                idempotent=True,
            )
        except (OSError, http.client.HTTPException) as exc:
            self._raise_transport_error(exc, "GET", path, budget)
        error_body: Optional[bytes] = None
        try:
            status = response.status
            if status >= 400:
                error_body = response.read()
            else:
                payload = diffs_from_ndjson(iter(response.readline, b""))
        except (OSError, http.client.HTTPException) as exc:
            self.pool.abandon(response)
            self._raise_transport_error(exc, "GET", path, budget)
        except BaseException:
            self.pool.abandon(response)
            raise
        if response.isclosed():
            self.pool.finish(response)
        else:
            self.pool.abandon(response)
        if error_body is not None:
            self._decode_payload(status, error_body, "GET", path)  # raises
        return payload

    @staticmethod
    def _consume_diff_lines(response, from_seq: int, sink: List[Dict[str, object]], path: str) -> Dict[str, object]:
        """Parse one diff NDJSON stream, acking into ``sink`` per line.

        Every *complete* diff line is appended to ``sink`` before the
        next line is read, so when the stream dies mid-transfer the
        caller knows exactly which diffs arrived whole and can resume
        from the seq after the last acked one.
        """
        def fail(message: str) -> None:
            raise SpecValidationError(f"{message} from GET {path}")

        first = response.readline()
        if not first:
            fail("empty NDJSON stream")
        try:
            envelope = json.loads(first.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            fail("malformed NDJSON envelope")
        if not isinstance(envelope, dict) or envelope.get("kind") != "diffs":
            fail("unexpected NDJSON envelope")
        expected = int(from_seq)
        for _ in range(int(envelope.get("n_diffs", 0))):
            line = response.readline()
            if not line:
                fail("truncated NDJSON stream")
            try:
                record = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                fail("malformed NDJSON diff line")
            if not isinstance(record, dict) or record.get("kind") != "diff":
                fail("unexpected NDJSON line kind")
            if int(record.get("seq", -1)) != expected:
                fail("non-contiguous diff seq")
            record.pop("kind", None)
            sink.append(record)
            expected += 1
        envelope = dict(envelope)
        envelope.pop("kind", None)
        envelope.pop("n_diffs", None)
        return envelope

    def _read_diff_stream(
        self,
        corpus: str,
        subscription_id: str,
        from_seq: int,
        sink: List[Dict[str, object]],
    ) -> Dict[str, object]:
        path = self._subscription_path(
            corpus, subscription_id, f"/stream?from_seq={int(from_seq)}"
        )
        budget = self._budget(None)
        try:
            response = self.pool.open_response(
                "GET", path, body=None, headers={}, timeout=budget,
                idempotent=True,
            )
        except (OSError, http.client.HTTPException) as exc:
            self._raise_transport_error(exc, "GET", path, budget)
        error_body: Optional[bytes] = None
        try:
            status = response.status
            if status >= 400:
                error_body = response.read()
            else:
                envelope = self._consume_diff_lines(response, from_seq, sink, path)
        except (OSError, http.client.HTTPException) as exc:
            self.pool.abandon(response)
            self._raise_transport_error(exc, "GET", path, budget)
        except BaseException:
            self.pool.abandon(response)
            raise
        if response.isclosed():
            self.pool.finish(response)
        else:
            self.pool.abandon(response)
        if error_body is not None:
            self._decode_payload(status, error_body, "GET", path)  # raises
        return envelope

    def follow_subscription(
        self,
        corpus: str,
        subscription_id: str,
        from_seq: int = 1,
        max_reconnects: int = 3,
    ) -> Dict[str, object]:
        """Stream the diff suffix, resuming across truncated streams.

        Diffs are acked line by line as each complete NDJSON record
        arrives; when a stream dies mid-transfer (truncated body or a
        dropped connection) the client reconnects with ``from_seq`` set
        to the last acked seq + 1, so no diff is ever skipped or
        replayed -- the resumed stream starts exactly where the dead
        one stopped.  Returns the poll-shaped payload plus a
        ``reconnects`` count.
        """
        collected: List[Dict[str, object]] = []
        next_seq = int(from_seq)
        last_error: Optional[Exception] = None
        for attempt in range(max_reconnects + 1):
            try:
                envelope = self._read_diff_stream(
                    corpus, subscription_id, next_seq, collected
                )
            except (SpecValidationError, ConnectionFailedError) as exc:
                last_error = exc
                if collected:
                    next_seq = int(collected[-1]["seq"]) + 1
                continue
            result = dict(envelope)
            result["from_seq"] = int(from_seq)
            result["diffs"] = collected
            result["reconnects"] = attempt
            return result
        raise ConnectionFailedError(
            f"subscription stream for {subscription_id!r} on {corpus!r} kept "
            f"failing after {max_reconnects} reconnects: {last_error}",
            details={"corpus": corpus, "subscription_id": subscription_id},
        )

    def close(self) -> None:
        """Close pooled connections (the client is unusable afterwards)."""
        self.pool.close()


class FleetClient(TagDMClient):
    """Talk to a serving fleet, bypassing the router on the data path.

    On first use the client fetches the router's placement map
    (``GET /placement``) and opens a pooled :class:`HttpClient` per
    worker; corpus operations then go *directly* to the owning worker,
    cutting the router's forwarding hop out of every insert and solve.
    The router stays the source of truth: when a direct request fails at
    the transport level (the worker died, or respawned on a new port) or
    the worker no longer serves the corpus, the client refreshes its
    placement map and retries direct once, then falls back to the router
    -- which itself waits out worker respawns.

    Thread-safe; the placement cache and per-worker clients are shared
    under one lock, requests themselves run lock-free on pooled
    connections.
    """

    def __init__(
        self,
        router_url: str,
        request_timeout: float = 30.0,
        direct: bool = True,
        pool_size: int = 8,
    ) -> None:
        self.router = HttpClient(
            router_url, request_timeout=request_timeout, pool_size=pool_size
        )
        self.request_timeout = request_timeout
        self.pool_size = pool_size
        #: ``direct=False`` sends everything through the router (useful
        #: to measure the forwarding overhead the direct path avoids).
        self.direct = direct
        self._lock = named_lock("client.placement")
        self._corpus_urls: Dict[str, str] = {}
        self._workers: Dict[str, HttpClient] = {}

    # ------------------------------------------------------------------
    # Placement cache
    # ------------------------------------------------------------------
    def refresh_placement(self) -> Dict[str, str]:
        """Re-fetch the router's placement map; returns corpus->worker-url."""
        payload = self.router.placement()
        corpora = payload.get("corpora", {})
        workers = payload.get("workers", {})
        mapping: Dict[str, str] = {}
        if isinstance(corpora, Mapping) and isinstance(workers, Mapping):
            for corpus, worker_id in corpora.items():
                url = workers.get(str(worker_id))
                if isinstance(url, str) and url:
                    mapping[str(corpus)] = url
        with self._lock:
            self._corpus_urls = mapping
        return dict(mapping)

    def _worker_client(self, url: str) -> HttpClient:
        with self._lock:
            client = self._workers.get(url)
            if client is None:
                client = HttpClient(
                    url, request_timeout=self.request_timeout, pool_size=self.pool_size
                )
                self._workers[url] = client
            return client

    def _direct_client(self, corpus: str, refresh: bool) -> Optional[HttpClient]:
        if not self.direct:
            return None
        with self._lock:
            url = self._corpus_urls.get(corpus)
        if url is None or refresh:
            url = self.refresh_placement().get(corpus)
        if url is None:
            return None
        return self._worker_client(url)

    def _run(self, corpus: str, operation: Callable[[TagDMClient], object]) -> object:
        """Direct attempt -> placement refresh + retry -> router fallback."""
        for refresh in (False, True):
            client = self._direct_client(corpus, refresh=refresh)
            if client is None:
                break
            try:
                return operation(client)
            except (ConnectionFailedError, UnknownCorpusError):
                continue
        return operation(self.router)

    # ------------------------------------------------------------------
    # TagDMClient operations
    # ------------------------------------------------------------------
    def corpora(self) -> List[str]:
        return self.router.corpora()

    def insert(
        self,
        corpus: str,
        actions: Iterable[Mapping[str, object]],
        idempotency_key: Optional[str] = None,
    ) -> IncrementalUpdateReport:
        """Insert via the owning worker, falling back to the router.

        Exactly-once across a worker crash: one idempotency key is
        generated up front and rides on the direct attempt, the
        placement-refresh retry *and* the router fallback, so whichever
        path re-sends the batch, the corpus store deduplicates it (see
        ``DEPLOYMENT.md``).
        """
        batch = list(actions)
        key = idempotency_key or uuid.uuid4().hex
        return self._run(
            corpus,
            lambda client: client.insert(corpus, batch, idempotency_key=key),
        )

    def solve(
        self,
        corpus: str,
        request: SolveRequest,
        algorithm: str = "auto",
        timeout: Optional[float] = None,
        **options: object,
    ) -> MiningResult:
        return self._run(
            corpus,
            lambda client: client.solve(
                corpus, request, algorithm=algorithm, timeout=timeout, **options
            ),
        )

    def solve_page(
        self,
        corpus: str,
        request: SolveRequest,
        page: int = 1,
        page_size: int = DEFAULT_PAGE_SIZE,
        algorithm: str = "auto",
        timeout: Optional[float] = None,
        **options: object,
    ) -> ResultPage:
        return self._run(
            corpus,
            lambda client: client.solve_page(
                corpus,
                request,
                page=page,
                page_size=page_size,
                algorithm=algorithm,
                timeout=timeout,
                **options,
            ),
        )

    def solve_stream(
        self,
        corpus: str,
        request: SolveRequest,
        algorithm: str = "auto",
        timeout: Optional[float] = None,
        **options: object,
    ) -> MiningResult:
        return self._run(
            corpus,
            lambda client: client.solve_stream(
                corpus, request, algorithm=algorithm, timeout=timeout, **options
            ),
        )

    def stats(self, corpus: str) -> Dict[str, object]:
        return self._run(corpus, lambda client: client.stats(corpus))

    def register_subscription(
        self,
        corpus: str,
        spec: SolveRequest,
        owner: str = "anonymous",
        subscription_id: Optional[str] = None,
        idempotency_key: Optional[str] = None,
    ) -> Dict[str, object]:
        # Same exactly-once contract as insert: one key up front rides
        # on the direct attempt, the refresh retry and the router
        # fallback, so no path can double-register.
        key = idempotency_key or uuid.uuid4().hex
        return self._run(
            corpus,
            lambda client: client.register_subscription(
                corpus,
                spec,
                owner=owner,
                subscription_id=subscription_id,
                idempotency_key=key,
            ),
        )

    def subscriptions(self, corpus: str) -> List[Dict[str, object]]:
        return self._run(corpus, lambda client: client.subscriptions(corpus))

    def poll_subscription(
        self, corpus: str, subscription_id: str, from_seq: int = 1
    ) -> Dict[str, object]:
        return self._run(
            corpus,
            lambda client: client.poll_subscription(
                corpus, subscription_id, from_seq=from_seq
            ),
        )

    def stream_subscription(
        self, corpus: str, subscription_id: str, from_seq: int = 1
    ) -> Dict[str, object]:
        return self._run(
            corpus,
            lambda client: client.stream_subscription(
                corpus, subscription_id, from_seq=from_seq
            ),
        )

    def health(self) -> Dict[str, object]:
        return self.router.health()

    def placement(self) -> Dict[str, object]:
        """The router's full placement payload (workers, corpora, pins)."""
        return self.router.placement()

    def close(self) -> None:
        """Close the router client and every per-worker client."""
        with self._lock:
            workers = list(self._workers.values())
            self._workers.clear()
        for client in workers:
            client.close()
        self.router.close()
