"""The unified TagDM client: one API, three interchangeable backends.

:class:`TagDMClient` is the caller-facing abstraction of the wire-native
API.  Code written against it does not know -- and does not need to know
-- where the corpus lives:

* :class:`LocalClient` wraps in-process :class:`~repro.core.framework.TagDM`
  / :class:`~repro.core.incremental.IncrementalTagDM` sessions (the
  embedded-library deployment);
* :class:`ServerClient` wraps a :class:`~repro.serving.server.TagDMServer`
  and routes through its warm shards (the single-process serving
  deployment);
* :class:`HttpClient` speaks JSON to the HTTP front-end
  (:mod:`repro.serving.http`) over the network (the remote deployment).

All three validate requests through the same
:class:`~repro.api.spec.ProblemSpec` machinery and raise the same typed
:class:`~repro.api.errors.ApiError` taxonomy, and a solve produces
bit-identical group selections on every backend serving the same warm
session -- that is the contract the smoke test in
``examples/http_client.py`` proves.
"""

from __future__ import annotations

import json
import socket
import urllib.error
import urllib.parse
import urllib.request
from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Mapping, Optional, Union

from repro.api.errors import (
    ApiError,
    CapabilityMismatchError,
    SolveTimeoutError,
    SpecValidationError,
    UnknownCorpusError,
    api_error_from_payload,
    run_with_timeout,
)
from repro.api.service import (
    coerce_spec,
    corpus_stats,
    health as server_health,
    insert_actions,
    list_corpora,
    solve_spec,
    validate_actions,
)
from repro.api.spec import ProblemSpec
from repro.core.incremental import IncrementalTagDM, IncrementalUpdateReport
from repro.core.problem import TagDMProblem
from repro.core.result import MiningResult

__all__ = ["TagDMClient", "LocalClient", "ServerClient", "HttpClient"]

SolveRequest = Union[ProblemSpec, TagDMProblem, Mapping[str, object]]


class TagDMClient(ABC):
    """Backend-independent TagDM request interface.

    Solve requests accept a :class:`ProblemSpec`, a plain
    :class:`TagDMProblem` (with ``algorithm`` / keyword options), or a
    raw spec payload dict -- the three forms the wire protocol defines.
    """

    # ------------------------------------------------------------------
    # Abstract operations
    # ------------------------------------------------------------------
    @abstractmethod
    def corpora(self) -> List[str]:
        """Names of the corpora this client can reach."""

    @abstractmethod
    def insert(
        self, corpus: str, actions: Iterable[Mapping[str, object]]
    ) -> IncrementalUpdateReport:
        """Apply a batch of action dicts and return the merged report."""

    @abstractmethod
    def solve(
        self,
        corpus: str,
        request: SolveRequest,
        algorithm: str = "auto",
        timeout: Optional[float] = None,
        **options: object,
    ) -> MiningResult:
        """Validate and run one solve request over the named corpus."""

    @abstractmethod
    def stats(self, corpus: str) -> Dict[str, object]:
        """Serving counters for one corpus."""

    @abstractmethod
    def health(self) -> Dict[str, object]:
        """Aggregate liveness payload (shape of ``/healthz``)."""

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------
    def insert_action(
        self,
        corpus: str,
        user_id: str,
        item_id: str,
        tags: Iterable[str],
        rating: Optional[float] = None,
        user_attributes: Optional[Mapping[str, str]] = None,
        item_attributes: Optional[Mapping[str, str]] = None,
    ) -> IncrementalUpdateReport:
        """Insert a single tagging action (one-element batch)."""
        return self.insert(
            corpus,
            [
                {
                    "user_id": user_id,
                    "item_id": item_id,
                    "tags": list(tags),
                    "rating": rating,
                    "user_attributes": (
                        None if user_attributes is None else dict(user_attributes)
                    ),
                    "item_attributes": (
                        None if item_attributes is None else dict(item_attributes)
                    ),
                }
            ],
        )

    def close(self) -> None:
        """Release client-held resources (default: nothing to release)."""

    def __enter__(self) -> "TagDMClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class LocalClient(TagDMClient):
    """Speak the wire API to in-process sessions (no server, no socket).

    Parameters
    ----------
    sessions:
        ``corpus name -> prepared session`` mapping.  Solves work with
        both :class:`TagDM` and :class:`IncrementalTagDM`; inserts need
        the incremental wrapper (a plain session cannot absorb actions,
        which the client reports as a capability mismatch).
    """

    def __init__(self, sessions: Mapping[str, object]) -> None:
        self._sessions: Dict[str, object] = dict(sessions)

    def _session(self, corpus: str):
        try:
            return self._sessions[corpus]
        except KeyError:
            raise UnknownCorpusError(
                f"corpus {corpus!r} is not registered with this client",
                details={"corpus": corpus, "known": sorted(self._sessions)},
            ) from None

    def corpora(self) -> List[str]:
        return sorted(self._sessions)

    def insert(
        self, corpus: str, actions: Iterable[Mapping[str, object]]
    ) -> IncrementalUpdateReport:
        session = self._session(corpus)
        if not isinstance(session, IncrementalTagDM):
            raise CapabilityMismatchError(
                f"corpus {corpus!r} is served by a static TagDM session; "
                "inserts need an IncrementalTagDM",
                details={"corpus": corpus},
            )
        batch = validate_actions(actions)
        try:
            return session.add_actions(batch)
        except (KeyError, ValueError, TypeError) as exc:
            raise SpecValidationError(f"insert rejected: {exc}") from exc

    def solve(
        self,
        corpus: str,
        request: SolveRequest,
        algorithm: str = "auto",
        timeout: Optional[float] = None,
        **options: object,
    ) -> MiningResult:
        session = self._session(corpus)
        spec = coerce_spec(request, algorithm=algorithm, options=options)
        problem, name = spec.validate()
        return run_with_timeout(
            lambda: session.solve(problem, algorithm=name, **dict(spec.options)),
            timeout,
            f"solve({corpus})",
        )

    def stats(self, corpus: str) -> Dict[str, object]:
        session = self._session(corpus)
        dataset = session.dataset
        return {
            "name": corpus,
            "backend": "local",
            "actions": dataset.n_actions,
            "groups": session.n_groups,
        }

    def health(self) -> Dict[str, object]:
        return {"status": "ok", "corpora": self.corpora()}


class ServerClient(TagDMClient):
    """Route requests through a :class:`TagDMServer`'s warm shards.

    The client does not own the server: closing the client leaves the
    server (and its stores and snapshot rotators) running.
    """

    def __init__(self, server) -> None:
        self.server = server

    def corpora(self) -> List[str]:
        return list_corpora(self.server)

    def insert(
        self, corpus: str, actions: Iterable[Mapping[str, object]]
    ) -> IncrementalUpdateReport:
        return insert_actions(self.server, corpus, actions)

    def solve(
        self,
        corpus: str,
        request: SolveRequest,
        algorithm: str = "auto",
        timeout: Optional[float] = None,
        **options: object,
    ) -> MiningResult:
        spec = coerce_spec(request, algorithm=algorithm, options=options)
        return solve_spec(self.server, corpus, spec, timeout=timeout)

    def stats(self, corpus: str) -> Dict[str, object]:
        return corpus_stats(self.server, corpus)

    def health(self) -> Dict[str, object]:
        return server_health(self.server)


class HttpClient(TagDMClient):
    """Speak JSON to the HTTP front-end of :mod:`repro.serving.http`.

    Parameters
    ----------
    base_url:
        Front-end address, e.g. ``"http://127.0.0.1:8631"``.
    request_timeout:
        Socket timeout applied to every request (seconds).  A solve with
        an explicit ``timeout`` also sends it to the server as its
        compute budget and widens the socket timeout to cover it.

    Error bodies are decoded back into the same typed
    :class:`~repro.api.errors.ApiError` classes the server raised, so
    ``except SpecValidationError`` works identically against every
    backend.
    """

    def __init__(self, base_url: str, request_timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.request_timeout = request_timeout

    # ------------------------------------------------------------------
    # Transport plumbing
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, object]] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, object]:
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data is not None else {},
        )
        budget = self.request_timeout if timeout is None else timeout + self.request_timeout
        try:
            with urllib.request.urlopen(request, timeout=budget) as response:
                payload = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                error_payload = json.loads(exc.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                raise ApiError(
                    f"HTTP {exc.code} with non-JSON body from {method} {path}"
                ) from exc
            raise api_error_from_payload(error_payload) from exc
        except (socket.timeout, TimeoutError) as exc:
            raise SolveTimeoutError(
                f"{method} {path} timed out after {budget:g}s",
                details={"timeout_seconds": budget},
            ) from exc
        except urllib.error.URLError as exc:
            if isinstance(exc.reason, (socket.timeout, TimeoutError)):
                raise SolveTimeoutError(
                    f"{method} {path} timed out after {budget:g}s",
                    details={"timeout_seconds": budget},
                ) from exc
            raise ApiError(f"cannot reach {self.base_url}: {exc.reason}") from exc
        if not isinstance(payload, dict):
            raise ApiError(f"malformed response body from {method} {path}")
        return payload

    # ------------------------------------------------------------------
    # TagDMClient operations
    # ------------------------------------------------------------------
    @staticmethod
    def _corpus_path(corpus: str, verb: str) -> str:
        # Corpus names are caller input; a name with a slash or space
        # must not produce a malformed or misrouted request line.
        return f"/corpora/{urllib.parse.quote(corpus, safe='')}/{verb}"

    def corpora(self) -> List[str]:
        payload = self._request("GET", "/corpora")
        return [str(name) for name in payload.get("corpora", [])]

    def insert(
        self, corpus: str, actions: Iterable[Mapping[str, object]]
    ) -> IncrementalUpdateReport:
        payload = self._request(
            "POST", self._corpus_path(corpus, "insert"), body={"actions": list(actions)}
        )
        return IncrementalUpdateReport.from_dict(payload)

    def solve(
        self,
        corpus: str,
        request: SolveRequest,
        algorithm: str = "auto",
        timeout: Optional[float] = None,
        **options: object,
    ) -> MiningResult:
        spec = coerce_spec(request, algorithm=algorithm, options=options)
        body = spec.to_dict()
        if timeout is not None:
            body["timeout_seconds"] = timeout
        payload = self._request(
            "POST", self._corpus_path(corpus, "solve"), body=body, timeout=timeout
        )
        return MiningResult.from_dict(payload)

    def stats(self, corpus: str) -> Dict[str, object]:
        return self._request("GET", self._corpus_path(corpus, "stats"))

    def health(self) -> Dict[str, object]:
        return self._request("GET", "/healthz")
