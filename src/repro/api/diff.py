"""Result diffs: what changed between two solves of the same spec.

A subscription notification does not re-ship the whole result every
time the corpus moves -- it ships a :class:`ResultDiff`, an *edit
script* from the previous delivered result payload to the new one.
The contract is constructive: ``apply_diff(diff, old) == new`` holds
byte-for-byte (after stripping volatile timing fields) because the
diff is literally the recipe :func:`apply_diff` follows, not a
summary a reader must re-interpret.

Group identity is the group's conjunctive description -- the ordered
``predicates`` list of ``[column, value]`` pairs -- matching what
``MiningResult.to_dict`` calls "serialised by identity".  Relative to
that identity a diff classifies each group in the new result as:

``keep``
    identical payload carried over from the old result (the diff
    stores only the key, so an unchanged group costs O(predicates)
    on the wire, not O(tuples)),
``add``
    a group whose key was absent from the old result (full payload),
``rescore``
    a group whose key existed but whose payload changed -- in TagDM
    terms the same description now covers a different tuple set
    because inserts landed under it (full new payload).

Keys present in the old result but absent from the new one are listed
in ``dropped``.  The envelope (every top-level field except
``groups``) is carried only when it changed; an empty diff therefore
certifies the two results are bit-identical, so the evaluator can
suppress the notification entirely -- no false positives from
re-solving an unchanged corpus.

Volatile fields (``elapsed_seconds``, ``evaluations``, ``metadata``)
are wall-clock/instrumentation noise: two solves of the same view
byte-match only outside them, so :func:`comparable_payload` strips
them and all diff equality is defined over the stripped form.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.errors import SpecValidationError

__all__ = [
    "VOLATILE_RESULT_FIELDS",
    "ResultDiff",
    "apply_diff",
    "comparable_payload",
    "diff_results",
    "group_key",
    "payloads_equal",
]

#: Per-solve noise excluded from diff equality (see module docstring).
VOLATILE_RESULT_FIELDS: Tuple[str, ...] = ("elapsed_seconds", "evaluations", "metadata")


def comparable_payload(payload: Optional[Mapping[str, object]]) -> Optional[Dict[str, object]]:
    """``payload`` minus :data:`VOLATILE_RESULT_FIELDS`, or ``None``.

    This is the canonical form all diff construction, application and
    equality checks operate on; round-tripping through JSON preserves
    it exactly.
    """
    if payload is None:
        return None
    return {
        key: value
        for key, value in payload.items()
        if key not in VOLATILE_RESULT_FIELDS
    }


def group_key(group: Mapping[str, object]) -> Tuple[Tuple[str, str], ...]:
    """A group's identity: its ordered conjunctive description."""
    predicates = group.get("predicates", [])
    return tuple((str(column), str(value)) for column, value in predicates)


def _canonical(value: object) -> str:
    """Deterministic JSON encoding used for payload equality."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class ResultDiff:
    """Edit script from one result payload to its successor.

    ``ops`` covers the *new* result's groups in order; ``dropped``
    lists old-result keys that vanished.  ``envelope`` is the new
    result's non-``groups`` fields when they differ from the old
    result's (``None`` means "unchanged, reuse the old envelope").
    ``watermark`` is the corpus action count the new result was
    evaluated at.
    """

    watermark: int
    ops: Tuple[Tuple[str, object], ...]
    dropped: Tuple[Tuple[Tuple[str, str], ...], ...]
    envelope: Optional[Dict[str, object]] = field(default=None)

    @property
    def is_empty(self) -> bool:
        """True iff applying the diff reproduces the old payload exactly."""
        return (
            self.envelope is None
            and not self.dropped
            and all(op == "keep" for op, _ in self.ops)
        )

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "watermark": int(self.watermark),
            "ops": [
                [op, [list(pair) for pair in operand]]
                if op == "keep"
                else [op, operand]
                for op, operand in self.ops
            ],
            "dropped": [[list(pair) for pair in key] for key in self.dropped],
        }
        if self.envelope is not None:
            payload["envelope"] = self.envelope
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ResultDiff":
        try:
            raw_ops = payload["ops"]
            watermark = int(payload["watermark"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SpecValidationError(f"malformed diff payload: {exc}") from exc
        ops: List[Tuple[str, object]] = []
        for entry in raw_ops:
            op, operand = entry[0], entry[1]
            if op == "keep":
                ops.append((op, tuple((str(c), str(v)) for c, v in operand)))
            elif op in ("add", "rescore"):
                ops.append((op, dict(operand)))
            else:
                raise SpecValidationError(f"unknown diff op {op!r}")
        dropped = tuple(
            tuple((str(c), str(v)) for c, v in key)
            for key in payload.get("dropped", [])
        )
        envelope = payload.get("envelope")
        return cls(
            watermark=watermark,
            ops=tuple(ops),
            dropped=dropped,
            envelope=dict(envelope) if envelope is not None else None,
        )


def diff_results(
    old_payload: Optional[Mapping[str, object]],
    new_payload: Mapping[str, object],
    watermark: int,
) -> ResultDiff:
    """Build the edit script turning ``old_payload`` into ``new_payload``.

    ``old_payload`` is ``None`` for the initial snapshot: every group
    is an ``add`` and the full envelope is carried.  Both payloads are
    reduced to :func:`comparable_payload` form first, so volatile
    fields can never leak into a diff (and can never force a spurious
    notification).
    """
    old = comparable_payload(old_payload)
    new = comparable_payload(dict(new_payload))
    assert new is not None
    old_groups: Dict[Tuple[Tuple[str, str], ...], str] = {}
    if old is not None:
        for group in old.get("groups", []):
            old_groups[group_key(group)] = _canonical(group)

    ops: List[Tuple[str, object]] = []
    new_keys = set()
    for group in new.get("groups", []):
        key = group_key(group)
        new_keys.add(key)
        previous = old_groups.get(key)
        if previous is None:
            ops.append(("add", dict(group)))
        elif previous == _canonical(group):
            ops.append(("keep", key))
        else:
            ops.append(("rescore", dict(group)))
    dropped = tuple(key for key in old_groups if key not in new_keys)

    new_envelope = {key: value for key, value in new.items() if key != "groups"}
    if old is not None:
        old_envelope = {key: value for key, value in old.items() if key != "groups"}
    else:
        old_envelope = None
    envelope = None if new_envelope == old_envelope else new_envelope
    return ResultDiff(
        watermark=int(watermark),
        ops=tuple(ops),
        dropped=dropped,
        envelope=envelope,
    )


def apply_diff(
    diff: ResultDiff, old_payload: Optional[Mapping[str, object]]
) -> Dict[str, object]:
    """Replay ``diff`` against ``old_payload``; returns the new payload.

    Constructive inverse of :func:`diff_results`:
    ``apply_diff(diff_results(old, new, w), old)`` equals
    ``comparable_payload(new)`` byte-for-byte under canonical JSON.
    Raises :class:`SpecValidationError` when the diff references a
    group the old payload does not have -- the consumer's state has
    diverged and it must re-sync from a full snapshot.
    """
    old = comparable_payload(old_payload)
    old_groups: Dict[Tuple[Tuple[str, str], ...], Mapping[str, object]] = {}
    if old is not None:
        for group in old.get("groups", []):
            old_groups[group_key(group)] = group
    groups: List[object] = []
    for op, operand in diff.ops:
        if op == "keep":
            try:
                groups.append(old_groups[operand])  # type: ignore[index]
            except KeyError:
                raise SpecValidationError(
                    f"diff keeps group {operand!r} absent from the prior result"
                ) from None
        else:  # "add" | "rescore"
            groups.append(dict(operand))  # type: ignore[arg-type]
    for key in diff.dropped:
        if key not in old_groups:
            raise SpecValidationError(
                f"diff drops group {key!r} absent from the prior result"
            )
    if diff.envelope is not None:
        envelope = dict(diff.envelope)
    elif old is not None:
        envelope = {key: value for key, value in old.items() if key != "groups"}
    else:
        raise SpecValidationError(
            "diff against an empty prior result must carry its envelope"
        )
    envelope["groups"] = groups
    return envelope


def payloads_equal(
    left: Optional[Mapping[str, object]], right: Optional[Mapping[str, object]]
) -> bool:
    """Bit-identity of two result payloads modulo volatile fields."""
    return _canonical(comparable_payload(left)) == _canonical(comparable_payload(right))
