"""Typed error taxonomy of the wire-native TagDM API.

Every failure a request can hit maps to exactly one :class:`ApiError`
subclass, and every subclass carries a stable wire ``code`` plus the
HTTP status the front-end answers with:

=====================  ====================  ======
class                  code                  status
=====================  ====================  ======
SpecValidationError    ``validation``        422
UnknownCorpusError     ``unknown-corpus``    404
UnknownRouteError      ``unknown-route``     404
UnknownSubscriptionError ``unknown-subscription`` 404
CapabilityMismatchError ``capability-mismatch`` 409
SubscriptionExistsError ``subscription-exists`` 409
OverloadedError        ``overloaded``        429
WorkerUnavailableError ``worker-unavailable`` 503
SolveTimeoutError      ``timeout``           504
ApiError (fallback)    ``internal``          500
=====================  ====================  ======

The taxonomy is transport-agnostic: :class:`~repro.api.client.LocalClient`
raises the same classes an :class:`~repro.api.client.HttpClient` rebuilds
from a response body (:func:`api_error_from_payload`), so callers handle
failures identically whether the solve ran in-process or across the
network.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Dict, Mapping, Optional, TypeVar

from repro.core.exceptions import ReproError

__all__ = [
    "ApiError",
    "SpecValidationError",
    "UnknownCorpusError",
    "UnknownRouteError",
    "CapabilityMismatchError",
    "UnknownSubscriptionError",
    "SubscriptionExistsError",
    "ConnectionFailedError",
    "OverloadedError",
    "WorkerUnavailableError",
    "SolveTimeoutError",
    "api_error_from_payload",
    "retry_after_header",
    "run_with_timeout",
]


class ApiError(ReproError):
    """Base class of all wire-API failures.

    Attributes
    ----------
    code:
        Stable machine-readable identifier carried on the wire.
    status:
        The HTTP status the front-end answers with.
    details:
        Optional JSON-safe extras (field names, known corpora, ...).
    """

    code: str = "internal"
    status: int = 500

    def __init__(self, message: str, details: Optional[Mapping[str, object]] = None) -> None:
        super().__init__(message)
        self.message = message
        self.details: Dict[str, object] = dict(details or {})

    def to_payload(self) -> Dict[str, object]:
        """The wire form: ``{"error": {code, status, message, details}}``."""
        return {
            "error": {
                "code": self.code,
                "status": self.status,
                "message": self.message,
                "details": self.details,
            }
        }


class SpecValidationError(ApiError):
    """The request body or problem spec is malformed (HTTP 422)."""

    code = "validation"
    status = 422


class UnknownCorpusError(ApiError):
    """The named corpus is not being served (HTTP 404)."""

    code = "unknown-corpus"
    status = 404


class UnknownRouteError(ApiError):
    """The requested path or method does not exist (HTTP 404)."""

    code = "unknown-route"
    status = 404


class CapabilityMismatchError(ApiError):
    """The requested algorithm cannot solve this problem class (HTTP 409)."""

    code = "capability-mismatch"
    status = 409


class UnknownSubscriptionError(ApiError):
    """The named subscription is not registered on this corpus (HTTP 404)."""

    code = "unknown-subscription"
    status = 404


class SubscriptionExistsError(ApiError):
    """A different subscription already holds this id (HTTP 409).

    Registration is idempotent only through the ``Idempotency-Key``
    request log: re-sending the *same* registration with its original
    key replays the cached response, but reusing a subscription id with
    a different spec (or without the key) is a conflict, not a replay.
    """

    code = "subscription-exists"
    status = 409


class ConnectionFailedError(ApiError):
    """The client could not reach (or keep) its server connection.

    Client-side only: this class is raised locally by
    :class:`~repro.api.client.HttpClient` when the TCP connection cannot
    be established or dies before a response arrives -- it never travels
    on the wire (a server that *answered* has, by definition, been
    reached).  :class:`~repro.api.client.FleetClient` treats it as the
    signal to refresh its placement map and retry through the router.
    """

    code = "connection-failed"
    status = 503


class OverloadedError(ApiError):
    """Admission control shed the request before queueing it (HTTP 429).

    Raised by a shard whose insert queue or in-flight-solve count is at
    its :class:`~repro.serving.reliability.AdmissionPolicy` watermark.
    The request was *not* applied and is always safe to retry after the
    backoff carried in ``details["retry_after_seconds"]`` (also emitted
    as a ``Retry-After`` response header).
    """

    code = "overloaded"
    status = 429

    def __init__(
        self,
        message: str,
        details: Optional[Mapping[str, object]] = None,
        retry_after_seconds: Optional[float] = None,
    ) -> None:
        merged = dict(details or {})
        if retry_after_seconds is not None:
            merged["retry_after_seconds"] = float(retry_after_seconds)
        super().__init__(message, merged)

    @property
    def retry_after_seconds(self) -> Optional[float]:
        value = self.details.get("retry_after_seconds")
        return float(value) if value is not None else None


class WorkerUnavailableError(ApiError):
    """No worker process could answer for this corpus (HTTP 503).

    Raised by the fleet router when the owning worker stayed unreachable
    through its whole retry budget and deadline (it died and did not
    respawn in time, its respawn keeps failing, or its circuit breaker
    stayed open).  The request may be retried; ``details`` carries the
    corpus and the worker id the router tried.
    """

    code = "worker-unavailable"
    status = 503


class SolveTimeoutError(ApiError):
    """The request did not finish within its time budget (HTTP 504)."""

    code = "timeout"
    status = 504


_ERRORS_BY_CODE: Dict[str, type] = {
    cls.code: cls
    for cls in (
        SpecValidationError,
        UnknownCorpusError,
        UnknownRouteError,
        CapabilityMismatchError,
        UnknownSubscriptionError,
        SubscriptionExistsError,
        OverloadedError,
        WorkerUnavailableError,
        SolveTimeoutError,
        ApiError,
    )
}


def api_error_from_payload(payload: Mapping[str, object]) -> ApiError:
    """Rebuild the typed error a server serialised with ``to_payload``.

    Unknown codes degrade to the :class:`ApiError` base class (with the
    code preserved in ``details``) so a newer server cannot crash an
    older client.
    """
    body = payload.get("error", payload)
    if not isinstance(body, Mapping):
        return ApiError(f"malformed error payload: {payload!r}")
    code = str(body.get("code", "internal"))
    message = str(body.get("message", "unknown error"))
    details = body.get("details")
    cls = _ERRORS_BY_CODE.get(code)
    if cls is None:
        error = ApiError(message, details if isinstance(details, Mapping) else None)
        error.details.setdefault("code", code)
        return error
    return cls(message, details if isinstance(details, Mapping) else None)


def retry_after_header(error: ApiError) -> Optional[str]:
    """The ``Retry-After`` header value for ``error``, if it carries one.

    Any :class:`ApiError` whose details include ``retry_after_seconds``
    gets the header (rounded up to a whole second, as the header is
    integer-valued); others get ``None``.
    """
    value = error.details.get("retry_after_seconds")
    if value is None:
        return None
    try:
        seconds = float(value)
    except (TypeError, ValueError):
        return None
    return str(max(1, int(-(-seconds // 1))))


T = TypeVar("T")


def run_with_timeout(fn: Callable[[], T], timeout: Optional[float], what: str) -> T:
    """Run ``fn``, raising :class:`SolveTimeoutError` after ``timeout`` s.

    With ``timeout=None`` the call runs inline.  With a budget, ``fn``
    runs on a daemon worker thread; on expiry the caller gets the typed
    timeout error immediately while the abandoned worker runs to
    completion in the background (Python threads cannot be killed) --
    its session-level effects still land, only the response is given up
    on.  This mirrors what a network client experiences when it stops
    waiting on a slow server.
    """
    if timeout is None:
        return fn()
    if timeout <= 0:
        raise SpecValidationError(f"timeout must be positive, got {timeout}")
    outcome: "queue.Queue[tuple]" = queue.Queue(maxsize=1)

    def worker() -> None:
        try:
            outcome.put(("ok", fn()))
        except BaseException as exc:  # propagated to the waiting caller
            outcome.put(("error", exc))

    thread = threading.Thread(target=worker, name=f"tagdm-timeout-{what}", daemon=True)
    thread.start()
    try:
        kind, value = outcome.get(timeout=timeout)
    except queue.Empty:
        raise SolveTimeoutError(
            f"{what} did not finish within {timeout:g}s",
            details={"timeout_seconds": timeout},
        ) from None
    if kind == "error":
        raise value
    return value
