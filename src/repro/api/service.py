"""Transport-agnostic request execution over a :class:`TagDMServer`.

The functions here are the single implementation of every wire-API
operation: :class:`~repro.api.client.ServerClient` calls them directly
(in-process), and the HTTP front-end (:mod:`repro.serving.http`) calls
the very same functions from its request handlers.  That sharing is the
point -- a solve answered over a socket and a solve answered in-process
run the same validation, the same shard locking and the same session
code, so their results are bit-identical by construction.

All failures surface as the typed :class:`~repro.api.errors.ApiError`
taxonomy; transports only translate them (HTTP status codes on one side,
plain raises on the other).
"""

from __future__ import annotations

import json
import uuid
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Union

from repro.api.errors import (
    SpecValidationError,
    SubscriptionExistsError,
    UnknownCorpusError,
    UnknownSubscriptionError,
    run_with_timeout,
)
from repro.api.spec import PageSpec, ProblemSpec
from repro.core.incremental import IncrementalUpdateReport
from repro.core.problem import TagDMProblem
from repro.core.result import MiningResult

__all__ = [
    "coerce_spec",
    "validate_actions",
    "list_corpora",
    "corpus_stats",
    "insert_actions",
    "solve_spec",
    "solve_spec_payload",
    "result_ndjson_lines",
    "result_from_ndjson",
    "register_subscription",
    "list_subscriptions",
    "poll_subscription",
    "subscription_ndjson_lines",
    "diffs_from_ndjson",
    "health",
]


def validate_actions(actions: Iterable[Mapping[str, object]]) -> List[Mapping[str, object]]:
    """Shape-check an insert batch; the one validator every backend uses.

    Returns the materialised batch.  Raises :class:`SpecValidationError`
    for non-object entries or missing identity keys, so LocalClient and
    the server-backed transports cannot drift on what they accept.
    """
    batch = list(actions)
    for position, action in enumerate(batch):
        if not isinstance(action, Mapping):
            raise SpecValidationError(
                f"actions[{position}] must be an object, got {type(action).__name__}"
            )
        for key in ("user_id", "item_id"):
            if key not in action:
                raise SpecValidationError(f"actions[{position}] is missing {key!r}")
    return batch


def coerce_spec(
    request: Union[ProblemSpec, TagDMProblem, Mapping[str, object]],
    algorithm: str = "auto",
    options: Optional[Mapping[str, object]] = None,
) -> ProblemSpec:
    """Normalise the three accepted solve-request forms into a spec.

    Clients accept a :class:`ProblemSpec`, an in-memory
    :class:`TagDMProblem` (plus ``algorithm``/``options``), or a raw wire
    payload dict; everything downstream speaks specs only.
    """
    if isinstance(request, ProblemSpec):
        if options:
            raise SpecValidationError(
                "pass algorithm options inside the ProblemSpec, not alongside it"
            )
        return request
    if isinstance(request, TagDMProblem):
        return ProblemSpec.from_problem(request, algorithm=algorithm, **dict(options or {}))
    if isinstance(request, Mapping):
        return ProblemSpec.from_dict(request)
    raise SpecValidationError(
        "solve request must be a ProblemSpec, a TagDMProblem or a spec payload "
        f"dict, got {type(request).__name__}"
    )


def _shard(server, corpus: str):
    try:
        return server.shard(corpus)
    except KeyError as exc:
        raise UnknownCorpusError(
            f"corpus {corpus!r} is not being served",
            details={"corpus": corpus, "known": list(server.corpus_names)},
        ) from exc


def list_corpora(server) -> List[str]:
    """Names of the corpora the server is currently serving."""
    return list(server.corpus_names)


def corpus_stats(server, corpus: str) -> Dict[str, object]:
    """Serving counters of one shard (raises for unknown corpora)."""
    return _shard(server, corpus).stats()


def insert_actions(
    server,
    corpus: str,
    actions: Iterable[Mapping[str, object]],
    request_id: Optional[str] = None,
) -> IncrementalUpdateReport:
    """Apply an action batch to the named shard (waits until applied).

    Bad action dicts -- missing keys, unknown users/items without
    attributes -- surface as :class:`SpecValidationError` so every
    transport answers them as a 422-class failure rather than a server
    error.

    ``request_id`` is the batch's idempotency key (the HTTP transport
    reads it from the ``Idempotency-Key`` header): a key the corpus
    store has already recorded returns the original report with
    ``deduplicated=True`` instead of re-applying the batch, which is
    what makes client/router retries of an insert exactly-once.
    """
    batch = validate_actions(actions)
    shard = _shard(server, corpus)
    try:
        return shard.insert_batch(batch, request_id=request_id)
    except (KeyError, ValueError, TypeError) as exc:
        raise SpecValidationError(f"insert rejected: {exc}") from exc


def solve_spec(
    server,
    corpus: str,
    request: Union[ProblemSpec, TagDMProblem, Mapping[str, object]],
    timeout: Optional[float] = None,
) -> MiningResult:
    """Validate a solve request and run it on the named warm shard.

    The spec is validated (422/409 taxonomy) *before* the shard is
    touched; the solve itself runs under the shard's shared read lock on
    the calling thread, optionally bounded by ``timeout`` seconds
    (:class:`~repro.api.errors.SolveTimeoutError` on expiry).
    """
    spec = coerce_spec(request)
    problem, algorithm = spec.validate()
    shard = _shard(server, corpus)
    return run_with_timeout(
        lambda: shard.solve(problem, algorithm=algorithm, **dict(spec.options)),
        timeout,
        f"solve({corpus})",
    )


def solve_spec_payload(
    server,
    corpus: str,
    request: Union[ProblemSpec, TagDMProblem, Mapping[str, object]],
    timeout: Optional[float] = None,
    page: Optional[PageSpec] = None,
) -> Dict[str, object]:
    """Run a solve and return its wire payload, optionally one page of it.

    The solve itself is always complete -- pagination windows the
    *response*, not the computation -- so any page of a deterministic
    solve is consistent with every other page of the same request.
    With ``page=None`` the full payload comes back unwindowed (identical
    to ``solve_spec(...).to_dict()``).
    """
    result = solve_spec(server, corpus, request, timeout=timeout)
    payload = result.to_dict()
    if page is None:
        return payload
    return page.paginate(payload)


def result_ndjson_lines(payload: Mapping[str, object]) -> Iterator[bytes]:
    """Encode a result payload as NDJSON lines (UTF-8, newline-terminated).

    Line 1 is the result envelope -- every field except ``groups`` plus
    ``n_groups`` -- and each following line is one group object, so a
    reader holds at most one group in memory per parse step no matter
    how large the group set is.  The inverse is
    :func:`result_from_ndjson`.
    """
    groups = payload.get("groups", [])
    envelope = {key: value for key, value in payload.items() if key != "groups"}
    envelope["kind"] = "result"
    envelope["n_groups"] = len(groups)
    yield json.dumps(envelope).encode("utf-8") + b"\n"
    for group in groups:
        yield json.dumps({"kind": "group", "group": group}).encode("utf-8") + b"\n"


def result_from_ndjson(lines: Iterable[Union[str, bytes]]) -> Dict[str, object]:
    """Reassemble the payload :func:`result_ndjson_lines` produced.

    Raises :class:`SpecValidationError` on a malformed or truncated
    stream (wrong first line, group-count mismatch), so a connection
    that died mid-stream cannot silently pass off a partial group set
    as a complete result.
    """
    envelope: Optional[Dict[str, object]] = None
    groups: List[object] = []
    for raw in lines:
        text = raw.decode("utf-8") if isinstance(raw, bytes) else raw
        if not text.strip():
            continue
        try:
            record = json.loads(text)
        except ValueError as exc:
            raise SpecValidationError(f"malformed NDJSON line: {exc}") from exc
        kind = record.get("kind") if isinstance(record, dict) else None
        if envelope is None:
            if kind != "result":
                raise SpecValidationError(
                    f"NDJSON stream must start with the result envelope, got {kind!r}"
                )
            envelope = {
                key: value
                for key, value in record.items()
                if key not in ("kind", "n_groups")
            }
            envelope["_expected_groups"] = int(record.get("n_groups", 0))
        elif kind == "group":
            groups.append(record.get("group"))
        else:
            raise SpecValidationError(f"unexpected NDJSON record kind {kind!r}")
    if envelope is None:
        raise SpecValidationError("empty NDJSON stream")
    expected = envelope.pop("_expected_groups")
    if len(groups) != expected:
        raise SpecValidationError(
            f"truncated NDJSON stream: expected {expected} groups, got {len(groups)}"
        )
    envelope["groups"] = groups
    return envelope


def _subscription_summary(row: Mapping[str, object]) -> Dict[str, object]:
    """The wire form of one subscription row (``last_result`` elided)."""
    return {
        "subscription_id": row["subscription_id"],
        "owner": row["owner"],
        "spec": row["spec"],
        "state": row["state"],
        "created_at": row["created_at"],
        "last_watermark": row["last_watermark"],
        "last_seq": row["last_seq"],
    }


def register_subscription(
    server,
    corpus: str,
    payload: Mapping[str, object],
    request_id: Optional[str] = None,
) -> Dict[str, object]:
    """Register a standing query on the named corpus.

    ``payload`` carries the problem ``spec`` (validated exactly like a
    one-shot solve request: 422 on malformed, 409 on capability
    mismatch), an optional ``owner`` label and an optional
    client-chosen ``subscription_id`` (server-assigned otherwise).

    ``request_id`` is the registration's idempotency key (HTTP reads
    it from ``Idempotency-Key``): a key the corpus store has already
    recorded replays the original response with ``deduplicated=True``
    instead of re-registering, which is what makes client/router
    retries of a registration exactly-once.  Reusing a *subscription
    id* without the original key is a 409
    (:class:`~repro.api.errors.SubscriptionExistsError`).

    The new subscription is evaluated against the currently published
    view immediately, so its first diff (seq 1, relative to the empty
    result) is the full initial snapshot.
    """
    if not isinstance(payload, Mapping):
        raise SpecValidationError(
            f"subscription request must be an object, got {type(payload).__name__}"
        )
    spec_payload = payload.get("spec")
    if not isinstance(spec_payload, Mapping):
        raise SpecValidationError("subscription request is missing its 'spec' object")
    spec = ProblemSpec.from_dict(spec_payload)
    spec.validate()  # full 422/409 taxonomy before any state changes
    shard = _shard(server, corpus)
    store = shard.session.store
    if store is None or shard.evaluator is None:
        raise SpecValidationError(
            f"corpus {corpus!r} has no durable store; subscriptions need one"
        )
    if request_id is not None:
        recalled = store.recall_request(request_id)
        if recalled is not None:
            response = dict(recalled)
            response["deduplicated"] = True
            return response
    subscription_id = str(payload.get("subscription_id") or f"sub-{uuid.uuid4().hex[:12]}")
    owner = str(payload.get("owner", "anonymous"))
    try:
        with store.deferred_commit():
            row = store.create_subscription(subscription_id, owner, spec.to_dict())
            response = _subscription_summary(row)
            response["deduplicated"] = False
            if request_id is not None:
                store.record_request(request_id, response)
    except KeyError:
        raise SubscriptionExistsError(
            f"subscription {subscription_id!r} already exists on corpus {corpus!r}",
            details={"corpus": corpus, "subscription_id": subscription_id},
        ) from None
    shard.evaluator.subscription_registered()
    shard.evaluator.notify_publish(shard.current_view())
    return response


def list_subscriptions(server, corpus: str) -> List[Dict[str, object]]:
    """All subscriptions registered on the named corpus, oldest first."""
    shard = _shard(server, corpus)
    store = shard.session.store
    if store is None:
        return []
    return [_subscription_summary(row) for row in store.list_subscriptions()]


def _subscription_diffs(server, corpus: str, subscription_id: str, from_seq: int):
    shard = _shard(server, corpus)
    store = shard.session.store
    try:
        if store is None:
            raise KeyError(subscription_id)
        row = store.subscription(subscription_id)
        if row is None:
            raise KeyError(subscription_id)
        diffs = store.subscription_diffs(subscription_id, from_seq=int(from_seq))
    except KeyError:
        raise UnknownSubscriptionError(
            f"subscription {subscription_id!r} is not registered on corpus {corpus!r}",
            details={"corpus": corpus, "subscription_id": subscription_id},
        ) from None
    return row, diffs


def poll_subscription(
    server, corpus: str, subscription_id: str, from_seq: int = 1
) -> Dict[str, object]:
    """Delivered diffs with ``seq >= from_seq``, plus the ledger position.

    The poll/stream resume contract: a consumer that has applied diffs
    up to seq ``n`` asks for ``from_seq = n + 1`` and receives exactly
    the missing suffix -- seqs are dense per subscription, so there is
    no gap ambiguity after a disconnect.
    """
    row, diffs = _subscription_diffs(server, corpus, subscription_id, from_seq)
    return {
        "subscription_id": row["subscription_id"],
        "from_seq": int(from_seq),
        "last_seq": row["last_seq"],
        "watermark": row["last_watermark"],
        "diffs": [
            {
                "seq": entry["seq"],
                "watermark": entry["watermark"],
                "epoch": entry["epoch"],
                "diff": entry["diff"],
            }
            for entry in diffs
        ],
    }


def subscription_ndjson_lines(
    server, corpus: str, subscription_id: str, from_seq: int = 1
) -> Iterator[bytes]:
    """Encode a diff suffix as NDJSON (UTF-8, newline-terminated).

    Line 1 is the stream envelope -- ``kind: "diffs"`` plus ``n_diffs``
    and the ledger position -- and each following line is one
    ``kind: "diff"`` record carrying its seq, watermark, epoch and the
    :class:`~repro.api.diff.ResultDiff` payload.  The inverse is
    :func:`diffs_from_ndjson`; like the solve stream, the declared
    count is what lets a reader detect truncation.
    """
    row, diffs = _subscription_diffs(server, corpus, subscription_id, from_seq)
    envelope = {
        "kind": "diffs",
        "subscription_id": row["subscription_id"],
        "from_seq": int(from_seq),
        "n_diffs": len(diffs),
        "last_seq": row["last_seq"],
        "watermark": row["last_watermark"],
    }
    yield json.dumps(envelope).encode("utf-8") + b"\n"
    for entry in diffs:
        record = {
            "kind": "diff",
            "seq": entry["seq"],
            "watermark": entry["watermark"],
            "epoch": entry["epoch"],
            "diff": entry["diff"],
        }
        yield json.dumps(record).encode("utf-8") + b"\n"


def diffs_from_ndjson(lines: Iterable[Union[str, bytes]]) -> Dict[str, object]:
    """Reassemble the payload :func:`subscription_ndjson_lines` produced.

    Raises :class:`SpecValidationError` on a malformed or truncated
    stream (wrong first line, diff-count mismatch, non-contiguous
    seqs), so a connection that died mid-stream can never pass off a
    partial diff suffix as complete -- the client reconnects and
    resumes from its last *acked* seq instead.
    """
    envelope: Optional[Dict[str, object]] = None
    diffs: List[Dict[str, object]] = []
    for raw in lines:
        text = raw.decode("utf-8") if isinstance(raw, bytes) else raw
        if not text.strip():
            continue
        try:
            record = json.loads(text)
        except ValueError as exc:
            raise SpecValidationError(f"malformed NDJSON line: {exc}") from exc
        kind = record.get("kind") if isinstance(record, dict) else None
        if envelope is None:
            if kind != "diffs":
                raise SpecValidationError(
                    f"NDJSON stream must start with the diffs envelope, got {kind!r}"
                )
            envelope = {
                key: value
                for key, value in record.items()
                if key not in ("kind", "n_diffs")
            }
            envelope["_expected_diffs"] = int(record.get("n_diffs", 0))
        elif kind == "diff":
            diffs.append(
                {
                    "seq": int(record["seq"]),
                    "watermark": int(record["watermark"]),
                    "epoch": int(record["epoch"]),
                    "diff": record.get("diff"),
                }
            )
        else:
            raise SpecValidationError(f"unexpected NDJSON record kind {kind!r}")
    if envelope is None:
        raise SpecValidationError("empty NDJSON stream")
    expected = envelope.pop("_expected_diffs")
    if len(diffs) != expected:
        raise SpecValidationError(
            f"truncated NDJSON stream: expected {expected} diffs, got {len(diffs)}"
        )
    start = int(envelope.get("from_seq", 1))
    for offset, entry in enumerate(diffs):
        if entry["seq"] != start + offset:
            raise SpecValidationError(
                f"non-contiguous diff stream: expected seq {start + offset}, "
                f"got {entry['seq']}"
            )
    envelope["diffs"] = diffs
    return envelope


def health(server) -> Dict[str, object]:
    """Aggregate liveness payload (the ``/healthz`` body).

    Sums the per-shard serving counters and surfaces the snapshot,
    warm/cold start and delta+main merge bookkeeping, so one probe
    answers "is it up, what is it serving, did it warm-start the way we
    expect, and is the merge path keeping up".  Every per-shard value is
    taken from one consistent :meth:`~repro.serving.shards.CorpusShard.stats`
    snapshot, so a probe racing a merge never reports torn values.
    """
    per_corpus = server.stats()
    start_modes = [str(stats.get("start_mode", "cold")) for stats in per_corpus.values()]
    return {
        "status": "ok",
        "corpora": sorted(per_corpus),
        "inserts_served": sum(int(s.get("inserts_served", 0)) for s in per_corpus.values()),
        "solves_served": sum(int(s.get("solves_served", 0)) for s in per_corpus.values()),
        "snapshots_written": sum(
            int(s.get("snapshots_written", 0)) for s in per_corpus.values()
        ),
        "warm_starts": sum(1 for mode in start_modes if mode.startswith("warm")),
        "cold_starts": sum(1 for mode in start_modes if mode == "cold"),
        "tail_replays": sum(1 for mode in start_modes if mode == "warm-replay"),
        "delta_size": sum(int(s.get("delta_size", 0)) for s in per_corpus.values()),
        "merge_count": sum(int(s.get("merge_count", 0)) for s in per_corpus.values()),
        "merge_failures": sum(
            int(s.get("merge_failures", 0)) for s in per_corpus.values()
        ),
        "max_merge_lag_s": max(
            (float(s.get("merge_lag_s", 0.0)) for s in per_corpus.values()),
            default=0.0,
        ),
        "pinned_solves": sum(int(s.get("pinned_solves", 0)) for s in per_corpus.values()),
        "pinned_epochs": sum(
            len(s.get("pinned_epochs", {}) or {}) for s in per_corpus.values()
        ),
    }
