"""Declarative, JSON-serialisable TagDM problem specs.

A :class:`ProblemSpec` is the wire form of one solve request: the full
Definition 4 problem (constraints, objectives, support, k-range) plus
the algorithm to run and its constructor options.  It is what travels
process-to-process -- ``ProblemSpec.from_problem(p).to_dict()`` on one
side, ``ProblemSpec.from_dict(payload).to_problem()`` on the other --
and what the validator checks against the string-keyed algorithm and
capability registries before any solve starts.

Validation is split by error class so transports can answer precisely:

* malformed payloads, unknown algorithms and unaccepted options raise
  :class:`~repro.api.errors.SpecValidationError` (HTTP 422);
* a well-formed spec asking an algorithm for a problem class it cannot
  solve raises :class:`~repro.api.errors.CapabilityMismatchError`
  (HTTP 409).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.api.errors import CapabilityMismatchError, SpecValidationError
from repro.core.exceptions import InvalidProblemError
from repro.core.measures import Criterion
from repro.core.problem import TagDMProblem

__all__ = ["ProblemSpec"]

#: Option values must be JSON scalars; nested containers have no
#: algorithm-constructor use and complicate transport equality.
_SCALAR_TYPES = (bool, int, float, str, type(None))


def _auto_algorithm(problem: TagDMProblem) -> str:
    """The ``algorithm="auto"`` resolution rule of the wire API.

    Matches the family split of Table 2 (and
    :func:`repro.algorithms.recommend_algorithm`): *any* diversity
    objective routes to the FDP family, otherwise the LSH family.  For
    every Table-1 instance (objectives on tags) this is identical to
    :meth:`TagDM.solve`'s rule; for problems whose diversity objective
    sits on a non-tag dimension it picks the solver whose capability
    row actually admits the problem, so an ``"auto"`` spec never fails
    its own capability check.  All client backends resolve the name
    here and pass it through explicitly, so they stay bit-identical to
    each other.
    """
    family_is_fdp = problem.maximises_tag_diversity or any(
        objective.criterion is Criterion.DIVERSITY for objective in problem.objectives
    )
    return "dv-fdp-fo" if family_is_fdp else "sm-lsh-fo"


@dataclass(frozen=True)
class ProblemSpec:
    """One solve request in wire form.

    Attributes
    ----------
    problem:
        The JSON payload of the :class:`TagDMProblem`
        (:meth:`TagDMProblem.to_dict` shape).
    algorithm:
        Registry name (``"exact"``, ``"sm-lsh-fo"``, ...) or ``"auto"``.
    options:
        Keyword options for the algorithm constructor (``n_bits``,
        ``n_tables``, ...).  ``seed`` is rejected: determinism across
        process boundaries requires the serving session's seed, which
        the session supplies itself.
    """

    problem: Mapping[str, object]
    algorithm: str = "auto"
    options: Mapping[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_problem(
        cls,
        problem: TagDMProblem,
        algorithm: str = "auto",
        **options: object,
    ) -> "ProblemSpec":
        """Build a spec from an in-memory problem object."""
        return cls(problem=problem.to_dict(), algorithm=algorithm, options=dict(options))

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ProblemSpec":
        """Decode a wire payload (``{"problem": ..., "algorithm": ..., "options": ...}``).

        Shape errors raise :class:`SpecValidationError`; the problem
        payload itself is validated lazily by :meth:`to_problem` /
        :meth:`validate` so callers get one error class per failure
        site.
        """
        if not isinstance(payload, Mapping):
            raise SpecValidationError(
                f"spec payload must be a JSON object, got {type(payload).__name__}"
            )
        problem = payload.get("problem")
        if not isinstance(problem, Mapping):
            raise SpecValidationError("spec payload needs a 'problem' object")
        algorithm = payload.get("algorithm", "auto")
        if not isinstance(algorithm, str) or not algorithm:
            raise SpecValidationError(
                f"spec 'algorithm' must be a non-empty string, got {algorithm!r}"
            )
        options = payload.get("options", {})
        if not isinstance(options, Mapping):
            raise SpecValidationError(
                f"spec 'options' must be a JSON object, got {type(options).__name__}"
            )
        return cls(problem=dict(problem), algorithm=algorithm, options=dict(options))

    # ------------------------------------------------------------------
    # Serde
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """The JSON wire form (inverse of :meth:`from_dict`)."""
        return {
            "problem": dict(self.problem),
            "algorithm": self.algorithm,
            "options": dict(self.options),
        }

    def to_problem(self) -> TagDMProblem:
        """Materialise the problem object, mapping decode failures to 422."""
        try:
            return TagDMProblem.from_dict(self.problem)
        except InvalidProblemError as exc:
            raise SpecValidationError(f"invalid problem spec: {exc}") from exc

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def resolved_algorithm(self, problem: Optional[TagDMProblem] = None) -> str:
        """The concrete solver name after ``"auto"`` resolution."""
        name = self.algorithm.lower()
        if name != "auto":
            return name
        return _auto_algorithm(problem if problem is not None else self.to_problem())

    def validate(self) -> Tuple[TagDMProblem, str]:
        """Check the spec against the algorithm and capability registries.

        Returns ``(problem, resolved_algorithm_name)`` on success.
        Raises :class:`SpecValidationError` for malformed problems,
        unknown algorithm names and unaccepted or non-scalar options,
        and :class:`CapabilityMismatchError` when the (resolved)
        algorithm cannot solve this problem class.
        """
        from repro.algorithms import algorithm_options, check_algorithm_capability

        problem = self.to_problem()
        name = self.resolved_algorithm(problem)
        try:
            accepted = algorithm_options(name)
        except KeyError as exc:
            raise SpecValidationError(str(exc.args[0] if exc.args else exc)) from exc
        if "seed" in self.options:
            raise SpecValidationError(
                "spec options may not set 'seed'; the serving session's seed "
                "is authoritative (it is what makes remote and in-process "
                "solves bit-identical)"
            )
        unaccepted = sorted(set(self.options) - set(accepted))
        if unaccepted:
            raise SpecValidationError(
                f"algorithm {name!r} does not accept option(s) "
                f"{', '.join(unaccepted)}; accepted: {', '.join(accepted)}"
            )
        for key, value in self.options.items():
            if not isinstance(value, _SCALAR_TYPES):
                raise SpecValidationError(
                    f"option {key!r} must be a JSON scalar, got {type(value).__name__}"
                )
        reason = check_algorithm_capability(problem, name)
        if reason is not None:
            raise CapabilityMismatchError(
                reason,
                details={"algorithm": name, "problem": problem.name},
            )
        return problem, name
