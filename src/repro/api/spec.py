"""Declarative, JSON-serialisable TagDM problem specs.

A :class:`ProblemSpec` is the wire form of one solve request: the full
Definition 4 problem (constraints, objectives, support, k-range) plus
the algorithm to run and its constructor options.  It is what travels
process-to-process -- ``ProblemSpec.from_problem(p).to_dict()`` on one
side, ``ProblemSpec.from_dict(payload).to_problem()`` on the other --
and what the validator checks against the string-keyed algorithm and
capability registries before any solve starts.

Validation is split by error class so transports can answer precisely:

* malformed payloads, unknown algorithms and unaccepted options raise
  :class:`~repro.api.errors.SpecValidationError` (HTTP 422);
* a well-formed spec asking an algorithm for a problem class it cannot
  solve raises :class:`~repro.api.errors.CapabilityMismatchError`
  (HTTP 409).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.api.errors import CapabilityMismatchError, SpecValidationError
from repro.core.exceptions import InvalidProblemError
from repro.core.measures import Criterion
from repro.core.problem import TagDMProblem
from repro.core.result import MiningResult

__all__ = [
    "ProblemSpec",
    "PageSpec",
    "ResultPage",
    "merge_result_pages",
    "DEFAULT_PAGE_SIZE",
]

#: Page size used when a request sends ``page`` without ``page_size``.
DEFAULT_PAGE_SIZE = 50

#: Option values must be JSON scalars; nested containers have no
#: algorithm-constructor use and complicate transport equality.
_SCALAR_TYPES = (bool, int, float, str, type(None))


def _auto_algorithm(problem: TagDMProblem) -> str:
    """The ``algorithm="auto"`` resolution rule of the wire API.

    Matches the family split of Table 2 (and
    :func:`repro.algorithms.recommend_algorithm`): *any* diversity
    objective routes to the FDP family, otherwise the LSH family.  For
    every Table-1 instance (objectives on tags) this is identical to
    :meth:`TagDM.solve`'s rule; for problems whose diversity objective
    sits on a non-tag dimension it picks the solver whose capability
    row actually admits the problem, so an ``"auto"`` spec never fails
    its own capability check.  All client backends resolve the name
    here and pass it through explicitly, so they stay bit-identical to
    each other.
    """
    family_is_fdp = problem.maximises_tag_diversity or any(
        objective.criterion is Criterion.DIVERSITY for objective in problem.objectives
    )
    return "dv-fdp-fo" if family_is_fdp else "sm-lsh-fo"


@dataclass(frozen=True)
class ProblemSpec:
    """One solve request in wire form.

    Immutable (frozen dataclass), hence freely shareable across
    threads; :meth:`validate` only reads registries and blocks for no
    I/O.

    Attributes
    ----------
    problem:
        The JSON payload of the :class:`TagDMProblem`
        (:meth:`TagDMProblem.to_dict` shape).
    algorithm:
        Registry name (``"exact"``, ``"sm-lsh-fo"``, ...) or ``"auto"``.
    options:
        Keyword options for the algorithm constructor (``n_bits``,
        ``n_tables``, ...).  ``seed`` is rejected: determinism across
        process boundaries requires the serving session's seed, which
        the session supplies itself.
    """

    problem: Mapping[str, object]
    algorithm: str = "auto"
    options: Mapping[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_problem(
        cls,
        problem: TagDMProblem,
        algorithm: str = "auto",
        **options: object,
    ) -> "ProblemSpec":
        """Build a spec from an in-memory problem object."""
        return cls(problem=problem.to_dict(), algorithm=algorithm, options=dict(options))

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ProblemSpec":
        """Decode a wire payload (``{"problem": ..., "algorithm": ..., "options": ...}``).

        Shape errors raise :class:`SpecValidationError`; the problem
        payload itself is validated lazily by :meth:`to_problem` /
        :meth:`validate` so callers get one error class per failure
        site.
        """
        if not isinstance(payload, Mapping):
            raise SpecValidationError(
                f"spec payload must be a JSON object, got {type(payload).__name__}"
            )
        problem = payload.get("problem")
        if not isinstance(problem, Mapping):
            raise SpecValidationError("spec payload needs a 'problem' object")
        algorithm = payload.get("algorithm", "auto")
        if not isinstance(algorithm, str) or not algorithm:
            raise SpecValidationError(
                f"spec 'algorithm' must be a non-empty string, got {algorithm!r}"
            )
        options = payload.get("options", {})
        if not isinstance(options, Mapping):
            raise SpecValidationError(
                f"spec 'options' must be a JSON object, got {type(options).__name__}"
            )
        return cls(problem=dict(problem), algorithm=algorithm, options=dict(options))

    # ------------------------------------------------------------------
    # Serde
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """The JSON wire form (inverse of :meth:`from_dict`)."""
        return {
            "problem": dict(self.problem),
            "algorithm": self.algorithm,
            "options": dict(self.options),
        }

    def to_problem(self) -> TagDMProblem:
        """Materialise the problem object, mapping decode failures to 422."""
        try:
            return TagDMProblem.from_dict(self.problem)
        except InvalidProblemError as exc:
            raise SpecValidationError(f"invalid problem spec: {exc}") from exc

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def resolved_algorithm(self, problem: Optional[TagDMProblem] = None) -> str:
        """The concrete solver name after ``"auto"`` resolution."""
        name = self.algorithm.lower()
        if name != "auto":
            return name
        return _auto_algorithm(problem if problem is not None else self.to_problem())

    def validate(self) -> Tuple[TagDMProblem, str]:
        """Check the spec against the algorithm and capability registries.

        Returns ``(problem, resolved_algorithm_name)`` on success.
        Raises :class:`SpecValidationError` for malformed problems,
        unknown algorithm names and unaccepted or non-scalar options,
        and :class:`CapabilityMismatchError` when the (resolved)
        algorithm cannot solve this problem class.
        """
        from repro.algorithms import algorithm_options, check_algorithm_capability

        problem = self.to_problem()
        name = self.resolved_algorithm(problem)
        try:
            accepted = algorithm_options(name)
        except KeyError as exc:
            raise SpecValidationError(str(exc.args[0] if exc.args else exc)) from exc
        if "seed" in self.options:
            raise SpecValidationError(
                "spec options may not set 'seed'; the serving session's seed "
                "is authoritative (it is what makes remote and in-process "
                "solves bit-identical)"
            )
        unaccepted = sorted(set(self.options) - set(accepted))
        if unaccepted:
            raise SpecValidationError(
                f"algorithm {name!r} does not accept option(s) "
                f"{', '.join(unaccepted)}; accepted: {', '.join(accepted)}"
            )
        for key, value in self.options.items():
            if not isinstance(value, _SCALAR_TYPES):
                raise SpecValidationError(
                    f"option {key!r} must be a JSON scalar, got {type(value).__name__}"
                )
        reason = check_algorithm_capability(problem, name)
        if reason is not None:
            raise CapabilityMismatchError(
                reason,
                details={"algorithm": name, "problem": problem.name},
            )
        return problem, name


@dataclass(frozen=True)
class PageSpec:
    """One page window over a solve result's group list.

    The wire form of the ``?page=``/``?page_size=`` query parameters on
    a solve request: pages are 1-based windows of ``page_size`` groups
    in result order.  A page past the end is *not* an error -- it comes
    back empty with ``has_more=False`` -- so clients can walk pages
    without first asking for the total.  Immutable and thread-safe.
    """

    page: int
    page_size: int

    def __post_init__(self) -> None:
        if isinstance(self.page, bool) or not isinstance(self.page, int) or self.page < 1:
            raise SpecValidationError(
                f"page must be an integer >= 1, got {self.page!r}"
            )
        if (
            isinstance(self.page_size, bool)
            or not isinstance(self.page_size, int)
            or self.page_size < 1
        ):
            raise SpecValidationError(
                f"page_size must be an integer >= 1, got {self.page_size!r}"
            )

    @classmethod
    def from_query(cls, query: Mapping[str, str]) -> Optional["PageSpec"]:
        """Decode the pagination query parameters, or ``None`` when absent.

        ``page`` without ``page_size`` defaults the size to
        :data:`DEFAULT_PAGE_SIZE`; ``page_size`` without ``page`` means
        page 1.  Non-integer values raise :class:`SpecValidationError`.
        """
        raw_page = query.get("page")
        raw_size = query.get("page_size")
        if raw_page is None and raw_size is None:
            return None

        def _as_int(label: str, raw: str) -> int:
            try:
                return int(raw)
            except (TypeError, ValueError):
                raise SpecValidationError(
                    f"{label} must be an integer, got {raw!r}"
                ) from None

        page = 1 if raw_page is None else _as_int("page", raw_page)
        size = DEFAULT_PAGE_SIZE if raw_size is None else _as_int("page_size", raw_size)
        return cls(page=page, page_size=size)

    def to_query(self) -> str:
        """The query-string form (inverse of :meth:`from_query`)."""
        return f"page={self.page}&page_size={self.page_size}"

    def paginate(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Window a full result payload down to this page.

        Returns a new payload whose ``groups`` list holds only this
        page's window, plus a ``pagination`` envelope
        (``page``/``page_size``/``total_groups``/``total_pages``/
        ``has_more``).  The input payload is not mutated.
        """
        groups = payload.get("groups", [])
        if not isinstance(groups, list):
            raise SpecValidationError("result payload has no 'groups' list to page")
        total = len(groups)
        total_pages = max(1, math.ceil(total / self.page_size))
        start = (self.page - 1) * self.page_size
        window = groups[start : start + self.page_size]
        paged = dict(payload)
        paged["groups"] = window
        paged["pagination"] = {
            "page": self.page,
            "page_size": self.page_size,
            "total_groups": total,
            "total_pages": total_pages,
            "has_more": start + len(window) < total,
        }
        return paged


@dataclass(frozen=True)
class ResultPage:
    """One decoded page of a paginated solve response.

    ``result`` is a :class:`~repro.core.result.MiningResult` whose
    ``groups`` hold only this page's window; the remaining fields echo
    the server's pagination envelope.  Immutable and thread-safe.
    """

    result: MiningResult
    page: int
    page_size: int
    total_groups: int
    total_pages: int
    has_more: bool

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "ResultPage":
        """Decode a paged wire payload (``pagination`` envelope required)."""
        envelope = payload.get("pagination")
        if not isinstance(envelope, Mapping):
            raise SpecValidationError(
                "paged solve response is missing its 'pagination' envelope"
            )
        return cls(
            result=MiningResult.from_dict(payload),
            page=int(envelope["page"]),
            page_size=int(envelope["page_size"]),
            total_groups=int(envelope["total_groups"]),
            total_pages=int(envelope["total_pages"]),
            has_more=bool(envelope["has_more"]),
        )


def merge_result_pages(pages: List["ResultPage"]) -> MiningResult:
    """Reassemble consecutive pages into one full result.

    Pages must be in order, share one solve, and cover every group
    (page 1 .. total_pages); anything else raises
    :class:`SpecValidationError`.  The merged result is bit-identical to
    the unpaginated solve -- that is the pagination round-trip contract
    the tier-1 tests assert.
    """
    if not pages:
        raise SpecValidationError("cannot merge zero result pages")
    expected_total = pages[0].total_groups
    first = pages[0].result
    groups: List[object] = []
    for position, entry in enumerate(pages, start=1):
        if entry.page != position:
            raise SpecValidationError(
                f"result pages out of order: expected page {position}, "
                f"got {entry.page}"
            )
        # Wire clients re-solve per page fetch, so an insert landing
        # between fetches would hand us windows of two different solves.
        # The solve envelope rides on every page; any drift in it means
        # the pages are not windows of one result.
        if (
            entry.total_groups != expected_total
            or entry.result.objective_value != first.objective_value
            or entry.result.algorithm != first.algorithm
            or entry.result.support != first.support
            or entry.result.constraint_scores != first.constraint_scores
        ):
            raise SpecValidationError(
                f"page {entry.page} belongs to a different solve than page 1 "
                "(envelope drift: the corpus changed between page fetches); "
                "re-fetch the pages or use solve_stream for one-shot results"
            )
        groups.extend(entry.result.groups)
    if len(groups) != expected_total:
        raise SpecValidationError(
            f"merged pages cover {len(groups)} groups, server reported "
            f"{expected_total}"
        )
    last = pages[-1].result
    return MiningResult(
        problem=last.problem,
        algorithm=last.algorithm,
        groups=tuple(groups),
        objective_value=last.objective_value,
        constraint_scores=dict(last.constraint_scores),
        support=last.support,
        feasible=last.feasible,
        elapsed_seconds=last.elapsed_seconds,
        evaluations=last.evaluations,
        metadata=dict(last.metadata),
    )
