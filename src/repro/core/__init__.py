"""TagDM core: the paper's primary contribution.

This package formalises the Tagging Behavior Dual Mining framework of
Das et al. (PVLDB 2012): describable tagging-action groups, dual mining
functions over the user/item/tag dimensions, problem specifications
(constraints + optimisation goals), group tag signatures, the
NP-completeness reduction, and the :class:`~repro.core.framework.TagDM`
session that ties everything to the mining algorithms.
"""

from repro.core.exceptions import (
    InvalidProblemError,
    NotFittedError,
    NullResultError,
    ReproError,
)
from repro.core.measures import (
    Criterion,
    Dimension,
    DualMiningFunction,
    PairwiseAggregationFunction,
)
from repro.core.groups import (
    GroupDescription,
    TaggingActionGroup,
    build_group,
    group_support,
)
from repro.core.enumeration import (
    GroupEnumerationConfig,
    enumerate_full_conjunction_groups,
    enumerate_groups,
    enumerate_partial_conjunction_groups,
)
from repro.core.functions import (
    FunctionSuite,
    default_function_suite,
    jaccard_items_similarity,
    structural_similarity,
    tag_signature_pairwise,
    value_similarity,
)
from repro.core.signatures import AttributeVectorizer, GroupSignatureBuilder, signature_matrix
from repro.core.problem import (
    Constraint,
    Objective,
    TABLE1_PROBLEMS,
    TABLE1_SPECS,
    TagDMProblem,
    enumerate_problem_instances,
    table1_problem,
)
from repro.core.result import MiningResult
from repro.core.complexity import (
    CbsInstance,
    TagDMReduction,
    decide_reduced_tagdm,
    has_complete_bipartite_subgraph,
    random_bipartite_instance,
    reduce_cbs_to_tagdm,
)
from repro.core.framework import TagDM
from repro.core.incremental import IncrementalTagDM, IncrementalUpdateReport
from repro.core.persistence import load_session, save_session

__all__ = [
    "IncrementalTagDM",
    "IncrementalUpdateReport",
    "ReproError",
    "NotFittedError",
    "InvalidProblemError",
    "NullResultError",
    "Criterion",
    "Dimension",
    "DualMiningFunction",
    "PairwiseAggregationFunction",
    "GroupDescription",
    "TaggingActionGroup",
    "build_group",
    "group_support",
    "GroupEnumerationConfig",
    "enumerate_groups",
    "enumerate_full_conjunction_groups",
    "enumerate_partial_conjunction_groups",
    "FunctionSuite",
    "default_function_suite",
    "structural_similarity",
    "jaccard_items_similarity",
    "tag_signature_pairwise",
    "value_similarity",
    "GroupSignatureBuilder",
    "AttributeVectorizer",
    "signature_matrix",
    "Constraint",
    "Objective",
    "TagDMProblem",
    "TABLE1_PROBLEMS",
    "TABLE1_SPECS",
    "table1_problem",
    "enumerate_problem_instances",
    "MiningResult",
    "CbsInstance",
    "TagDMReduction",
    "reduce_cbs_to_tagdm",
    "has_complete_bipartite_subgraph",
    "decide_reduced_tagdm",
    "random_bipartite_instance",
    "TagDM",
    "save_session",
    "load_session",
]
