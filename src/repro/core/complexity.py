"""NP-completeness machinery: the CBS -> TagDM reduction of Section 3.

Theorem 1 of the paper proves the decision version of TagDM NP-Complete
by reduction from the Complete Bipartite Subgraph problem (CBS): given a
bipartite graph ``G' = (V1, V2, E)`` and sizes ``n1 <= |V1|``,
``n2 <= |V2|``, do there exist subsets of sizes ``n1`` and ``n2`` whose
induced subgraph is complete bipartite?

The construction: one user per ``V1`` vertex, one user attribute per
``V2`` vertex; attribute ``a_j`` of user ``u_i`` is ``1`` when the edge
``{v_i, v_j}`` exists and a globally unique filler value otherwise.  A
single item and a single tag make the item/tag dimensions trivial.  CBS
has a solution iff there are ``n1`` users sharing identical values on at
least ``n2`` attributes, i.e. iff the constructed TagDM instance has a
feasible set with user-similarity (shared-attribute count) at least
``n2 * C(n1, 2)``.

This module implements the construction plus brute-force deciders for
both sides, so tests can verify the "if and only if" on small instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.dataset.store import TaggingDataset

__all__ = [
    "CbsInstance",
    "TagDMReduction",
    "reduce_cbs_to_tagdm",
    "has_complete_bipartite_subgraph",
    "decide_reduced_tagdm",
    "pairwise_shared_attribute_count",
    "random_bipartite_instance",
]


@dataclass(frozen=True)
class CbsInstance:
    """A Complete Bipartite Subgraph decision instance."""

    graph: nx.Graph
    left: Tuple[str, ...]
    right: Tuple[str, ...]
    n1: int
    n2: int

    def __post_init__(self) -> None:
        if self.n1 < 1 or self.n1 > len(self.left):
            raise ValueError("n1 must satisfy 1 <= n1 <= |V1|")
        if self.n2 < 1 or self.n2 > len(self.right):
            raise ValueError("n2 must satisfy 1 <= n2 <= |V2|")


@dataclass
class TagDMReduction:
    """The TagDM instance produced by the reduction, plus its parameters.

    ``similarity_threshold`` is the value ``n2 * C(n1, 2)`` that the
    (un-normalised, shared-attribute-count) user similarity of the
    returned group set must reach.
    """

    dataset: TaggingDataset
    user_ids: Tuple[str, ...]
    attribute_names: Tuple[str, ...]
    k: int
    min_support: int
    similarity_threshold: int
    source: CbsInstance


def has_complete_bipartite_subgraph(instance: CbsInstance) -> bool:
    """Brute-force CBS decision (exponential; only for small instances)."""
    graph = instance.graph
    for left_subset in combinations(instance.left, instance.n1):
        # Candidate right vertices: adjacent to every chosen left vertex.
        candidates = [
            right
            for right in instance.right
            if all(graph.has_edge(left, right) for left in left_subset)
        ]
        if len(candidates) >= instance.n2:
            return True
    return False


def reduce_cbs_to_tagdm(instance: CbsInstance) -> TagDMReduction:
    """Construct the TagDM instance of Theorem 1 from a CBS instance."""
    attribute_names = tuple(f"a_{right}" for right in instance.right)
    dataset = TaggingDataset(
        user_schema=attribute_names, item_schema=("kind",), name="cbs-reduction"
    )
    dataset.register_item("item-0", {"kind": "only"})

    # Filler values must be globally unique so two users can only agree on
    # an attribute when both sides carry the edge-indicator value "1".
    next_filler = 2
    user_ids: List[str] = []
    for left in instance.left:
        attributes: Dict[str, str] = {}
        for right, attribute in zip(instance.right, attribute_names):
            if instance.graph.has_edge(left, right):
                attributes[attribute] = "1"
            else:
                attributes[attribute] = str(next_filler)
                next_filler += 1
        user_id = f"user-{left}"
        dataset.register_user(user_id, attributes)
        dataset.add_action(user_id, "item-0", ["t"])
        user_ids.append(user_id)

    pair_count = instance.n1 * (instance.n1 - 1) // 2
    return TagDMReduction(
        dataset=dataset,
        user_ids=tuple(user_ids),
        attribute_names=attribute_names,
        k=instance.n1,
        min_support=instance.n1,
        similarity_threshold=instance.n2 * pair_count,
        source=instance,
    )


def pairwise_shared_attribute_count(
    attrs_a: Dict[str, str], attrs_b: Dict[str, str]
) -> int:
    """Number of attributes on which two users carry identical values.

    This is the pairwise comparison function the paper's proof sketch
    aggregates (summing to the ``n2 * C(n1, 2)`` threshold recorded in
    :attr:`TagDMReduction.similarity_threshold`).
    """
    return sum(1 for attribute, value in attrs_a.items() if attrs_b.get(attribute) == value)


def decide_reduced_tagdm(reduction: TagDMReduction) -> bool:
    """Decide the reduced TagDM instance by brute force.

    Each user contributes exactly one tagging action, so a candidate
    group set corresponds to a subset of ``n1`` users (taking each user's
    singleton group).  Feasibility is judged with the *set-level* user
    similarity function "number of attributes on which every selected
    user carries identical values" (a general dual mining function in the
    sense of Definition 2): the set is feasible iff that count reaches
    ``n2``.  Because filler values are globally unique, agreement across
    users can only happen on the edge-indicator value ``1``, so this is
    exactly the Complete Bipartite Subgraph question and the equivalence
    of Theorem 1 is exact.  (The paper's proof sketch states the
    threshold as the pairwise sum ``n2 * C(n1, 2)``; the pairwise-sum
    form is a necessary condition but can over-count when different
    pairs agree on different attributes, which is why the set-level
    function is used here.)
    """
    dataset = reduction.dataset
    users = reduction.user_ids
    n1 = reduction.source.n1
    n2 = reduction.source.n2

    # Attributes carrying the edge indicator per user; agreement between
    # distinct users is only possible on these.
    ones = {
        user: {
            attribute
            for attribute, value in dataset.user_attributes(user).items()
            if value == "1"
        }
        for user in users
    }
    for subset in combinations(users, n1):
        common = set.intersection(*(ones[user] for user in subset))
        if len(common) >= n2:
            return True
    return False


def random_bipartite_instance(
    n_left: int,
    n_right: int,
    edge_probability: float,
    n1: int,
    n2: int,
    seed: int = 0,
) -> CbsInstance:
    """Generate a random CBS instance (used by property tests)."""
    import numpy as np

    rng = np.random.default_rng(seed)
    graph = nx.Graph()
    left = tuple(f"l{i}" for i in range(n_left))
    right = tuple(f"r{j}" for j in range(n_right))
    graph.add_nodes_from(left, bipartite=0)
    graph.add_nodes_from(right, bipartite=1)
    for l_node in left:
        for r_node in right:
            if rng.random() < edge_probability:
                graph.add_edge(l_node, r_node)
    return CbsInstance(graph=graph, left=left, right=right, n1=n1, n2=n2)
