"""Enumerating candidate describable tagging-action groups.

Section 6 of the paper builds its candidate set by taking the cartesian
product of user attribute values with item attribute values and keeping
the groups that contain at least 5 tagging-action tuples (4,535 groups
out of 40+ billion possible combinations).  Enumerating the full
cartesian product explicitly is hopeless; instead we exploit the fact
that a *full-conjunction* group (one value for every user and item
attribute) is non-empty only if some tuple exhibits exactly that value
combination, so the non-empty groups can be read off the data in a
single pass.

Partial conjunctions (fewer predicates, e.g. ``{gender=male,
genre=action}``) are also supported, bounded by ``max_predicates``, for
query-scoped analyses and for the case studies.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import combinations
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.groups import GroupDescription, TaggingActionGroup
from repro.dataset.store import TaggingDataset

__all__ = [
    "enumerate_full_conjunction_groups",
    "enumerate_partial_conjunction_groups",
    "enumerate_cross_groups",
    "GroupEnumerationConfig",
    "enumerate_groups",
]

from dataclasses import dataclass


@dataclass
class GroupEnumerationConfig:
    """Configuration of candidate-group enumeration.

    Parameters
    ----------
    min_support:
        Keep only groups containing at least this many tuples (the paper
        uses 5).
    columns:
        Prefixed attribute columns to describe groups with; ``None``
        means every column of the dataset.
    mode:
        ``"full"`` enumerates full conjunctions over ``columns`` (the
        paper's cartesian-product construction, restricted to non-empty
        combinations); ``"partial"`` enumerates all conjunctions using
        between 1 and ``max_predicates`` of the columns; ``"cross"``
        enumerates conjunctions of exactly one user attribute and one
        item attribute (the ``{gender=male, genre=action}`` style groups
        the paper's examples use).
    max_predicates:
        Upper bound on predicate count in ``"partial"`` mode.
    max_groups:
        Optional cap on the number of returned groups (largest support
        first); keeps Exact-baseline experiments tractable.
    """

    min_support: int = 5
    columns: Optional[Sequence[str]] = None
    mode: str = "partial"
    max_predicates: int = 2
    max_groups: Optional[int] = None

    def __post_init__(self) -> None:
        if self.min_support < 1:
            raise ValueError("min_support must be at least 1")
        if self.mode not in ("full", "partial", "cross"):
            raise ValueError("mode must be 'full', 'partial' or 'cross'")
        if self.max_predicates < 1:
            raise ValueError("max_predicates must be at least 1")
        if self.max_groups is not None and self.max_groups < 1:
            raise ValueError("max_groups must be positive when given")


def _materialise(
    dataset: TaggingDataset,
    rows_by_description: Dict[Tuple[Tuple[str, str], ...], List[int]],
    min_support: int,
) -> List[TaggingActionGroup]:
    groups: List[TaggingActionGroup] = []
    for predicates, rows in rows_by_description.items():
        if len(rows) < min_support:
            continue
        description = GroupDescription(predicates=predicates)
        index_tuple = tuple(rows)
        groups.append(
            TaggingActionGroup(
                description=description,
                tuple_indices=index_tuple,
                user_ids=frozenset(dataset.users_for_indices(index_tuple)),
                item_ids=frozenset(dataset.items_for_indices(index_tuple)),
                tags=tuple(dataset.tags_for_indices(index_tuple)),
            )
        )
    groups.sort(key=lambda group: (-group.support, str(group.description)))
    return groups


def enumerate_full_conjunction_groups(
    dataset: TaggingDataset,
    min_support: int = 5,
    columns: Optional[Sequence[str]] = None,
) -> List[TaggingActionGroup]:
    """Enumerate non-empty full-conjunction groups over ``columns``.

    Every tuple contributes to exactly one full-conjunction description,
    so the resulting groups are pairwise disjoint -- a property the Exact
    baseline exploits when computing group support of candidate sets.
    """
    selected_columns = tuple(columns) if columns is not None else dataset.columns
    if not selected_columns:
        raise ValueError("at least one column is required to describe groups")
    column_values = {
        column: dataset.column_values(column) for column in selected_columns
    }
    rows_by_description: Dict[Tuple[Tuple[str, str], ...], List[int]] = defaultdict(list)
    for row in range(dataset.n_actions):
        description = tuple(
            sorted((column, column_values[column][row]) for column in selected_columns)
        )
        rows_by_description[description].append(row)
    return _materialise(dataset, rows_by_description, min_support)


def enumerate_partial_conjunction_groups(
    dataset: TaggingDataset,
    min_support: int = 5,
    columns: Optional[Sequence[str]] = None,
    max_predicates: int = 2,
) -> List[TaggingActionGroup]:
    """Enumerate groups described by 1..``max_predicates`` predicates.

    Unlike full conjunctions these groups can overlap; group support of a
    set must therefore be computed over the union of tuple indices (which
    :func:`repro.core.groups.group_support` does).
    """
    selected_columns = tuple(columns) if columns is not None else dataset.columns
    if not selected_columns:
        raise ValueError("at least one column is required to describe groups")
    column_values = {
        column: dataset.column_values(column) for column in selected_columns
    }
    rows_by_description: Dict[Tuple[Tuple[str, str], ...], List[int]] = defaultdict(list)
    max_predicates = min(max_predicates, len(selected_columns))
    for row in range(dataset.n_actions):
        row_values = [(column, column_values[column][row]) for column in selected_columns]
        for size in range(1, max_predicates + 1):
            for subset in combinations(row_values, size):
                rows_by_description[tuple(sorted(subset))].append(row)
    return _materialise(dataset, rows_by_description, min_support)


def enumerate_cross_groups(
    dataset: TaggingDataset,
    min_support: int = 5,
    columns: Optional[Sequence[str]] = None,
) -> List[TaggingActionGroup]:
    """Enumerate groups with exactly one user and one item predicate.

    This is the user x item cartesian-product flavour the paper's worked
    examples use (``{gender=male, genre=action}``); high-cardinality
    attribute pairs that never co-occur in ``min_support`` tuples are
    pruned automatically because enumeration is data-driven.
    """
    selected_columns = tuple(columns) if columns is not None else dataset.columns
    user_columns = [c for c in selected_columns if c.startswith("user.")]
    item_columns = [c for c in selected_columns if c.startswith("item.")]
    if not user_columns or not item_columns:
        raise ValueError("cross enumeration needs both user and item columns")
    column_values = {
        column: dataset.column_values(column)
        for column in user_columns + item_columns
    }
    rows_by_description: Dict[Tuple[Tuple[str, str], ...], List[int]] = defaultdict(list)
    for row in range(dataset.n_actions):
        for user_column in user_columns:
            user_pred = (user_column, column_values[user_column][row])
            for item_column in item_columns:
                item_pred = (item_column, column_values[item_column][row])
                rows_by_description[tuple(sorted((user_pred, item_pred)))].append(row)
    return _materialise(dataset, rows_by_description, min_support)


def enumerate_groups(
    dataset: TaggingDataset,
    config: Optional[GroupEnumerationConfig] = None,
) -> List[TaggingActionGroup]:
    """Enumerate candidate groups according to ``config``."""
    config = config or GroupEnumerationConfig()
    if config.mode == "full":
        groups = enumerate_full_conjunction_groups(
            dataset, min_support=config.min_support, columns=config.columns
        )
    elif config.mode == "cross":
        groups = enumerate_cross_groups(
            dataset, min_support=config.min_support, columns=config.columns
        )
    else:
        groups = enumerate_partial_conjunction_groups(
            dataset,
            min_support=config.min_support,
            columns=config.columns,
            max_predicates=config.max_predicates,
        )
    if config.max_groups is not None:
        groups = groups[: config.max_groups]
    return groups
