"""Exception hierarchy of the TagDM reproduction library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "NotFittedError",
    "InvalidProblemError",
    "NullResultError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class NotFittedError(ReproError):
    """A component that requires fitting was used before being fitted."""


class InvalidProblemError(ReproError):
    """A TagDM problem specification is malformed or internally inconsistent."""


class NullResultError(ReproError):
    """An algorithm could not produce any feasible result set.

    The paper discusses this outcome explicitly for the filtering
    variants (SM-LSH-Fi / DV-FDP-Fi): post-processing buckets or greedy
    results for hard-constraint satisfiability may leave nothing.  The
    folding variants exist to make this less likely.
    """
