"""The TagDM session: dataset -> candidate groups -> signatures -> solve.

:class:`TagDM` is the top-level entry point of the library.  It wires the
substrates together exactly the way the paper's evaluation does
(Section 6):

1. enumerate candidate describable tagging-action groups over the
   dataset (cartesian product of attribute values, minimum support 5);
2. summarise each group's tags into a ``d``-dimensional signature via a
   topic model (LDA with ``d = 25`` in the paper);
3. hand the prepared groups to one of the mining algorithms (Exact,
   SM-LSH-Fi/Fo, DV-FDP-Fi/Fo) to solve a :class:`TagDMProblem`.

Example
-------
>>> from repro import TagDM, generate_movielens_style, table1_problem
>>> dataset = generate_movielens_style(n_actions=2000)
>>> session = TagDM(dataset, signature_backend="frequency").prepare()
>>> problem = table1_problem(1, k=3, min_support=len(dataset) // 100)
>>> result = session.solve(problem, algorithm="sm-lsh-fo")
>>> result.feasible, result.k  # doctest: +SKIP
(True, 3)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.enumeration import GroupEnumerationConfig, enumerate_groups
from repro.core.exceptions import NotFittedError
from repro.core.functions import FunctionSuite, default_function_suite
from repro.core.groups import TaggingActionGroup
from repro.core.problem import TagDMProblem
from repro.core.result import MiningResult
from repro.core.signatures import GroupSignatureBuilder
from repro.dataset.store import TaggingDataset

__all__ = ["TagDM"]


class TagDM:
    """A prepared TagDM analysis session over one dataset.

    Parameters
    ----------
    dataset:
        The tagging dataset to analyse.
    enumeration:
        Candidate-group enumeration configuration; defaults to full
        conjunctions over all attributes with minimum support 5 (the
        paper's construction).
    signature_builder:
        A pre-configured :class:`GroupSignatureBuilder`; if ``None`` one
        is created from ``signature_backend`` / ``signature_dimensions``.
    signature_backend:
        Topic-model backend for signatures when no builder is given:
        ``"frequency"`` (fast, default), ``"tfidf"`` or ``"lda"`` (the
        paper's evaluated configuration).
    signature_dimensions:
        Signature length ``d`` (paper: 25).
    function_suite:
        The per-dimension dual mining functions; defaults to structural
        user/item comparison and signature-cosine tag comparison.
    seed:
        Seed forwarded to stochastic components (LDA, LSH defaults).
    """

    def __init__(
        self,
        dataset: TaggingDataset,
        enumeration: Optional[GroupEnumerationConfig] = None,
        signature_builder: Optional[GroupSignatureBuilder] = None,
        signature_backend: str = "frequency",
        signature_dimensions: int = 25,
        function_suite: Optional[FunctionSuite] = None,
        seed: int = 0,
    ) -> None:
        self.dataset = dataset
        self.enumeration = enumeration or GroupEnumerationConfig()
        if signature_builder is not None:
            self.signature_builder = signature_builder
            # Best effort for externally built builders; sessions built from
            # the ``signature_backend`` string record it exactly (below),
            # which is what refresh/refit paths must use.
            backend = getattr(signature_builder.topic_model, "name", "frequency")
            self.signature_backend = backend
        else:
            self.signature_builder = GroupSignatureBuilder(
                backend=signature_backend,
                n_dimensions=signature_dimensions,
                seed=seed,
            )
            self.signature_backend = signature_backend
        self.functions = function_suite or default_function_suite()
        self.seed = seed
        self._groups: Optional[List[TaggingActionGroup]] = None
        self._signatures: Optional[np.ndarray] = None
        self._matrix_cache = None
        # Cached CosineLshIndex over the session signature matrix, keyed by
        # table count; each entry keeps the widest bit matrices built so
        # far (narrower widths derive from them by prefix truncation).
        self._lsh_cache: Dict[int, object] = {}

    # ------------------------------------------------------------------
    # Preparation
    # ------------------------------------------------------------------
    def prepare(self) -> "TagDM":
        """Enumerate candidate groups and compute their tag signatures."""
        groups = enumerate_groups(self.dataset, self.enumeration)
        if not groups:
            raise ValueError(
                "group enumeration produced no candidate groups; lower "
                "min_support or use partial-conjunction mode"
            )
        signatures = self.signature_builder.build(groups)
        self._groups = groups
        self._signatures = signatures
        self.invalidate_caches()
        return self

    def invalidate_caches(self) -> None:
        """Drop derived caches (pairwise matrices, LSH indexes).

        Called after anything that perturbs the signature matrix: a fresh
        :meth:`prepare`, incremental inserts, or a topic-model refresh.
        """
        self._matrix_cache = None
        self._lsh_cache = {}

    @property
    def is_prepared(self) -> bool:
        """Whether :meth:`prepare` has been run."""
        return self._groups is not None

    def _require_prepared(self) -> None:
        if not self.is_prepared:
            raise NotFittedError("call TagDM.prepare() before using the session")

    @property
    def groups(self) -> List[TaggingActionGroup]:
        """The candidate tagging-action groups (after :meth:`prepare`)."""
        self._require_prepared()
        assert self._groups is not None
        return self._groups

    @property
    def signatures(self) -> np.ndarray:
        """The ``(n_groups, d)`` signature matrix (after :meth:`prepare`).

        Rebuilt lazily from the per-group signature vectors when stale
        (incremental inserts update groups in place and null the cached
        matrix).
        """
        self._require_prepared()
        if self._signatures is None:
            from repro.core.signatures import signature_matrix  # lazy import

            self._signatures = signature_matrix(self._groups or [])
        return self._signatures

    @property
    def n_groups(self) -> int:
        """Number of candidate groups."""
        return len(self.groups)

    def default_support(self, fraction: float = 0.01) -> int:
        """The paper's support threshold: ``fraction`` of the input tuples."""
        return max(1, int(round(fraction * self.dataset.n_actions)))

    def matrix_cache(self):
        """The shared pairwise-matrix cache over the candidate groups.

        Built lazily on first use and reused by every subsequent
        :meth:`solve` call, so repeated runs (the benchmark harness, the
        experiment sweeps) pay for the pairwise matrices only once.
        """
        self._require_prepared()
        if self._matrix_cache is None:
            from repro.algorithms.scoring import PairwiseMatrixCache  # lazy import

            self._matrix_cache = PairwiseMatrixCache(self.groups, self.functions)
        return self._matrix_cache

    def signature_lsh(self, n_bits: int = 10, n_tables: int = 1):
        """A cached cosine-LSH index over the session signature matrix.

        The SM-LSH family hashes the group signatures with seed
        ``self.seed``; keeping the built index (and its sign-bit matrices)
        on the session means repeated solves -- and warm-started server
        processes restoring a snapshot -- skip the projection matmuls
        entirely.  One index per table count is kept at the widest bit
        width requested so far; narrower widths derive from it by prefix
        truncation (:meth:`~repro.index.lsh.CosineLshIndex.rebuild_with_bits`),
        which costs no re-projection.
        """
        self._require_prepared()
        from repro.index.lsh import CosineLshIndex  # lazy import

        cached = self._lsh_cache.get(n_tables)
        if cached is None or cached.n_bits < n_bits:
            cached = CosineLshIndex(
                n_dimensions=self.signatures.shape[1],
                n_bits=n_bits,
                n_tables=n_tables,
                seed=self.seed,
            ).build(self.signatures)
            self._lsh_cache[n_tables] = cached
        if cached.n_bits == n_bits:
            return cached
        return cached.rebuild_with_bits(n_bits)

    def _signature_lsh_provider(self, n_bits: int, n_tables: int, seed: int):
        """Serve a cached LSH index to solvers hashing the raw signatures.

        Returns ``None`` when the solver's seed differs from the session's
        (the hyperplane draws would not match).
        """
        if seed != self.seed:
            return None
        return self.signature_lsh(n_bits=n_bits, n_tables=n_tables)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(
        self,
        problem: TagDMProblem,
        algorithm: Union[str, object] = "auto",
        **algorithm_options,
    ) -> MiningResult:
        """Solve ``problem`` over the prepared groups.

        ``algorithm`` is either an algorithm instance, an algorithm name
        (``"exact"``, ``"sm-lsh"``, ``"sm-lsh-fi"``, ``"sm-lsh-fo"``,
        ``"dv-fdp"``, ``"dv-fdp-fi"``, ``"dv-fdp-fo"``), or ``"auto"``
        which picks the paper's recommended solver for the problem class:
        SM-LSH-Fo for tag-similarity maximisation and DV-FDP-Fo for
        tag-diversity maximisation.  Keyword options are forwarded to the
        algorithm constructor when a name is given.
        """
        self._require_prepared()
        from repro.algorithms import build_algorithm  # lazy: avoids a cycle

        if isinstance(algorithm, str):
            name = algorithm.lower()
            if name == "auto":
                name = "dv-fdp-fo" if problem.maximises_tag_diversity else "sm-lsh-fo"
            solver = build_algorithm(name, seed=self.seed, **algorithm_options)
        else:
            solver = algorithm
        return solver.solve(
            problem,
            self.groups,
            self.functions,
            cache=self.matrix_cache(),
            lsh_provider=self._signature_lsh_provider,
        )

    def solve_all(
        self,
        problems: Sequence[TagDMProblem],
        algorithm: Union[str, object] = "auto",
        **algorithm_options,
    ) -> Dict[str, MiningResult]:
        """Solve several problems and return results keyed by problem name."""
        return {
            problem.name: self.solve(problem, algorithm=algorithm, **algorithm_options)
            for problem in problems
        }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path) -> "TagDM":
        """Snapshot the prepared session to ``path``.

        Convenience wrapper over
        :func:`repro.core.persistence.save_session`; see that module for
        the snapshot format.  Returns ``self`` for chaining.
        """
        from repro.core.persistence import save_session  # lazy: avoids a cycle

        save_session(self, path)
        return self

    @classmethod
    def load(cls, path, dataset: TaggingDataset) -> "TagDM":
        """Warm-start a session from a snapshot written by :meth:`save`.

        ``dataset`` must be the corpus the snapshot was prepared over
        (typically reloaded from the SQLite store); a fingerprint check
        rejects mismatches.
        """
        from repro.core.persistence import load_session  # lazy: avoids a cycle

        return load_session(path, dataset)
