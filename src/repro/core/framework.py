"""The TagDM session: dataset -> candidate groups -> signatures -> solve.

:class:`TagDM` is the top-level entry point of the library.  It wires the
substrates together exactly the way the paper's evaluation does
(Section 6):

1. enumerate candidate describable tagging-action groups over the
   dataset (cartesian product of attribute values, minimum support 5);
2. summarise each group's tags into a ``d``-dimensional signature via a
   topic model (LDA with ``d = 25`` in the paper);
3. hand the prepared groups to one of the mining algorithms (Exact,
   SM-LSH-Fi/Fo, DV-FDP-Fi/Fo) to solve a :class:`TagDMProblem`.

Example
-------
>>> from repro import TagDM, generate_movielens_style, table1_problem
>>> dataset = generate_movielens_style(n_actions=2000)
>>> session = TagDM(dataset, signature_backend="frequency").prepare()
>>> problem = table1_problem(1, k=3, min_support=len(dataset) // 100)
>>> result = session.solve(problem, algorithm="sm-lsh-fo")
>>> result.feasible, result.k  # doctest: +SKIP
(True, 3)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.enumeration import GroupEnumerationConfig, enumerate_groups
from repro.core.exceptions import NotFittedError
from repro.core.functions import FunctionSuite, default_function_suite
from repro.core.groups import TaggingActionGroup
from repro.core.problem import TagDMProblem
from repro.core.result import MiningResult
from repro.core.signatures import GroupSignatureBuilder
from repro.dataset.store import TaggingDataset

__all__ = ["TagDM"]


class TagDM:
    """A prepared TagDM analysis session over one dataset.

    Parameters
    ----------
    dataset:
        The tagging dataset to analyse.
    enumeration:
        Candidate-group enumeration configuration; defaults to full
        conjunctions over all attributes with minimum support 5 (the
        paper's construction).
    signature_builder:
        A pre-configured :class:`GroupSignatureBuilder`; if ``None`` one
        is created from ``signature_backend`` / ``signature_dimensions``.
    signature_backend:
        Topic-model backend for signatures when no builder is given:
        ``"frequency"`` (fast, default), ``"tfidf"`` or ``"lda"`` (the
        paper's evaluated configuration).
    signature_dimensions:
        Signature length ``d`` (paper: 25).
    function_suite:
        The per-dimension dual mining functions; defaults to structural
        user/item comparison and signature-cosine tag comparison.
    seed:
        Seed forwarded to stochastic components (LDA, LSH defaults).
    """

    def __init__(
        self,
        dataset: TaggingDataset,
        enumeration: Optional[GroupEnumerationConfig] = None,
        signature_builder: Optional[GroupSignatureBuilder] = None,
        signature_backend: str = "frequency",
        signature_dimensions: int = 25,
        function_suite: Optional[FunctionSuite] = None,
        seed: int = 0,
    ) -> None:
        self.dataset = dataset
        self.enumeration = enumeration or GroupEnumerationConfig()
        self.signature_builder = signature_builder or GroupSignatureBuilder(
            backend=signature_backend,
            n_dimensions=signature_dimensions,
            seed=seed,
        )
        self.functions = function_suite or default_function_suite()
        self.seed = seed
        self._groups: Optional[List[TaggingActionGroup]] = None
        self._signatures: Optional[np.ndarray] = None
        self._matrix_cache = None

    # ------------------------------------------------------------------
    # Preparation
    # ------------------------------------------------------------------
    def prepare(self) -> "TagDM":
        """Enumerate candidate groups and compute their tag signatures."""
        groups = enumerate_groups(self.dataset, self.enumeration)
        if not groups:
            raise ValueError(
                "group enumeration produced no candidate groups; lower "
                "min_support or use partial-conjunction mode"
            )
        signatures = self.signature_builder.build(groups)
        self._groups = groups
        self._signatures = signatures
        self._matrix_cache = None
        return self

    @property
    def is_prepared(self) -> bool:
        """Whether :meth:`prepare` has been run."""
        return self._groups is not None

    def _require_prepared(self) -> None:
        if not self.is_prepared:
            raise NotFittedError("call TagDM.prepare() before using the session")

    @property
    def groups(self) -> List[TaggingActionGroup]:
        """The candidate tagging-action groups (after :meth:`prepare`)."""
        self._require_prepared()
        assert self._groups is not None
        return self._groups

    @property
    def signatures(self) -> np.ndarray:
        """The ``(n_groups, d)`` signature matrix (after :meth:`prepare`)."""
        self._require_prepared()
        assert self._signatures is not None
        return self._signatures

    @property
    def n_groups(self) -> int:
        """Number of candidate groups."""
        return len(self.groups)

    def default_support(self, fraction: float = 0.01) -> int:
        """The paper's support threshold: ``fraction`` of the input tuples."""
        return max(1, int(round(fraction * self.dataset.n_actions)))

    def matrix_cache(self):
        """The shared pairwise-matrix cache over the candidate groups.

        Built lazily on first use and reused by every subsequent
        :meth:`solve` call, so repeated runs (the benchmark harness, the
        experiment sweeps) pay for the pairwise matrices only once.
        """
        self._require_prepared()
        if self._matrix_cache is None:
            from repro.algorithms.scoring import PairwiseMatrixCache  # lazy import

            self._matrix_cache = PairwiseMatrixCache(self.groups, self.functions)
        return self._matrix_cache

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(
        self,
        problem: TagDMProblem,
        algorithm: Union[str, object] = "auto",
        **algorithm_options,
    ) -> MiningResult:
        """Solve ``problem`` over the prepared groups.

        ``algorithm`` is either an algorithm instance, an algorithm name
        (``"exact"``, ``"sm-lsh"``, ``"sm-lsh-fi"``, ``"sm-lsh-fo"``,
        ``"dv-fdp"``, ``"dv-fdp-fi"``, ``"dv-fdp-fo"``), or ``"auto"``
        which picks the paper's recommended solver for the problem class:
        SM-LSH-Fo for tag-similarity maximisation and DV-FDP-Fo for
        tag-diversity maximisation.  Keyword options are forwarded to the
        algorithm constructor when a name is given.
        """
        self._require_prepared()
        from repro.algorithms import build_algorithm  # lazy: avoids a cycle

        if isinstance(algorithm, str):
            name = algorithm.lower()
            if name == "auto":
                name = "dv-fdp-fo" if problem.maximises_tag_diversity else "sm-lsh-fo"
            solver = build_algorithm(name, seed=self.seed, **algorithm_options)
        else:
            solver = algorithm
        return solver.solve(problem, self.groups, self.functions, cache=self.matrix_cache())

    def solve_all(
        self,
        problems: Sequence[TagDMProblem],
        algorithm: Union[str, object] = "auto",
        **algorithm_options,
    ) -> Dict[str, MiningResult]:
        """Solve several problems and return results keyed by problem name."""
        return {
            problem.name: self.solve(problem, algorithm=algorithm, **algorithm_options)
            for problem in problems
        }
