"""Concrete pairwise dual-mining comparison functions.

Section 2.1 of the paper gives example pairwise comparison functions for
the three dimensions:

* **users / items** (Section 2.1.1): structural distance between group
  descriptions -- summing a per-attribute value similarity over shared
  attributes -- or set distance (Jaccard) over the items the groups
  tagged;
* **tags** (Section 2.1.2): cosine similarity between group tag
  signature vectors.

Diversity is defined as the inverse of the corresponding similarity.
The functions below return values in ``[0, 1]`` so thresholds such as
``q = 0.5`` are directly comparable across dimensions, and they are
wrapped into :class:`~repro.core.measures.PairwiseAggregationFunction`
objects by :func:`default_function_suite` so the algorithms can treat
them uniformly.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, Optional

from repro.core.groups import TaggingActionGroup
from repro.core.measures import (
    Criterion,
    Dimension,
    MEAN_AGGREGATOR,
    PairwiseAggregationFunction,
)
from repro.geometry.distance import cosine_similarity

__all__ = [
    "value_similarity",
    "structural_similarity",
    "structural_pairwise",
    "structural_pairwise_matrix",
    "jaccard_items_similarity",
    "set_overlap_pairwise",
    "tag_signature_pairwise",
    "tag_signature_pairwise_matrix",
    "default_function_suite",
    "FunctionSuite",
]


@lru_cache(maxsize=65536)
def value_similarity(value_a: str, value_b: str) -> float:
    """Similarity of two attribute values in ``[0, 1]``.

    Exact matches score 1; otherwise a normalised Levenshtein similarity
    is used, which is the "string similarity function that simply
    computes the edit distance" option the paper mentions.  The dynamic
    programme is tiny because attribute values are short, and results are
    memoised because the same value pairs recur across group pairs.
    """
    a, b = str(value_a), str(value_b)
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    # Iterative Levenshtein with two rows.
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    distance = previous[-1]
    return 1.0 - distance / max(len(a), len(b))


def _description_part(group: TaggingActionGroup, dimension: Dimension) -> Dict[str, str]:
    if dimension is Dimension.USERS:
        return group.description.user_predicates
    if dimension is Dimension.ITEMS:
        return group.description.item_predicates
    raise ValueError("structural comparison is only defined for users/items")


def structural_similarity(
    group_a: TaggingActionGroup,
    group_b: TaggingActionGroup,
    dimension: Dimension,
    value_sim: Callable[[str, str], float] = value_similarity,
) -> float:
    """Structural similarity of two group descriptions on one dimension.

    The paper's ``Fp(g1, g2, users, similarity) = sum_{a in A}
    sim(v1, v2)`` over the shared attributes ``A``; we divide by ``|A|``
    so the score stays in ``[0, 1]``.  Groups sharing no attribute on the
    dimension score 0.
    """
    part_a = _description_part(group_a, dimension)
    part_b = _description_part(group_b, dimension)
    shared = set(part_a) & set(part_b)
    if not shared:
        return 0.0
    total = sum(value_sim(part_a[attribute], part_b[attribute]) for attribute in shared)
    return total / len(shared)


def structural_pairwise(
    group_a: TaggingActionGroup,
    group_b: TaggingActionGroup,
    dimension: Dimension,
    criterion: Criterion,
) -> float:
    """Pairwise ``Fp`` using structural distance; diversity is the inverse."""
    similarity = structural_similarity(group_a, group_b, dimension)
    if criterion is Criterion.SIMILARITY:
        return similarity
    return 1.0 - similarity


def jaccard_items_similarity(
    group_a: TaggingActionGroup, group_b: TaggingActionGroup, dimension: Dimension
) -> float:
    """Set-distance similarity: Jaccard over covered items (or users).

    The paper's ``F'p`` computes the fraction of items tagged by both
    groups.  For the items dimension we compare covered item ids; for the
    users dimension we follow the same idea over covered user ids.
    """
    if dimension is Dimension.ITEMS:
        set_a, set_b = set(group_a.item_ids), set(group_b.item_ids)
    elif dimension is Dimension.USERS:
        set_a, set_b = set(group_a.user_ids), set(group_b.user_ids)
    else:
        raise ValueError("set-overlap comparison is only defined for users/items")
    union = set_a | set_b
    if not union:
        return 0.0
    return len(set_a & set_b) / len(union)


def set_overlap_pairwise(
    group_a: TaggingActionGroup,
    group_b: TaggingActionGroup,
    dimension: Dimension,
    criterion: Criterion,
) -> float:
    """Pairwise ``F'p`` using set overlap; diversity is the inverse."""
    similarity = jaccard_items_similarity(group_a, group_b, dimension)
    if criterion is Criterion.SIMILARITY:
        return similarity
    return 1.0 - similarity


def structural_pairwise_matrix(groups, dimension: Dimension, criterion: Criterion):
    """Vectorised ``(n, n)`` structural pairwise matrix.

    Produces exactly the values :func:`structural_pairwise` would, but
    builds them column-by-column with numpy so the mining algorithms can
    afford full pairwise matrices over thousands of candidate groups.
    """
    import numpy as np

    groups = list(groups)
    n = len(groups)
    parts = [_description_part(group, dimension) for group in groups]
    columns = sorted({column for part in parts for column in part})
    numerator = np.zeros((n, n), dtype=float)
    denominator = np.zeros((n, n), dtype=float)
    for column in columns:
        values = [part.get(column) for part in parts]
        present = np.array([value is not None for value in values], dtype=bool)
        distinct = sorted({value for value in values if value is not None})
        value_index = {value: position for position, value in enumerate(distinct)}
        similarity_table = np.zeros((len(distinct), len(distinct)), dtype=float)
        for i, value_i in enumerate(distinct):
            for j in range(i, len(distinct)):
                score = value_similarity(value_i, distinct[j])
                similarity_table[i, j] = score
                similarity_table[j, i] = score
        indices = np.array(
            [value_index[value] if value is not None else 0 for value in values],
            dtype=np.int64,
        )
        contribution = similarity_table[np.ix_(indices, indices)]
        mask = np.outer(present, present).astype(float)
        numerator += contribution * mask
        denominator += mask
    with np.errstate(invalid="ignore", divide="ignore"):
        similarity = np.where(denominator > 0, numerator / denominator, 0.0)
    if criterion is Criterion.SIMILARITY:
        return similarity
    return 1.0 - similarity


def tag_signature_pairwise_matrix(groups, dimension: Dimension, criterion: Criterion):
    """Vectorised ``(n, n)`` tag-signature pairwise matrix.

    Matches :func:`tag_signature_pairwise`: cosine similarity clipped at
    zero, diversity as its complement.  All groups must carry signatures.
    """
    import numpy as np

    from repro.geometry.distance import pairwise_cosine_similarity

    if dimension is not Dimension.TAGS:
        raise ValueError("tag-signature comparison is only defined for tags")
    signatures = np.vstack([group.require_signature() for group in groups])
    similarity = np.clip(pairwise_cosine_similarity(signatures), 0.0, 1.0)
    if criterion is Criterion.SIMILARITY:
        return similarity
    return 1.0 - similarity


def tag_signature_pairwise(
    group_a: TaggingActionGroup,
    group_b: TaggingActionGroup,
    dimension: Dimension,
    criterion: Criterion,
) -> float:
    """Pairwise ``F''p``: cosine similarity of group tag signatures.

    Signatures must have been computed by a
    :class:`~repro.core.signatures.GroupSignatureBuilder` first.
    """
    if dimension is not Dimension.TAGS:
        raise ValueError("tag-signature comparison is only defined for tags")
    similarity = cosine_similarity(group_a.require_signature(), group_b.require_signature())
    similarity = max(0.0, similarity)
    if criterion is Criterion.SIMILARITY:
        return similarity
    return 1.0 - similarity


class FunctionSuite:
    """The per-dimension dual mining functions used by a TagDM run.

    The suite maps each dimension to a
    :class:`PairwiseAggregationFunction`; algorithms look functions up by
    dimension and call them with the criterion the problem asks for.
    Optionally a *matrix builder* -- a vectorised implementation that
    produces the full ``(n, n)`` pairwise matrix in one call -- can be
    registered per dimension; algorithms that need whole matrices
    (Exact, DV-FDP) use it when available and fall back to pairwise
    calls otherwise.
    """

    def __init__(
        self,
        users: PairwiseAggregationFunction,
        items: PairwiseAggregationFunction,
        tags: PairwiseAggregationFunction,
        matrix_builders: Optional[Dict[Dimension, Callable]] = None,
    ) -> None:
        self._functions: Dict[Dimension, PairwiseAggregationFunction] = {
            Dimension.USERS: users,
            Dimension.ITEMS: items,
            Dimension.TAGS: tags,
        }
        self._matrix_builders: Dict[Dimension, Callable] = dict(matrix_builders or {})

    def function_for(self, dimension: Dimension) -> PairwiseAggregationFunction:
        """Return the dual mining function registered for ``dimension``."""
        return self._functions[dimension]

    def matrix_builder_for(self, dimension: Dimension) -> Optional[Callable]:
        """Return the vectorised matrix builder for ``dimension``, if any."""
        return self._matrix_builders.get(dimension)

    def is_mean_pairwise(self, dimension: Dimension) -> bool:
        """Whether ``dimension``'s function is a mean-of-pairs aggregation.

        Batch subset scorers rely on this: only mean aggregation lets a
        subset score be recovered from pairwise-matrix submatrix sums.
        """
        function = self._functions[dimension]
        return (
            isinstance(function, PairwiseAggregationFunction)
            and function.uses_mean_aggregation
        )

    def pairwise(
        self,
        group_a: TaggingActionGroup,
        group_b: TaggingActionGroup,
        dimension: Dimension,
        criterion: Criterion,
    ) -> float:
        """Evaluate the pairwise comparison for one pair on one dimension."""
        return self._functions[dimension].pairwise(group_a, group_b, dimension, criterion)

    def score(self, groups, dimension: Dimension, criterion: Criterion) -> float:
        """Evaluate the aggregated dual mining score for a group set."""
        return self._functions[dimension].score(groups, dimension, criterion)


def default_function_suite(
    user_comparison: str = "structural",
    item_comparison: str = "structural",
) -> FunctionSuite:
    """Build the paper's default function suite.

    ``user_comparison`` / ``item_comparison`` select between
    ``"structural"`` (attribute-value similarity, the configuration used
    in the experiments of Section 6) and ``"set-overlap"`` (Jaccard over
    covered entities).  The tag dimension always uses signature cosine.
    """
    choices = {
        "structural": structural_pairwise,
        "set-overlap": set_overlap_pairwise,
    }
    if user_comparison not in choices:
        raise ValueError(f"unknown user comparison {user_comparison!r}")
    if item_comparison not in choices:
        raise ValueError(f"unknown item comparison {item_comparison!r}")
    matrix_builders: Dict[Dimension, Callable] = {
        Dimension.TAGS: tag_signature_pairwise_matrix,
    }
    if user_comparison == "structural":
        matrix_builders[Dimension.USERS] = structural_pairwise_matrix
    if item_comparison == "structural":
        matrix_builders[Dimension.ITEMS] = structural_pairwise_matrix
    return FunctionSuite(
        users=PairwiseAggregationFunction(
            choices[user_comparison], MEAN_AGGREGATOR, name=f"users-{user_comparison}"
        ),
        items=PairwiseAggregationFunction(
            choices[item_comparison], MEAN_AGGREGATOR, name=f"items-{item_comparison}"
        ),
        tags=PairwiseAggregationFunction(
            tag_signature_pairwise, MEAN_AGGREGATOR, name="tags-signature-cosine"
        ),
        matrix_builders=matrix_builders,
    )
