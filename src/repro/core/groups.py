"""Describable tagging-action groups and group support.

Section 2 of the paper adopts the view (from the authors' earlier MRI
work) that groups of tagging actions which are *structurally describable*
-- i.e. definable by conjunctive predicates over user and/or item
attributes such as ``{gender=male, state=new york}`` -- are the
meaningful unit of analysis.  This module provides:

* :class:`GroupDescription` -- an immutable conjunctive predicate over
  prefixed attribute columns, split into its user part and item part;
* :class:`TaggingActionGroup` -- a description plus the tuple rows it
  matches, the users/items it covers, its aggregated tag multiset and
  (once computed) its tag signature vector;
* :func:`group_support` -- Definition 1: the number of input tuples
  belonging to at least one group of a set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.dataset.store import ITEM_PREFIX, USER_PREFIX, TaggingDataset

__all__ = ["GroupDescription", "TaggingActionGroup", "group_support", "build_group"]


@dataclass(frozen=True)
class GroupDescription:
    """An immutable conjunctive predicate over prefixed attribute columns.

    ``predicates`` maps prefixed columns (``user.gender``,
    ``item.genre``, ...) to required values.  The description is hashable
    so groups can be deduplicated and used as dictionary keys.
    """

    predicates: Tuple[Tuple[str, str], ...]

    @classmethod
    def from_mapping(cls, predicates: Mapping[str, str]) -> "GroupDescription":
        """Build a description from a ``column -> value`` mapping."""
        items = tuple(sorted((str(k), str(v)) for k, v in predicates.items()))
        for column, _ in items:
            if not column.startswith(USER_PREFIX) and not column.startswith(ITEM_PREFIX):
                raise ValueError(
                    f"predicate column {column!r} must start with 'user.' or 'item.'"
                )
        return cls(predicates=items)

    def as_dict(self) -> Dict[str, str]:
        """Return the predicates as a plain dictionary."""
        return dict(self.predicates)

    @property
    def user_predicates(self) -> Dict[str, str]:
        """Predicates over user attributes, with the ``user.`` prefix stripped."""
        return {
            column[len(USER_PREFIX):]: value
            for column, value in self.predicates
            if column.startswith(USER_PREFIX)
        }

    @property
    def item_predicates(self) -> Dict[str, str]:
        """Predicates over item attributes, with the ``item.`` prefix stripped."""
        return {
            column[len(ITEM_PREFIX):]: value
            for column, value in self.predicates
            if column.startswith(ITEM_PREFIX)
        }

    @property
    def is_user_describable(self) -> bool:
        """True when at least one predicate constrains a user attribute."""
        return bool(self.user_predicates)

    @property
    def is_item_describable(self) -> bool:
        """True when at least one predicate constrains an item attribute."""
        return bool(self.item_predicates)

    def __len__(self) -> int:
        return len(self.predicates)

    def __str__(self) -> str:
        if not self.predicates:
            return "{*}"
        inner = ", ".join(f"{column}={value}" for column, value in self.predicates)
        return "{" + inner + "}"


@dataclass
class TaggingActionGroup:
    """One describable tagging-action group and its derived aggregates.

    Attributes
    ----------
    description:
        The conjunctive predicate describing the group.
    tuple_indices:
        Row ids of the matching expanded tuples in the source dataset.
    user_ids / item_ids:
        The distinct users / items covered by those tuples.
    tags:
        The concatenated (multiset) tag list of the group -- the input to
        tag-signature generation.
    signature:
        The group tag signature vector ``T_rep(g)``; ``None`` until a
        signature builder fills it in.
    """

    description: GroupDescription
    tuple_indices: Tuple[int, ...]
    user_ids: frozenset = frozenset()
    item_ids: frozenset = frozenset()
    tags: Tuple[str, ...] = ()
    signature: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def support(self) -> int:
        """Number of tuples the group contains (its own support)."""
        return len(self.tuple_indices)

    @property
    def tuple_set(self) -> Set[int]:
        """The tuple rows as a set (cached per call; rows are immutable)."""
        return set(self.tuple_indices)

    def has_signature(self) -> bool:
        """Whether the tag signature vector has been computed."""
        return self.signature is not None

    def require_signature(self) -> np.ndarray:
        """Return the signature, raising if it has not been computed."""
        if self.signature is None:
            raise RuntimeError(
                f"group {self.description} has no tag signature; run a "
                "GroupSignatureBuilder first"
            )
        return self.signature

    def label(self) -> str:
        """A compact human-readable label for reports."""
        return f"{self.description} (n={self.support})"

    def __hash__(self) -> int:
        return hash(self.description)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaggingActionGroup):
            return NotImplemented
        return self.description == other.description


def build_group(
    dataset: TaggingDataset, predicates: Mapping[str, str]
) -> TaggingActionGroup:
    """Materialise the group described by ``predicates`` over ``dataset``."""
    description = GroupDescription.from_mapping(predicates)
    indices = dataset.matching_indices(description.as_dict())
    index_tuple = tuple(int(i) for i in indices)
    return TaggingActionGroup(
        description=description,
        tuple_indices=index_tuple,
        user_ids=frozenset(dataset.users_for_indices(index_tuple)),
        item_ids=frozenset(dataset.items_for_indices(index_tuple)),
        tags=tuple(dataset.tags_for_indices(index_tuple)),
    )


def group_support(groups: Iterable[TaggingActionGroup]) -> int:
    """Definition 1: tuples belonging to at least one group of the set."""
    covered: Set[int] = set()
    for group in groups:
        covered.update(group.tuple_indices)
    return len(covered)
