"""Incremental maintenance of a TagDM session under new tagging actions.

The paper's future-work section announces support for "updates and
insertions of new users, items and tags".  This module implements that
extension: :class:`IncrementalTagDM` wraps a prepared
:class:`~repro.core.framework.TagDM` session and keeps its candidate
groups, tag signatures and support counts consistent as tagging actions
arrive, without re-running the full enumeration + summarisation pipeline:

* a new action is appended to the underlying dataset (registering the
  user/item on first sight);
* only the describable groups whose conjunctive description matches the
  new tuple are touched -- their member lists, tag multisets and
  signatures are refreshed, and brand-new groups are created the moment
  a description crosses the minimum-support threshold;
* the topic model fitted during the initial :meth:`prepare` is kept and
  only re-vectorises the affected groups, so an insert costs a handful
  of signature inferences instead of a full refit (the model can be
  refitted explicitly with :meth:`refresh_topic_model` when drift
  accumulates);
* the shared pairwise-matrix cache (and the session's cached LSH
  indexes) are invalidated because a changed signature perturbs one
  row/column of every matrix.

The wrapper exposes the same ``solve`` API as the session it maintains.
When constructed with a durable :class:`~repro.dataset.sqlite_store.SqliteTaggingStore`,
every insert is mirrored into the store in the same call, so the
database, the in-memory dataset and the maintained groups stay
consistent -- and :meth:`IncrementalTagDM.snapshot` can persist the
session for a warm restart at any point.
"""

from __future__ import annotations

import threading
from itertools import combinations
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.enumeration import GroupEnumerationConfig
from repro.core.framework import TagDM
from repro.core.groups import GroupDescription, TaggingActionGroup
from repro.core.problem import TagDMProblem
from repro.core.result import MiningResult
from repro.core.sanitizer import freeze_array, owned_by, seal_view
from repro.core.witness import locked_by, named_lock
from repro.dataset.store import ITEM_PREFIX, USER_PREFIX, TaggingDataset

__all__ = ["IncrementalTagDM", "IncrementalUpdateReport", "SessionView"]


@owned_by(
    # Captured at publication, read lock-free by every solver thread.
    epoch="frozen-after-publish",
    n_actions="frozen-after-publish",
    groups="frozen-after-publish",
    functions="frozen-after-publish",
    seed="frozen-after-publish",
    # Derived state built lazily after freeze(), under the view's lock.
    _build_lock="init-only",
    _signatures="lock:view.build",
    _matrix_cache="lock:view.build",
    _lsh_cache="lock:view.build",
)
class SessionView:
    """An immutable solve-only view of a session, frozen at one epoch.

    The delta+main serving split needs solves that never touch the write
    path: a view captures the session's group list (a shallow copy is
    enough -- incremental maintenance *replaces* list entries, it never
    mutates a published :class:`~repro.core.groups.TaggingActionGroup`)
    plus the solve configuration (function suite, seed, signature
    dimensionality), and lazily materialises its own signature matrix,
    pairwise-matrix cache and LSH indexes.  Because
    :meth:`TagDM.invalidate_caches` swaps cache *pointers* rather than
    mutating cache objects, a view may also inherit the live session's
    caches at freeze time: later inserts replace the session's pointers
    and leave the view's inherited objects intact.

    Freezing is therefore O(n_groups) pointer copying -- cheap enough to
    run after every merged writer batch -- while the expensive derived
    structures are built at most once per view, on first solve.

    Views are safe for concurrent solves: the lazy builds are serialised
    by a view-local lock, and the built structures are only ever read
    afterwards (the pairwise cache tolerates concurrent fills exactly as
    it did under the old shared read lock).
    """

    def __init__(self, session: TagDM, epoch: int = 0) -> None:
        if not session.is_prepared:
            raise ValueError("cannot freeze an unprepared session")
        #: Monotonic publication number assigned by the owner (the shard's
        #: merge path); views themselves never change it.
        self.epoch = int(epoch)
        #: How many dataset actions the frozen group state reflects -- the
        #: shard's ``delta_size`` is the live dataset size minus this.
        self.n_actions = session.dataset.n_actions
        self.groups: List[TaggingActionGroup] = list(session.groups)
        self.functions = session.functions
        self.seed = session.seed
        self._build_lock = named_lock("view.build")
        # Inherit whatever derived state the session has already paid for;
        # anything still None is built lazily against the frozen groups.
        self._signatures = session._signatures
        self._matrix_cache = session._matrix_cache
        self._lsh_cache: Dict[int, object] = dict(session._lsh_cache)
        # With TAGDM_STATE_SANITIZER armed, the published containers are
        # wrapped in raise-on-write proxies (no-op in production).
        seal_view(self)

    @property
    def watermark(self) -> int:
        """The insert watermark this view was frozen at.

        Watermarks are corpus action counts: monotone under the
        append-only insert path and totally ordered, unlike epochs,
        which restart from 1 on every shard (re)open.  The
        subscription pipeline keys its exactly-once delivery ledger on
        watermarks for exactly that reason -- a post-crash replay of
        an already-delivered evaluation carries the same watermark and
        is suppressed.
        """
        return self.n_actions

    @property
    def n_groups(self) -> int:
        """Number of groups in the frozen view."""
        return len(self.groups)

    @property
    def signatures(self):
        """The frozen ``(n_groups, d)`` signature matrix (built lazily)."""
        with self._build_lock:
            if self._signatures is None:
                from repro.core.signatures import signature_matrix  # lazy import

                self._signatures = freeze_array(signature_matrix(self.groups))
            return self._signatures

    def matrix_cache(self):
        """The view's pairwise-matrix cache (built lazily, then shared)."""
        with self._build_lock:
            if self._matrix_cache is None:
                from repro.algorithms.scoring import PairwiseMatrixCache  # lazy import

                self._matrix_cache = PairwiseMatrixCache(self.groups, self.functions)
            return self._matrix_cache

    def signature_lsh(self, n_bits: int = 10, n_tables: int = 1):
        """A cosine-LSH index over the frozen signatures (cached per view).

        Mirrors :meth:`TagDM.signature_lsh`: one index per table count at
        the widest bit width requested so far, narrower widths derived by
        prefix truncation.
        """
        signatures = self.signatures
        with self._build_lock:
            cached = self._lsh_cache.get(n_tables)
            if cached is None or cached.n_bits < n_bits:
                from repro.index.lsh import CosineLshIndex  # lazy import

                cached = CosineLshIndex(
                    n_dimensions=signatures.shape[1],
                    n_bits=n_bits,
                    n_tables=n_tables,
                    seed=self.seed,
                ).build(signatures)
                self._lsh_cache[n_tables] = cached
        if cached.n_bits == n_bits:
            return cached
        return cached.rebuild_with_bits(n_bits)

    def _signature_lsh_provider(self, n_bits: int, n_tables: int, seed: int):
        if seed != self.seed:
            return None
        return self.signature_lsh(n_bits=n_bits, n_tables=n_tables)

    def solve(
        self,
        problem: TagDMProblem,
        algorithm: Union[str, object] = "auto",
        **algorithm_options,
    ) -> MiningResult:
        """Solve ``problem`` over the frozen groups.

        Bit-identical to :meth:`TagDM.solve` on a session in the same
        state: the same solver construction (seeded with the session
        seed), the same group list, function suite, pairwise cache and
        LSH provider plumbing.
        """
        from repro.algorithms import build_algorithm  # lazy: avoids a cycle

        if isinstance(algorithm, str):
            name = algorithm.lower()
            if name == "auto":
                name = "dv-fdp-fo" if problem.maximises_tag_diversity else "sm-lsh-fo"
            solver = build_algorithm(name, seed=self.seed, **algorithm_options)
        else:
            solver = algorithm
        return solver.solve(
            problem,
            self.groups,
            self.functions,
            cache=self.matrix_cache(),
            lsh_provider=self._signature_lsh_provider,
        )


class IncrementalUpdateReport:
    """What one insert (or batch of inserts) changed in the session."""

    def __init__(self) -> None:
        self.actions_added = 0
        self.new_users: List[str] = []
        self.new_items: List[str] = []
        self.groups_updated = 0
        self.groups_created = 0
        self.pending_descriptions = 0
        #: True when this report was *recalled* from the store's
        #: idempotency log instead of applied: the batch had already
        #: been committed under the same request id, nothing mutated.
        self.deduplicated = False

    def merge(self, other: "IncrementalUpdateReport") -> "IncrementalUpdateReport":
        """Accumulate another report into this one (for batch inserts)."""
        self.actions_added += other.actions_added
        self.new_users.extend(other.new_users)
        self.new_items.extend(other.new_items)
        self.groups_updated += other.groups_updated
        self.groups_created += other.groups_created
        self.pending_descriptions = other.pending_descriptions
        return self

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.actions_added} action(s) added; "
            f"{len(self.new_users)} new user(s), {len(self.new_items)} new item(s); "
            f"{self.groups_updated} group(s) updated, {self.groups_created} created; "
            f"{self.pending_descriptions} description(s) below min support"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (the wire API's insert response body)."""
        return {
            "actions_added": self.actions_added,
            "new_users": list(self.new_users),
            "new_items": list(self.new_items),
            "groups_updated": self.groups_updated,
            "groups_created": self.groups_created,
            "pending_descriptions": self.pending_descriptions,
            "deduplicated": self.deduplicated,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "IncrementalUpdateReport":
        """Rebuild a report from :meth:`to_dict` output."""
        report = cls()
        report.actions_added = int(payload.get("actions_added", 0))
        report.new_users = [str(user) for user in payload.get("new_users", [])]
        report.new_items = [str(item) for item in payload.get("new_items", [])]
        report.groups_updated = int(payload.get("groups_updated", 0))
        report.groups_created = int(payload.get("groups_created", 0))
        report.pending_descriptions = int(payload.get("pending_descriptions", 0))
        report.deduplicated = bool(payload.get("deduplicated", False))
        return report


class IncrementalTagDM:
    """A TagDM session that absorbs new tagging actions in place.

    Parameters
    ----------
    dataset:
        The initial tagging dataset (it will be mutated by inserts).
    enumeration, signature_backend, signature_dimensions, seed:
        Forwarded to the wrapped :class:`TagDM` session.  ``"full"``
        enumeration mode is supported; ``"partial"`` (default) and
        ``"cross"`` match the description-generation rules used when
        routing new tuples to groups.
    store:
        Optional durable :class:`~repro.dataset.sqlite_store.SqliteTaggingStore`;
        when given, every registered user/item and inserted action is
        mirrored into it so the database tracks the in-memory dataset.
    session:
        An existing :class:`TagDM` session to wrap instead of building
        one (the :meth:`from_session` path for warm starts).  Mutually
        exclusive with ``dataset`` and the session-configuration
        parameters above -- a wrapped session carries its own.
    """

    def __init__(
        self,
        dataset: Optional[TaggingDataset] = None,
        enumeration: Optional[GroupEnumerationConfig] = None,
        signature_backend: Optional[str] = None,
        signature_dimensions: Optional[int] = None,
        seed: Optional[int] = None,
        store=None,
        session: Optional[TagDM] = None,
    ) -> None:
        if session is not None:
            if dataset is not None and dataset is not session.dataset:
                raise ValueError(
                    "pass either a dataset or an existing session, not both"
                )
            conflicting = [
                name
                for name, value in (
                    ("enumeration", enumeration),
                    ("signature_backend", signature_backend),
                    ("signature_dimensions", signature_dimensions),
                    ("seed", seed),
                )
                if value is not None
            ]
            if conflicting:
                raise ValueError(
                    "an existing session carries its own configuration; "
                    f"drop {', '.join(conflicting)}"
                )
            self.session = session
        else:
            if dataset is None:
                raise ValueError("a dataset (or an existing session) is required")
            self.session = TagDM(
                dataset,
                enumeration=enumeration,
                signature_backend=(
                    "frequency" if signature_backend is None else signature_backend
                ),
                signature_dimensions=(
                    25 if signature_dimensions is None else signature_dimensions
                ),
                seed=0 if seed is None else seed,
            )
        self.store = store
        # Tuples that match a description which has not reached minimum
        # support yet, keyed by that description.
        self._pending: Dict[GroupDescription, List[int]] = {}
        self._group_index: Dict[GroupDescription, int] = {}
        # Called with the merged IncrementalUpdateReport after every
        # committed insert call (single or batch).  The serving layer uses
        # this to drive its snapshot-rotation policy without wrapping the
        # insert API.
        self._mutation_listeners: List[Callable[[IncrementalUpdateReport], None]] = []

    @classmethod
    def from_session(cls, session: TagDM, store=None) -> "IncrementalTagDM":
        """Wrap an existing (typically warm-started) :class:`TagDM` session.

        The serving layer restores a session with
        :func:`repro.core.persistence.load_session` and keeps absorbing
        inserts through the wrapper; call :meth:`prepare` afterwards --
        an already-prepared session is not re-enumerated, only indexed.
        """
        return cls(session=session, store=store)

    # ------------------------------------------------------------------
    # Preparation and delegation
    # ------------------------------------------------------------------
    def prepare(self) -> "IncrementalTagDM":
        """Prepare the wrapped session (if needed) and index its groups.

        A session that is already prepared -- warm-started from a
        snapshot, or wrapped via :meth:`from_session` -- keeps its groups
        as-is; only the group index and the sub-threshold pending map are
        (re)built.
        """
        if not self.session.is_prepared:
            self.session.prepare()
        self._group_index = {
            group.description: position
            for position, group in enumerate(self.session.groups)
        }
        self._pending = {}
        self._seed_pending_from_dataset()
        return self

    def _seed_pending_from_dataset(self) -> None:
        """Track sub-threshold descriptions already present in the data.

        Without this, a description with (min_support - 1) existing tuples
        would need min_support *new* tuples before becoming a group.
        """
        for row in range(self.dataset.n_actions):
            for description in self._descriptions_for_row(row):
                if description in self._group_index:
                    continue
                self._pending.setdefault(description, []).append(row)

    @property
    def dataset(self) -> TaggingDataset:
        """The underlying (mutated in place) dataset."""
        return self.session.dataset

    def watermark(self) -> int:
        """The current insert watermark: committed corpus action count.

        Every :meth:`freeze` stamps the view it publishes with the
        watermark at freeze time (:attr:`SessionView.watermark`); the
        subscription evaluator compares those stamps against each
        subscription's last-evaluated watermark to decide what still
        needs re-solving.
        """
        return self.session.dataset.n_actions

    @property
    def groups(self) -> List[TaggingActionGroup]:
        """The maintained candidate groups."""
        return self.session.groups

    @property
    def n_groups(self) -> int:
        """Number of maintained candidate groups."""
        return self.session.n_groups

    def default_support(self, fraction: float = 0.01) -> int:
        """Support threshold relative to the *current* dataset size."""
        return self.session.default_support(fraction)

    def solve(self, problem: TagDMProblem, algorithm="auto", **options) -> MiningResult:
        """Solve a problem over the maintained groups."""
        return self.session.solve(problem, algorithm=algorithm, **options)

    def freeze(self, epoch: int = 0) -> SessionView:
        """Freeze the current session state into an immutable solve view.

        The caller must ensure no insert is concurrently mutating the
        session (the serving shard freezes from its merge path, which is
        excluded from the writer by the merge lock).  The returned
        :class:`SessionView` stays valid forever: later inserts replace
        group-list entries and cache pointers on the live session without
        touching the objects the view captured.
        """
        return SessionView(self.session, epoch=epoch)

    # ------------------------------------------------------------------
    # Description generation (mirrors repro.core.enumeration modes)
    # ------------------------------------------------------------------
    def _row_predicates(self, row: int) -> List[Tuple[str, str]]:
        config = self.session.enumeration
        columns = (
            tuple(config.columns) if config.columns is not None else self.dataset.columns
        )
        return [
            (column, self.dataset.column_values(column)[row]) for column in columns
        ]

    def _descriptions_for_row(self, row: int) -> List[GroupDescription]:
        """Every candidate description the tuple at ``row`` belongs to."""
        config = self.session.enumeration
        predicates = self._row_predicates(row)
        descriptions: List[GroupDescription] = []
        if config.mode == "full":
            descriptions.append(GroupDescription(predicates=tuple(sorted(predicates))))
        elif config.mode == "cross":
            user_predicates = [p for p in predicates if p[0].startswith(USER_PREFIX)]
            item_predicates = [p for p in predicates if p[0].startswith(ITEM_PREFIX)]
            for user_predicate in user_predicates:
                for item_predicate in item_predicates:
                    descriptions.append(
                        GroupDescription(
                            predicates=tuple(sorted((user_predicate, item_predicate)))
                        )
                    )
        else:  # partial
            max_predicates = min(config.max_predicates, len(predicates))
            for size in range(1, max_predicates + 1):
                for subset in combinations(predicates, size):
                    descriptions.append(GroupDescription(predicates=tuple(sorted(subset))))
        return descriptions

    # ------------------------------------------------------------------
    # Group maintenance
    # ------------------------------------------------------------------
    def _rebuild_group(self, description: GroupDescription, rows: Sequence[int]) -> TaggingActionGroup:
        rows = tuple(sorted(int(r) for r in rows))
        group = TaggingActionGroup(
            description=description,
            tuple_indices=rows,
            user_ids=frozenset(self.dataset.users_for_indices(rows)),
            item_ids=frozenset(self.dataset.items_for_indices(rows)),
            tags=tuple(self.dataset.tags_for_indices(rows)),
        )
        group.signature = self.session.signature_builder.signature(group)
        return group

    @locked_by("shard.merge")
    def _touch_group(self, description: GroupDescription, row: int, report: IncrementalUpdateReport) -> None:
        position = self._group_index.get(description)
        if position is not None:
            existing = self.session.groups[position]
            rows = existing.tuple_indices + (row,)
            self.session.groups[position] = self._rebuild_group(description, rows)
            report.groups_updated += 1
            return

        pending_rows = self._pending.setdefault(description, [])
        pending_rows.append(row)
        config = self.session.enumeration
        if len(pending_rows) >= config.min_support:
            if config.max_groups is not None and len(self.session.groups) >= config.max_groups:
                return  # respect the configured cap; keep accumulating as pending
            group = self._rebuild_group(description, pending_rows)
            self.session.groups.append(group)
            self._group_index[description] = len(self.session.groups) - 1
            del self._pending[description]
            report.groups_created += 1

    # ------------------------------------------------------------------
    # Public insert API
    # ------------------------------------------------------------------
    def add_mutation_listener(
        self, listener: Callable[[IncrementalUpdateReport], None]
    ) -> None:
        """Register a callback fired after every committed insert call.

        The listener receives the merged :class:`IncrementalUpdateReport`
        of the call (one action for :meth:`add_action`, the whole batch
        for :meth:`add_actions`).  Listeners run on the inserting thread,
        after caches have been invalidated.
        """
        self._mutation_listeners.append(listener)

    def _notify_mutation(self, report: IncrementalUpdateReport) -> None:
        if report.actions_added:
            for listener in self._mutation_listeners:
                listener(report)

    @locked_by("shard.merge")
    def _invalidate_derived_state(self) -> None:
        """Drop every cache a changed signature poisons.

        Signatures changed, so cached pairwise matrices / LSH indexes
        (and the stacked signature matrix) are stale.  Called once per
        public insert call -- a 1k-action batch must not rebuild the
        caches 1k times.
        """
        self.session.invalidate_caches()
        self.session._signatures = None

    @locked_by("shard.merge")
    def _insert_one(
        self,
        user_id: str,
        item_id: str,
        tags: Iterable[str],
        rating: Optional[float],
        user_attributes: Optional[Mapping[str, str]],
        item_attributes: Optional[Mapping[str, str]],
    ) -> IncrementalUpdateReport:
        """Apply one insert to the store, dataset and groups.

        Does *not* invalidate session caches -- the public wrappers do
        that exactly once per call.
        """
        if not self.session.is_prepared:
            raise RuntimeError("call prepare() before inserting tagging actions")
        report = IncrementalUpdateReport()

        user_id, item_id = str(user_id), str(item_id)
        if not self.dataset.has_user(user_id):
            if user_attributes is None:
                raise KeyError(
                    f"user {user_id!r} is new; provide user_attributes on first insert"
                )
            self.dataset.register_user(user_id, user_attributes)
            report.new_users.append(user_id)
        if not self.dataset.has_item(item_id):
            if item_attributes is None:
                raise KeyError(
                    f"item {item_id!r} is new; provide item_attributes on first insert"
                )
            self.dataset.register_item(item_id, item_attributes)
            report.new_items.append(item_id)

        tags = tuple(tags)  # the iterable is consumed by both sinks below
        if self.store is not None:
            # Mirror into the durable store *before* mutating the in-memory
            # tuple columns: if the store write fails (lock timeout, disk
            # full) the session state is untouched apart from the in-memory
            # user/item registrations above, which carry no tuples and
            # leave groups and consistency checks intact.  Registrations
            # and the action row land in one commit; the attributes are
            # read back from the dataset so defaulted ("unknown") values
            # land in the store identically.
            self.store.append_action(
                user_id,
                item_id,
                tags,
                rating,
                user_attributes=(
                    None
                    if self.store.has_user(user_id)
                    else self.dataset.user_attributes(user_id)
                ),
                item_attributes=(
                    None
                    if self.store.has_item(item_id)
                    else self.dataset.item_attributes(item_id)
                ),
            )

        row = self.dataset.add_action(user_id, item_id, tags, rating)
        report.actions_added = 1

        for description in self._descriptions_for_row(row):
            self._touch_group(description, row, report)

        report.pending_descriptions = len(self._pending)
        return report

    @locked_by("shard.merge")
    def add_action(
        self,
        user_id: str,
        item_id: str,
        tags: Iterable[str],
        rating: Optional[float] = None,
        user_attributes: Optional[Mapping[str, str]] = None,
        item_attributes: Optional[Mapping[str, str]] = None,
    ) -> IncrementalUpdateReport:
        """Insert one tagging action and update the affected groups.

        Unknown users/items must bring their attributes along on first
        sight (subsequent actions may omit them).
        """
        report = self._insert_one(
            user_id, item_id, tags, rating, user_attributes, item_attributes
        )
        self._invalidate_derived_state()
        self._notify_mutation(report)
        return report

    @locked_by("shard.merge")
    def add_actions(
        self,
        actions: Iterable[Mapping[str, object]],
        request_id: Optional[str] = None,
    ) -> IncrementalUpdateReport:
        """Insert a batch of action dicts (same keys as :meth:`add_action`).

        The whole batch shares a single cache invalidation: groups are
        maintained per action, but the pairwise-matrix / LSH / stacked
        signature caches are dropped once at the end instead of once per
        action (which made a 1k-action batch rebuild them 1k times).  If
        an action in the middle of the batch raises, the actions already
        applied stay applied and the caches are still invalidated before
        the exception propagates, so the session never serves stale
        results.

        ``request_id`` makes the batch **exactly-once** against the
        attached durable store: a batch whose id is already in the
        store's idempotency log is *not* re-applied -- its recorded
        report comes back with ``deduplicated=True`` and no listener
        fires.  A fresh id applies the batch and records the id inside
        one deferred SQLite transaction, so a process killed mid-batch
        loses the whole uncommitted batch (and its marker) to WAL
        recovery and the retry re-applies cleanly; a kill *after* the
        commit leaves the marker, and the retry deduplicates.  A batch
        rejected mid-way (validation error) commits its applied prefix
        but records **no** marker -- such requests surface their 4xx and
        are not blindly retried.  Without a store, ``request_id`` is
        accepted but provides no replay protection.
        """
        store = self.store
        if request_id is not None and store is not None:
            cached = store.recall_request(request_id)
            if cached is not None:
                report = IncrementalUpdateReport.from_dict(cached)
                report.deduplicated = True
                return report
            with store.deferred_commit():
                total = self._apply_batch(actions)
                store.record_request(request_id, total.to_dict())
            return total
        return self._apply_batch(actions)

    def _apply_batch(
        self, actions: Iterable[Mapping[str, object]]
    ) -> IncrementalUpdateReport:
        total = IncrementalUpdateReport()
        try:
            for action in actions:
                report = self._insert_one(
                    action["user_id"],
                    action["item_id"],
                    action.get("tags", ()),
                    action.get("rating"),
                    action.get("user_attributes"),
                    action.get("item_attributes"),
                )
                total.merge(report)
        finally:
            if total.actions_added:
                self._invalidate_derived_state()
                self._notify_mutation(total)
        return total

    # ------------------------------------------------------------------
    # Consistency helpers
    # ------------------------------------------------------------------
    @locked_by("shard.merge")
    def refresh_topic_model(self) -> None:
        """Refit the topic model and recompute every group signature.

        Incremental inserts keep using the initially fitted topic model;
        after substantial drift (many new tags) call this to refit on the
        current groups, exactly what a periodic offline rebuild would do.

        The backend to refit is taken from the session's recorded
        ``signature_backend`` string -- not inferred from the live model
        object, whose ``name`` attribute may carry the base-class default
        (``"topic-model"``) and would silently swap the backend.

        The refit builds *replacement* group objects rather than
        rebinding ``signature`` on the live ones: published views share
        the captured group objects with the session (freeze() copies the
        list, not the groups), so an in-place rebind would mutate state
        a concurrent lock-free solver is reading.  Replacing list
        entries is the same discipline every incremental insert follows.
        """
        import dataclasses

        from repro.core.signatures import GroupSignatureBuilder

        builder = GroupSignatureBuilder(
            topic_model=None,
            backend=self.session.signature_backend,
            n_dimensions=self.session.signature_builder.n_dimensions,
            seed=self.session.seed,
        )
        replacements = [
            dataclasses.replace(group, signature=None)
            for group in self.session.groups
        ]
        builder.build(replacements)
        self.session.groups[:] = replacements
        self.session.signature_builder = builder
        self._invalidate_derived_state()

    def snapshot(self, path) -> "IncrementalTagDM":
        """Persist the maintained session to ``path`` for a warm restart.

        Because inserts update groups and the durable store in the same
        call, a snapshot taken at any point is consistent with the store's
        contents at that point.  Returns ``self`` for chaining.
        """
        from repro.core.persistence import save_session

        save_session(self.session, path)
        return self

    def consistency_errors(self) -> List[str]:
        """Compare maintained groups against a from-scratch enumeration.

        Returns human-readable discrepancies (empty list when consistent).
        Used by tests and available to callers as a safety net after large
        batches of inserts.
        """
        import dataclasses

        from repro.core.enumeration import enumerate_groups

        config = self.session.enumeration
        uncapped = dataclasses.replace(config, max_groups=None)
        expected = {
            group.description: set(group.tuple_indices)
            for group in enumerate_groups(self.dataset, uncapped)
        }
        actual = {
            group.description: set(group.tuple_indices) for group in self.session.groups
        }
        errors: List[str] = []
        if config.max_groups is None:
            for description in expected:
                if description not in actual:
                    errors.append(f"missing group {description}")
        for description, rows in actual.items():
            if description not in expected:
                errors.append(f"unexpected group {description}")
            elif expected[description] != rows:
                errors.append(f"member mismatch for {description}")
        return errors
