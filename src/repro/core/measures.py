"""Dual-mining dimensions, criteria and function interfaces.

These types encode Definitions 2 and 3 of the paper:

* a *tagging behaviour dimension* ``b`` is one of users / items / tags
  (:class:`Dimension`);
* a *dual mining criterion* ``m`` is similarity or diversity
  (:class:`Criterion`);
* a *dual mining function* ``F(G, b, m)`` scores a set of tagging-action
  groups on one dimension under one criterion
  (:class:`DualMiningFunction`);
* a *pair-wise aggregation dual mining function* computes that score by
  aggregating a pairwise comparison ``Fp(g_i, g_j, b, m)`` over all
  distinct group pairs (:class:`PairwiseAggregationFunction`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from enum import Enum
from itertools import combinations
from typing import Callable, Iterable, List, Sequence

import numpy as np

__all__ = [
    "Dimension",
    "Criterion",
    "DualMiningFunction",
    "PairwiseAggregationFunction",
    "Aggregator",
    "MEAN_AGGREGATOR",
    "MIN_AGGREGATOR",
    "SUM_AGGREGATOR",
]


class Dimension(str, Enum):
    """The three tagging-action components (``b`` in Definition 2)."""

    USERS = "users"
    ITEMS = "items"
    TAGS = "tags"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Criterion(str, Enum):
    """The two opposing mining measures (``m`` in Definition 2)."""

    SIMILARITY = "similarity"
    DIVERSITY = "diversity"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def opposite(self) -> "Criterion":
        """Return the opposing criterion."""
        if self is Criterion.SIMILARITY:
            return Criterion.DIVERSITY
        return Criterion.SIMILARITY


#: An aggregator ``Fa`` folds the list of pairwise scores into one float.
Aggregator = Callable[[Sequence[float]], float]


def _mean(scores: Sequence[float]) -> float:
    return float(np.mean(scores)) if len(scores) else 0.0


def _minimum(scores: Sequence[float]) -> float:
    return float(np.min(scores)) if len(scores) else 0.0


def _total(scores: Sequence[float]) -> float:
    return float(np.sum(scores)) if len(scores) else 0.0


MEAN_AGGREGATOR: Aggregator = _mean
MIN_AGGREGATOR: Aggregator = _minimum
SUM_AGGREGATOR: Aggregator = _total


class DualMiningFunction(ABC):
    """Abstract dual mining function ``F : (G, b, m) -> float``.

    Concrete functions are bound to a dimension at construction time
    (structural functions only make sense for users/items, signature
    functions only for tags) and receive the criterion per call so the
    same function object serves both similarity and diversity queries.
    """

    #: Short identifier used in problem specifications and reports.
    name: str = "dual-mining-function"

    @abstractmethod
    def score(self, groups: Sequence, dimension: Dimension, criterion: Criterion) -> float:
        """Score the group set on ``dimension`` under ``criterion``."""

    def __call__(
        self, groups: Sequence, dimension: Dimension, criterion: Criterion
    ) -> float:
        return self.score(groups, dimension, criterion)


class PairwiseAggregationFunction(DualMiningFunction):
    """Definition 3: aggregate a pairwise comparison over distinct pairs.

    Parameters
    ----------
    pairwise:
        ``Fp(g_i, g_j, dimension, criterion) -> float``.
    aggregator:
        ``Fa`` folding the pairwise scores; defaults to the mean, which
        matches the paper's "average pairwise distance/similarity"
        quality metric.
    name:
        Identifier for reports.
    """

    def __init__(
        self,
        pairwise: Callable[[object, object, Dimension, Criterion], float],
        aggregator: Aggregator = MEAN_AGGREGATOR,
        name: str = "pairwise-aggregation",
    ) -> None:
        self._pairwise = pairwise
        self._aggregator = aggregator
        self.name = name

    @property
    def uses_mean_aggregation(self) -> bool:
        """Whether ``Fa`` is the mean over distinct pairs.

        Mean aggregation makes subset scores linear in the pairwise
        matrix entries, which is what lets the batch scorers evaluate
        many candidate subsets with submatrix gathers instead of one
        aggregation call per subset.
        """
        return self._aggregator is MEAN_AGGREGATOR

    def pairwise(
        self, group_a, group_b, dimension: Dimension, criterion: Criterion
    ) -> float:
        """Evaluate the pairwise comparison function ``Fp`` on one pair."""
        return float(self._pairwise(group_a, group_b, dimension, criterion))

    def pairwise_scores(
        self, groups: Sequence, dimension: Dimension, criterion: Criterion
    ) -> List[float]:
        """Evaluate ``Fp`` over every unordered pair of distinct groups."""
        return [
            self.pairwise(group_a, group_b, dimension, criterion)
            for group_a, group_b in combinations(groups, 2)
        ]

    def score(self, groups: Sequence, dimension: Dimension, criterion: Criterion) -> float:
        groups = list(groups)
        if len(groups) < 2:
            # A singleton group set trivially coheres with itself: maximal
            # similarity, zero diversity.  This keeps k_lo = 1 problems
            # well-defined.
            return 1.0 if criterion is Criterion.SIMILARITY else 0.0
        return self._aggregator(self.pairwise_scores(groups, dimension, criterion))
