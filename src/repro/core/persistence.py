"""Warm-start snapshots of prepared TagDM sessions.

Preparing a :class:`~repro.core.framework.TagDM` session is the
expensive half of every run: candidate-group enumeration walks the whole
dataset, the topic model is fitted on every group's tag document, and
the signature matrix is vectorised from scratch.  A server process that
restarts -- or a benchmark that re-runs -- pays that cost again even
though nothing changed.

This module persists everything :meth:`TagDM.prepare` produced so a new
process warm-starts in milliseconds:

* the candidate-group descriptions and tuple-index lists (member sets,
  user/item coverage and tag multisets are rebuilt from the dataset --
  cheap and guaranteed consistent with it);
* the signature matrix, bit-for-bit;
* the fitted topic-model state (vocabulary / idf table / Gibbs counts,
  depending on the backend);
* the cached LSH sign-bit matrices of :meth:`TagDM.signature_lsh`, so
  warm-started SM-LSH solves skip even the projection matmuls.

Snapshot format (documented in ``PERSISTENCE.md``): a single pickle file
holding one versioned dict with the fields above plus a dataset
fingerprint; :func:`load_session` refuses a snapshot whose fingerprint
does not match the dataset it is given.  Pickle is trusted input -- load
only snapshots your own deployment wrote, exactly as you would treat a
database file.
"""

from __future__ import annotations

import os
import pickle
import zlib
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.enumeration import GroupEnumerationConfig
from repro.core.framework import TagDM
from repro.core.groups import GroupDescription, TaggingActionGroup
from repro.core.signatures import GroupSignatureBuilder
from repro.dataset.store import TaggingDataset

__all__ = [
    "SNAPSHOT_VERSION",
    "CHECKSUM_SAMPLE_SIZE",
    "dataset_fingerprint",
    "read_snapshot",
    "read_snapshot_fingerprint",
    "save_session",
    "load_session",
    "session_from_snapshot",
]

#: Bump when the snapshot dict layout changes; checked on load.
#: v2 added ``action_checksum`` to the dataset fingerprint.
SNAPSHOT_VERSION = 2

#: Upper bound on the number of action rows the fingerprint checksum
#: touches, keeping :func:`dataset_fingerprint` O(1)-ish at any corpus
#: size.
CHECKSUM_SAMPLE_SIZE = 64


def _action_checksum(dataset: TaggingDataset) -> int:
    """Order-insensitive CRC over a bounded sample of action keys.

    Samples up to :data:`CHECKSUM_SAMPLE_SIZE` rows spread evenly across
    the corpus (always including the first and last row) and XOR-combines
    the CRC32 of each row's ``user\\x1fitem\\x1ftags`` key.  XOR makes the
    digest independent of the order the sampled keys are visited in, and
    CRC32 (unlike builtin ``hash``) is stable across processes, so a
    snapshot written by one process checks out in another.
    """
    n = dataset.n_actions
    if n == 0:
        return 0
    if n <= CHECKSUM_SAMPLE_SIZE:
        rows: List[int] = list(range(n))
    else:
        step = n / CHECKSUM_SAMPLE_SIZE
        rows = sorted({int(i * step) for i in range(CHECKSUM_SAMPLE_SIZE)} | {n - 1})
    digest = 0
    for row in rows:
        key = "\x1f".join(
            (dataset.user_of(row), dataset.item_of(row), ",".join(dataset.tags_of(row)))
        )
        digest ^= zlib.crc32(key.encode("utf-8"))
    return digest


def dataset_fingerprint(dataset: TaggingDataset) -> Dict[str, object]:
    """A cheap identity check tying a snapshot to its corpus.

    Deliberately not a full content hash: fingerprinting must stay
    O(1)-ish so warm loads do not re-read the whole dataset.  On top of
    the name/shape/schema identity, ``action_checksum`` folds in a
    bounded sample of actual action content, so a *different* corpus
    that happens to have identical user/item/action counts (the false
    accept the count-only fingerprint allowed) is rejected too.
    """
    return {
        "name": dataset.name,
        "n_actions": dataset.n_actions,
        "n_users": dataset.n_users,
        "n_items": dataset.n_items,
        "user_schema": list(dataset.user_schema),
        "item_schema": list(dataset.item_schema),
        "action_checksum": _action_checksum(dataset),
    }


def read_snapshot(path: Union[str, Path]) -> Dict[str, object]:
    """Deserialise a snapshot file into its version-checked dict.

    The serving layer reads the snapshot *once*, inspects its
    fingerprint to decide between a direct warm start and a tail
    replay, then materialises the session from the same dict with
    :func:`session_from_snapshot` -- no second deserialisation.  Raises
    ``ValueError`` for snapshots of a different :data:`SNAPSHOT_VERSION`.
    """
    with Path(path).open("rb") as handle:
        snapshot = pickle.load(handle)
    version = snapshot.get("snapshot_version")
    if version != SNAPSHOT_VERSION:
        raise ValueError(
            f"{path} is a v{version} snapshot; this library reads v{SNAPSHOT_VERSION}"
        )
    return snapshot


def read_snapshot_fingerprint(path: Union[str, Path]) -> Dict[str, object]:
    """The dataset fingerprint a snapshot was taken against.

    Tells a caller how far a snapshot lags the durable store
    (``n_actions`` / ``n_users`` / ``n_items`` at snapshot time)
    without committing to a session restore.
    """
    return dict(read_snapshot(path)["dataset_fingerprint"])


def _group_payload(groups: List[TaggingActionGroup]) -> List[Tuple[Tuple, Tuple[int, ...]]]:
    """Serialise groups as (predicates, tuple_indices) pairs."""
    return [(group.description.predicates, group.tuple_indices) for group in groups]


def _rebuild_groups(
    payload: List[Tuple[Tuple, Tuple[int, ...]]],
    dataset: TaggingDataset,
    signatures: np.ndarray,
) -> List[TaggingActionGroup]:
    """Materialise groups from the snapshot payload against ``dataset``.

    User/item coverage and tag multisets are recomputed from the tuple
    indices (identical to what enumeration produced, since the dataset is
    the same corpus the fingerprint check admitted), and each group gets
    its signature row restored bit-for-bit.
    """
    groups: List[TaggingActionGroup] = []
    for position, (predicates, tuple_indices) in enumerate(payload):
        indices = tuple(int(i) for i in tuple_indices)
        group = TaggingActionGroup(
            description=GroupDescription(
                predicates=tuple((str(c), str(v)) for c, v in predicates)
            ),
            tuple_indices=indices,
            user_ids=frozenset(dataset.users_for_indices(indices)),
            item_ids=frozenset(dataset.items_for_indices(indices)),
            tags=tuple(dataset.tags_for_indices(indices)),
        )
        group.signature = signatures[position].copy()
        groups.append(group)
    return groups


def save_session(session: TagDM, path: Union[str, Path]) -> Path:
    """Snapshot a prepared session to ``path`` (atomically).

    The snapshot is written to a sibling temporary file and renamed into
    place with :func:`os.replace`, so a crash mid-write leaves either the
    previous snapshot or the new one at ``path`` -- never a torn file.
    The snapshot-rotation policy of the serving layer
    (:mod:`repro.serving.policy`) relies on this.

    Raises ``NotFittedError`` (via the session) when :meth:`TagDM.prepare`
    has not run -- there is nothing worth snapshotting before that.
    """
    groups = session.groups  # raises NotFittedError when unprepared
    lsh_payload = [
        {
            "n_tables": n_tables,
            "n_bits": index.n_bits,
            "seed": index.seed,
            "bit_cache": [np.asarray(bits, dtype=bool) for bits in index.bit_cache],
        }
        for n_tables, index in sorted(session._lsh_cache.items())
    ]
    snapshot = {
        "snapshot_version": SNAPSHOT_VERSION,
        "dataset_fingerprint": dataset_fingerprint(session.dataset),
        "enumeration": asdict(session.enumeration),
        "signature_backend": session.signature_backend,
        "signature_dimensions": session.signature_builder.n_dimensions,
        "seed": session.seed,
        "groups": _group_payload(groups),
        "signatures": np.asarray(session.signatures, dtype=float),
        "topic_model": session.signature_builder.topic_model,
        "lsh": lsh_payload,
    }
    path = Path(path)
    staging = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    try:
        with staging.open("wb") as handle:
            pickle.dump(snapshot, handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(staging, path)
    except BaseException:
        staging.unlink(missing_ok=True)
        raise
    return path


def load_session(
    path: Union[str, Path],
    dataset: TaggingDataset,
    function_suite=None,
) -> TagDM:
    """Warm-start a :class:`TagDM` session from a snapshot file.

    ``dataset`` must be the corpus the snapshot was prepared over --
    typically just reloaded from the SQLite store
    (:meth:`~repro.dataset.sqlite_store.SqliteTaggingStore.to_dataset`).
    The returned session is prepared: groups, signatures, topic model and
    LSH caches are restored without enumeration, fitting or projection,
    so ``solve`` results are identical to the session that was saved.
    """
    return session_from_snapshot(
        read_snapshot(path), dataset, function_suite=function_suite, source=str(path)
    )


def session_from_snapshot(
    snapshot: Dict[str, object],
    dataset: TaggingDataset,
    function_suite=None,
    source: str = "snapshot",
) -> TagDM:
    """Materialise a warm session from an already-deserialised snapshot.

    The fingerprint check against ``dataset`` still applies; ``source``
    only labels error messages (the file path when coming through
    :func:`load_session`).
    """
    expected = snapshot["dataset_fingerprint"]
    actual = dataset_fingerprint(dataset)
    if expected != actual:
        mismatched = sorted(
            key for key in expected if expected[key] != actual.get(key)
        )
        raise ValueError(
            f"snapshot {source} was prepared over a different dataset "
            f"(mismatched: {', '.join(mismatched)})"
        )

    session = TagDM(
        dataset,
        enumeration=GroupEnumerationConfig(**snapshot["enumeration"]),
        signature_builder=GroupSignatureBuilder.from_fitted(snapshot["topic_model"]),
        function_suite=function_suite,
        seed=snapshot["seed"],
    )
    session.signature_backend = snapshot["signature_backend"]
    signatures = np.asarray(snapshot["signatures"], dtype=float)
    session._groups = _rebuild_groups(snapshot["groups"], dataset, signatures)
    session._signatures = signatures
    session._matrix_cache = None

    from repro.index.lsh import CosineLshIndex  # lazy: keep import cost off cold paths

    for entry in snapshot["lsh"]:
        session._lsh_cache[entry["n_tables"]] = CosineLshIndex.from_cached_bits(
            signatures, entry["bit_cache"], seed=entry["seed"]
        )
    return session
