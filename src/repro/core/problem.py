"""TagDM problem specifications.

Definition 4 of the paper frames Tagging Behavior Dual Mining as a
constrained optimisation problem over a triple ``<G, C, O>``: find a set
of describable tagging-action groups whose size lies in
``[k_lo, k_hi]``, whose group support is at least ``p``, which satisfies
every dual-mining constraint in ``C``, and which maximises the weighted
sum of the dual-mining objectives in ``O``.

This module provides:

* :class:`Constraint` and :class:`Objective` -- one dual-mining term
  each, binding a dimension to a criterion (plus threshold / weight);
* :class:`TagDMProblem` -- a full problem specification with validation;
* :data:`TABLE1_PROBLEMS` and :func:`table1_problem` -- the six concrete
  instantiations studied in the paper (Table 1), all with constraints on
  users and items and the optimisation goal on tags;
* :func:`enumerate_problem_instances` -- systematic enumeration of the
  framework's concrete instances (the paper quotes 112 combinations; see
  the function docstring for how our enumeration counts them).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import product
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.exceptions import InvalidProblemError
from repro.core.measures import Criterion, Dimension


def _parse_dimension(payload: Mapping[str, object]) -> Dimension:
    try:
        return Dimension(str(payload["dimension"]))
    except (KeyError, ValueError, TypeError) as exc:
        raise InvalidProblemError(
            f"dimension must be one of {[d.value for d in Dimension]}: {exc}"
        ) from exc


def _parse_criterion(payload: Mapping[str, object]) -> Criterion:
    try:
        return Criterion(str(payload["criterion"]))
    except (KeyError, ValueError, TypeError) as exc:
        raise InvalidProblemError(
            f"criterion must be one of {[c.value for c in Criterion]}: {exc}"
        ) from exc


def _parse_number(payload: Mapping[str, object], key: str) -> float:
    value = payload.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise InvalidProblemError(f"{key} must be a number, got {value!r}")
    return float(value)


def _parse_int(payload: Mapping[str, object], key: str, default: int) -> int:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise InvalidProblemError(f"{key} must be an integer, got {value!r}")
    return value

__all__ = [
    "Constraint",
    "Objective",
    "TagDMProblem",
    "TABLE1_SPECS",
    "TABLE1_PROBLEMS",
    "table1_problem",
    "enumerate_problem_instances",
]


@dataclass(frozen=True)
class Constraint:
    """One hard dual-mining constraint ``c_i.F(G, b, m) >= threshold``."""

    dimension: Dimension
    criterion: Criterion
    threshold: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise InvalidProblemError(
                f"constraint threshold {self.threshold} must lie in [0, 1] "
                "(dual mining scores are normalised)"
            )

    def describe(self) -> str:
        """Short human-readable form, e.g. ``users similarity >= 0.5``."""
        return f"{self.dimension.value} {self.criterion.value} >= {self.threshold:g}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (see :meth:`from_dict` for the inverse)."""
        return {
            "dimension": self.dimension.value,
            "criterion": self.criterion.value,
            "threshold": float(self.threshold),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Constraint":
        """Rebuild a constraint from :meth:`to_dict` output.

        Raises :class:`InvalidProblemError` on malformed payloads so the
        wire API maps every decoding failure to one error class.
        """
        return cls(
            dimension=_parse_dimension(payload),
            criterion=_parse_criterion(payload),
            threshold=_parse_number(payload, "threshold"),
        )


@dataclass(frozen=True)
class Objective:
    """One optimisation term ``o_j.Wt * o_j.F(G, b, m)`` to maximise."""

    dimension: Dimension
    criterion: Criterion
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0.0:
            raise InvalidProblemError("objective weight must be positive")

    def describe(self) -> str:
        """Short human-readable form, e.g. ``maximise tags similarity``."""
        prefix = f"{self.weight:g} * " if self.weight != 1.0 else ""
        return f"maximise {prefix}{self.dimension.value} {self.criterion.value}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (see :meth:`from_dict` for the inverse)."""
        return {
            "dimension": self.dimension.value,
            "criterion": self.criterion.value,
            "weight": float(self.weight),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Objective":
        """Rebuild an objective from :meth:`to_dict` output."""
        weight = payload.get("weight", 1.0)
        if not isinstance(weight, (int, float)) or isinstance(weight, bool):
            raise InvalidProblemError(f"objective weight must be a number, got {weight!r}")
        return cls(
            dimension=_parse_dimension(payload),
            criterion=_parse_criterion(payload),
            weight=float(weight),
        )


@dataclass(frozen=True)
class TagDMProblem:
    """A complete TagDM problem instance (Definition 4).

    Attributes
    ----------
    name:
        Identifier used in reports ("problem-1" ... for Table 1).
    constraints:
        The hard dual-mining constraints ``C``.
    objectives:
        The optimisation terms ``O`` (at least one required).
    k_lo / k_hi:
        Bounds on the number of returned groups.
    min_support:
        The group-support threshold ``p`` (absolute tuple count).
    """

    name: str
    constraints: Tuple[Constraint, ...]
    objectives: Tuple[Objective, ...]
    k_lo: int = 1
    k_hi: int = 3
    min_support: int = 0

    def __post_init__(self) -> None:
        if not self.objectives:
            raise InvalidProblemError("a TagDM problem needs at least one objective")
        if self.k_lo < 1:
            raise InvalidProblemError("k_lo must be at least 1")
        if self.k_hi < self.k_lo:
            raise InvalidProblemError("k_hi must be >= k_lo")
        if self.min_support < 0:
            raise InvalidProblemError("min_support must be non-negative")
        constrained = [c.dimension for c in self.constraints]
        optimised = [o.dimension for o in self.objectives]
        if len(set(constrained)) != len(constrained):
            raise InvalidProblemError("each dimension may appear in at most one constraint")
        if len(set(optimised)) != len(optimised):
            raise InvalidProblemError("each dimension may appear in at most one objective")
        overlap = set(constrained) & set(optimised)
        if overlap:
            raise InvalidProblemError(
                "a dimension cannot be both constrained and optimised: "
                + ", ".join(sorted(d.value for d in overlap))
            )

    # ------------------------------------------------------------------
    @property
    def constrained_dimensions(self) -> Tuple[Dimension, ...]:
        """Dimensions appearing in the constraint set ``C``."""
        return tuple(c.dimension for c in self.constraints)

    @property
    def optimised_dimensions(self) -> Tuple[Dimension, ...]:
        """Dimensions appearing in the optimisation goal ``O``."""
        return tuple(o.dimension for o in self.objectives)

    def criterion_for(self, dimension: Dimension) -> Optional[Criterion]:
        """The criterion applied to ``dimension`` (constraint or objective)."""
        for constraint in self.constraints:
            if constraint.dimension is dimension:
                return constraint.criterion
        for objective in self.objectives:
            if objective.dimension is dimension:
                return objective.criterion
        return None

    def constraint_for(self, dimension: Dimension) -> Optional[Constraint]:
        """The constraint on ``dimension`` if any."""
        for constraint in self.constraints:
            if constraint.dimension is dimension:
                return constraint
        return None

    @property
    def maximises_tag_similarity(self) -> bool:
        """True when tags are optimised under the similarity criterion."""
        return any(
            o.dimension is Dimension.TAGS and o.criterion is Criterion.SIMILARITY
            for o in self.objectives
        )

    @property
    def maximises_tag_diversity(self) -> bool:
        """True when tags are optimised under the diversity criterion."""
        return any(
            o.dimension is Dimension.TAGS and o.criterion is Criterion.DIVERSITY
            for o in self.objectives
        )

    def with_support(self, min_support: int) -> "TagDMProblem":
        """Return a copy with a different support threshold ``p``."""
        return replace(self, min_support=min_support)

    def with_k(self, k_lo: int, k_hi: int) -> "TagDMProblem":
        """Return a copy with different group-count bounds."""
        return replace(self, k_lo=k_lo, k_hi=k_hi)

    def describe(self) -> str:
        """Multi-line human-readable description of the specification."""
        lines = [f"TagDM problem {self.name}"]
        lines.append(f"  groups: {self.k_lo} <= |G| <= {self.k_hi}")
        lines.append(f"  support: >= {self.min_support}")
        for constraint in self.constraints:
            lines.append(f"  constraint: {constraint.describe()}")
        for objective in self.objectives:
            lines.append(f"  objective: {objective.describe()}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Wire serde
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form covering the full Definition 4 triple.

        The inverse :meth:`from_dict` revalidates through the regular
        constructors, so ``TagDMProblem.from_dict(p.to_dict()) == p`` for
        every well-formed problem (the dataclasses compare by value).
        """
        return {
            "name": self.name,
            "constraints": [constraint.to_dict() for constraint in self.constraints],
            "objectives": [objective.to_dict() for objective in self.objectives],
            "k_lo": self.k_lo,
            "k_hi": self.k_hi,
            "min_support": self.min_support,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "TagDMProblem":
        """Rebuild a problem from :meth:`to_dict` output.

        Every malformed payload -- wrong types, unknown dimensions or
        criteria, bounds violating Definition 4 -- raises
        :class:`InvalidProblemError`, which the wire API maps to a
        validation error (HTTP 422).
        """
        if not isinstance(payload, Mapping):
            raise InvalidProblemError(
                f"problem payload must be an object, got {type(payload).__name__}"
            )
        name = payload.get("name", "problem")
        if not isinstance(name, str) or not name:
            raise InvalidProblemError(f"problem name must be a non-empty string, got {name!r}")
        constraints = payload.get("constraints", [])
        objectives = payload.get("objectives", [])
        if not isinstance(constraints, Sequence) or isinstance(constraints, (str, bytes)):
            raise InvalidProblemError("constraints must be a list of constraint objects")
        if not isinstance(objectives, Sequence) or isinstance(objectives, (str, bytes)):
            raise InvalidProblemError("objectives must be a list of objective objects")
        return cls(
            name=name,
            constraints=tuple(Constraint.from_dict(entry) for entry in constraints),
            objectives=tuple(Objective.from_dict(entry) for entry in objectives),
            k_lo=_parse_int(payload, "k_lo", 1),
            k_hi=_parse_int(payload, "k_hi", 3),
            min_support=_parse_int(payload, "min_support", 0),
        )


# ----------------------------------------------------------------------
# Table 1: the six instantiations studied in detail by the paper.
# Column layout: (user criterion, item criterion, tag criterion); all six
# constrain users and items and optimise tags.
# ----------------------------------------------------------------------
TABLE1_SPECS: Dict[int, Tuple[Criterion, Criterion, Criterion]] = {
    1: (Criterion.SIMILARITY, Criterion.SIMILARITY, Criterion.SIMILARITY),
    2: (Criterion.SIMILARITY, Criterion.DIVERSITY, Criterion.SIMILARITY),
    3: (Criterion.DIVERSITY, Criterion.SIMILARITY, Criterion.SIMILARITY),
    4: (Criterion.DIVERSITY, Criterion.SIMILARITY, Criterion.DIVERSITY),
    5: (Criterion.SIMILARITY, Criterion.DIVERSITY, Criterion.DIVERSITY),
    6: (Criterion.SIMILARITY, Criterion.SIMILARITY, Criterion.DIVERSITY),
}


def table1_problem(
    problem_id: int,
    k: int = 3,
    min_support: int = 0,
    user_threshold: float = 0.5,
    item_threshold: float = 0.5,
    k_lo: Optional[int] = None,
) -> TagDMProblem:
    """Build one of the six Table 1 problems with concrete parameters.

    The defaults mirror Section 6.1: ``k = 3``, user and item constraint
    thresholds ``q = r = 0.5``; ``min_support`` corresponds to the
    paper's ``p`` (350 tuples on the full dataset, i.e. 1%) and should be
    set relative to the dataset in use.  By default ``k_lo = k`` because
    the evaluation returns exactly ``k`` groups and scores their average
    pairwise similarity; pass ``k_lo=1`` for the looser Definition 4 form
    ``1 <= |G_opt| <= k``.
    """
    if problem_id not in TABLE1_SPECS:
        raise InvalidProblemError(
            f"problem_id must be one of {sorted(TABLE1_SPECS)}, got {problem_id}"
        )
    user_criterion, item_criterion, tag_criterion = TABLE1_SPECS[problem_id]
    return TagDMProblem(
        name=f"problem-{problem_id}",
        constraints=(
            Constraint(Dimension.USERS, user_criterion, user_threshold),
            Constraint(Dimension.ITEMS, item_criterion, item_threshold),
        ),
        objectives=(Objective(Dimension.TAGS, tag_criterion),),
        k_lo=k if k_lo is None else k_lo,
        k_hi=k,
        min_support=min_support,
    )


#: The six Table 1 problems with default parameters, keyed by id.
TABLE1_PROBLEMS: Dict[int, TagDMProblem] = {
    problem_id: table1_problem(problem_id) for problem_id in TABLE1_SPECS
}

_ROLE_NONE = "none"
_ROLE_CONSTRAINT = "constraint"
_ROLE_OBJECTIVE = "objective"


def enumerate_problem_instances(
    k: int = 3,
    min_support: int = 0,
    threshold: float = 0.5,
) -> List[TagDMProblem]:
    """Enumerate the framework's concrete problem instances.

    Each of the three dimensions independently takes a role (constraint,
    optimisation goal, or neither) and -- when it participates -- a
    criterion (similarity or diversity); instances with no optimisation
    goal are dropped because there is nothing to maximise.  This yields
    98 distinct instances.  The paper quotes "112 concrete problem
    instances" from multiplying the 8 criterion combinations with the 26
    role combinations without adjusting for unused criteria; the
    enumeration here counts distinct *well-formed* specifications, and
    the six Table 1 problems are all included.
    """
    dimensions = (Dimension.USERS, Dimension.ITEMS, Dimension.TAGS)
    roles = (_ROLE_NONE, _ROLE_CONSTRAINT, _ROLE_OBJECTIVE)
    criteria = (Criterion.SIMILARITY, Criterion.DIVERSITY)

    problems: List[TagDMProblem] = []
    for role_assignment in product(roles, repeat=3):
        if _ROLE_OBJECTIVE not in role_assignment:
            continue
        participating = [i for i, role in enumerate(role_assignment) if role != _ROLE_NONE]
        for criteria_assignment in product(criteria, repeat=len(participating)):
            constraints: List[Constraint] = []
            objectives: List[Objective] = []
            criterion_by_index = dict(zip(participating, criteria_assignment))
            for index, role in enumerate(role_assignment):
                if role == _ROLE_NONE:
                    continue
                dimension = dimensions[index]
                criterion = criterion_by_index[index]
                if role == _ROLE_CONSTRAINT:
                    constraints.append(Constraint(dimension, criterion, threshold))
                else:
                    objectives.append(Objective(dimension, criterion))
            name_parts = []
            for index, role in enumerate(role_assignment):
                if role == _ROLE_NONE:
                    name_parts.append(f"{dimensions[index].value[0]}:-")
                else:
                    criterion = criterion_by_index[index]
                    marker = "C" if role == _ROLE_CONSTRAINT else "O"
                    name_parts.append(
                        f"{dimensions[index].value[0]}:{criterion.value[:3]}/{marker}"
                    )
            problems.append(
                TagDMProblem(
                    name="tagdm[" + ",".join(name_parts) + "]",
                    constraints=tuple(constraints),
                    objectives=tuple(objectives),
                    k_lo=1,
                    k_hi=k,
                    min_support=min_support,
                )
            )
    return problems
