"""Mining results returned by the TagDM algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.groups import TaggingActionGroup, group_support
from repro.core.measures import Criterion, Dimension
from repro.core.problem import TagDMProblem

__all__ = ["MiningResult"]


@dataclass
class MiningResult:
    """Outcome of solving one TagDM problem with one algorithm.

    Attributes
    ----------
    problem:
        The problem specification that was solved.
    algorithm:
        Name of the algorithm that produced the result (``"exact"``,
        ``"sm-lsh-fo"``, ...).
    groups:
        The returned set of tagging-action groups ``G_opt`` (or
        ``G_app`` for the approximate algorithms); empty when the
        algorithm could not find a feasible set.
    objective_value:
        The achieved optimisation score (weighted sum over objectives).
    constraint_scores:
        Achieved score per constraint, keyed by ``dimension.criterion``.
    support:
        Group support of the returned set (Definition 1).
    feasible:
        Whether every hard constraint (including support and group-count
        bounds) is satisfied.
    elapsed_seconds:
        Wall-clock time of the solve call.
    evaluations:
        Number of candidate group sets the algorithm scored (a
        machine-independent cost proxy reported alongside wall-clock
        time).
    metadata:
        Algorithm-specific extras (LSH bit width used, relaxation
        iterations, ...).
    """

    problem: TagDMProblem
    algorithm: str
    groups: Tuple[TaggingActionGroup, ...]
    objective_value: float
    constraint_scores: Dict[str, float] = field(default_factory=dict)
    support: int = 0
    feasible: bool = False
    elapsed_seconds: float = 0.0
    evaluations: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        """True when no group set was returned (a null result)."""
        return not self.groups

    @property
    def k(self) -> int:
        """Number of returned groups."""
        return len(self.groups)

    def descriptions(self) -> List[str]:
        """The group descriptions as strings, in result order."""
        return [str(group.description) for group in self.groups]

    def recompute_support(self) -> int:
        """Recompute (and return) the support of the returned group set."""
        return group_support(self.groups)

    def summary(self) -> str:
        """Multi-line human-readable summary used by examples and reports."""
        lines = [
            f"{self.problem.name} via {self.algorithm}: "
            f"objective={self.objective_value:.4f} "
            f"({'feasible' if self.feasible else 'infeasible'}, "
            f"support={self.support}, k={self.k}, "
            f"time={self.elapsed_seconds * 1000.0:.1f} ms)"
        ]
        for key, value in sorted(self.constraint_scores.items()):
            lines.append(f"  constraint {key}: {value:.4f}")
        for group in self.groups:
            lines.append(f"  group {group.label()}")
        return "\n".join(lines)

    def as_row(self) -> Dict[str, object]:
        """Flatten the result into a dict for tabular reporting."""
        return {
            "problem": self.problem.name,
            "algorithm": self.algorithm,
            "objective": self.objective_value,
            "feasible": self.feasible,
            "support": self.support,
            "k": self.k,
            "elapsed_seconds": self.elapsed_seconds,
            "evaluations": self.evaluations,
        }
