"""Mining results returned by the TagDM algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.groups import GroupDescription, TaggingActionGroup, group_support
from repro.core.measures import Criterion, Dimension
from repro.core.problem import TagDMProblem

__all__ = ["MiningResult", "json_safe"]


def json_safe(value):
    """Recursively convert ``value`` into plain JSON-serialisable types.

    Algorithm metadata routinely carries numpy scalars, tuples and sets;
    the wire protocol needs plain ints/floats/bools/lists/dicts.  Unknown
    objects fall back to ``str`` so a stray value degrades to something
    readable instead of blowing up the JSON encoder.
    """
    import numpy as np

    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [json_safe(entry) for entry in value.tolist()]
    if isinstance(value, Mapping):
        return {str(key): json_safe(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        entries = sorted(value) if isinstance(value, (set, frozenset)) else value
        return [json_safe(entry) for entry in entries]
    return str(value)


@dataclass
class MiningResult:
    """Outcome of solving one TagDM problem with one algorithm.

    Attributes
    ----------
    problem:
        The problem specification that was solved.
    algorithm:
        Name of the algorithm that produced the result (``"exact"``,
        ``"sm-lsh-fo"``, ...).
    groups:
        The returned set of tagging-action groups ``G_opt`` (or
        ``G_app`` for the approximate algorithms); empty when the
        algorithm could not find a feasible set.
    objective_value:
        The achieved optimisation score (weighted sum over objectives).
    constraint_scores:
        Achieved score per constraint, keyed by ``dimension.criterion``.
    support:
        Group support of the returned set (Definition 1).
    feasible:
        Whether every hard constraint (including support and group-count
        bounds) is satisfied.
    elapsed_seconds:
        Wall-clock time of the solve call.
    evaluations:
        Number of candidate group sets the algorithm scored (a
        machine-independent cost proxy reported alongside wall-clock
        time).
    metadata:
        Algorithm-specific extras (LSH bit width used, relaxation
        iterations, ...).
    """

    problem: TagDMProblem
    algorithm: str
    groups: Tuple[TaggingActionGroup, ...]
    objective_value: float
    constraint_scores: Dict[str, float] = field(default_factory=dict)
    support: int = 0
    feasible: bool = False
    elapsed_seconds: float = 0.0
    evaluations: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        """True when no group set was returned (a null result)."""
        return not self.groups

    @property
    def k(self) -> int:
        """Number of returned groups."""
        return len(self.groups)

    def descriptions(self) -> List[str]:
        """The group descriptions as strings, in result order."""
        return [str(group.description) for group in self.groups]

    def recompute_support(self) -> int:
        """Recompute (and return) the support of the returned group set."""
        return group_support(self.groups)

    def summary(self) -> str:
        """Multi-line human-readable summary used by examples and reports."""
        lines = [
            f"{self.problem.name} via {self.algorithm}: "
            f"objective={self.objective_value:.4f} "
            f"({'feasible' if self.feasible else 'infeasible'}, "
            f"support={self.support}, k={self.k}, "
            f"time={self.elapsed_seconds * 1000.0:.1f} ms)"
        ]
        for key, value in sorted(self.constraint_scores.items()):
            lines.append(f"  constraint {key}: {value:.4f}")
        for group in self.groups:
            lines.append(f"  group {group.label()}")
        return "\n".join(lines)

    def as_row(self) -> Dict[str, object]:
        """Flatten the result into a dict for tabular reporting."""
        return {
            "problem": self.problem.name,
            "algorithm": self.algorithm,
            "objective": self.objective_value,
            "feasible": self.feasible,
            "support": self.support,
            "k": self.k,
            "elapsed_seconds": self.elapsed_seconds,
            "evaluations": self.evaluations,
        }

    # ------------------------------------------------------------------
    # Wire serde
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form of the full result (null results too).

        Groups are serialised by identity -- their conjunctive
        description plus the exact tuple rows they cover -- which is what
        "bit-identical group selections" means across a process boundary.
        Derived aggregates (user/item coverage, tag multisets,
        signatures) are reconstructable from the dataset and are not
        shipped; :meth:`from_dict` restores them when given the dataset.
        """
        return {
            "problem": self.problem.to_dict(),
            "algorithm": self.algorithm,
            "groups": [
                {
                    "predicates": [[column, value] for column, value in group.description.predicates],
                    "tuple_indices": [int(index) for index in group.tuple_indices],
                }
                for group in self.groups
            ],
            "objective_value": float(self.objective_value),
            "constraint_scores": {
                str(key): float(value) for key, value in self.constraint_scores.items()
            },
            "support": int(self.support),
            "feasible": bool(self.feasible),
            "elapsed_seconds": float(self.elapsed_seconds),
            "evaluations": int(self.evaluations),
            "metadata": json_safe(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object], dataset=None) -> "MiningResult":
        """Rebuild a result from :meth:`to_dict` output.

        When ``dataset`` (the corpus the solve ran over) is provided,
        each group's user/item coverage and tag multiset are rebuilt from
        its tuple indices; without it the groups carry their description
        and tuple indices only -- enough for display, equality and
        parity checks on the client side of a wire call.
        """
        groups: List[TaggingActionGroup] = []
        for entry in payload.get("groups", []):
            description = GroupDescription(
                predicates=tuple(
                    (str(column), str(value)) for column, value in entry["predicates"]
                )
            )
            indices = tuple(int(index) for index in entry["tuple_indices"])
            if dataset is not None:
                groups.append(
                    TaggingActionGroup(
                        description=description,
                        tuple_indices=indices,
                        user_ids=frozenset(dataset.users_for_indices(indices)),
                        item_ids=frozenset(dataset.items_for_indices(indices)),
                        tags=tuple(dataset.tags_for_indices(indices)),
                    )
                )
            else:
                groups.append(
                    TaggingActionGroup(description=description, tuple_indices=indices)
                )
        return cls(
            problem=TagDMProblem.from_dict(payload["problem"]),
            algorithm=str(payload["algorithm"]),
            groups=tuple(groups),
            objective_value=float(payload["objective_value"]),
            constraint_scores={
                str(key): float(value)
                for key, value in payload.get("constraint_scores", {}).items()
            },
            support=int(payload.get("support", 0)),
            feasible=bool(payload.get("feasible", False)),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            evaluations=int(payload.get("evaluations", 0)),
            metadata=dict(payload.get("metadata", {})),
        )
