"""Runtime publication-immutability sanitizer for frozen session views.

The HTAP serving design publishes an immutable :class:`~repro.core.
incremental.SessionView` per merge epoch; solver threads read it with
*no lock*.  That is only sound if a published view is deeply immutable:
one post-publication write to ``view.groups`` (or to an ndarray a group
carries) silently corrupts concurrent solves and breaks the
bit-identical parity guarantee the benchmarks rest on.

This module is the *runtime* half of that contract, mirroring the lock
witness (``repro.core.witness``): with the ``TAGDM_STATE_SANITIZER``
environment variable set, ``freeze()`` deep-wraps the view's published
containers in raise-on-write proxies --

* the group list becomes a :class:`FrozenList` whose mutators raise
  :class:`PublicationViolation`;
* every group signature ndarray (and the stacked signature matrix) is
  marked ``writeable=False``, so in-place element writes raise at the
  numpy layer;

-- and the chaos/HTAP CI jobs arm it exactly like
``TAGDM_LOCK_WITNESS=1``.  With the variable unset (the default and the
production configuration) nothing is wrapped: plain lists, writable
arrays, zero overhead.

The view's *lazily built* derived state (``_signatures`` when absent,
``_matrix_cache``, ``_lsh_cache``) is deliberately left writable: those
fields are legitimately written after ``freeze()`` under the view's own
``view.build`` lock (see the ownership table in
``tools/analyze/ownership.py``).

The static half lives in ``tools/analyze/races.py`` (RC5xx).
"""

from __future__ import annotations

import os
from typing import Callable

__all__ = [
    "SANITIZER_ENV",
    "FrozenDict",
    "FrozenList",
    "PublicationViolation",
    "freeze_array",
    "owned_by",
    "sanitizer_enabled",
    "seal_view",
]

SANITIZER_ENV = "TAGDM_STATE_SANITIZER"


def sanitizer_enabled() -> bool:
    """Whether the state sanitizer is armed (``TAGDM_STATE_SANITIZER``)."""
    return os.environ.get(SANITIZER_ENV, "").strip() not in ("", "0", "false")


class PublicationViolation(AssertionError):
    """A write reached state that was frozen at view publication."""


def _raiser(operation: str) -> Callable:
    def mutate(self, *args, **kwargs):
        raise PublicationViolation(
            f"{operation}() on a container frozen at view publication -- "
            "published SessionView state is immutable; mutate the live "
            "session under the shard's merge lock and publish a new epoch "
            "instead"
        )

    mutate.__name__ = operation
    return mutate


class FrozenList(list):
    """A list whose mutators raise :class:`PublicationViolation`.

    Reads (indexing, iteration, ``len``, slicing) behave exactly like a
    plain list, so solver code is unaffected; only writes trip.
    """

    __slots__ = ()

    append = _raiser("append")
    extend = _raiser("extend")
    insert = _raiser("insert")
    remove = _raiser("remove")
    pop = _raiser("pop")
    clear = _raiser("clear")
    sort = _raiser("sort")
    reverse = _raiser("reverse")
    __setitem__ = _raiser("__setitem__")
    __delitem__ = _raiser("__delitem__")
    __iadd__ = _raiser("__iadd__")
    __imul__ = _raiser("__imul__")


class FrozenDict(dict):
    """A dict whose mutators raise :class:`PublicationViolation`."""

    __slots__ = ()

    __setitem__ = _raiser("__setitem__")
    __delitem__ = _raiser("__delitem__")
    pop = _raiser("pop")
    popitem = _raiser("popitem")
    clear = _raiser("clear")
    update = _raiser("update")
    setdefault = _raiser("setdefault")


def freeze_array(value):
    """Mark an ndarray read-only when the sanitizer is armed.

    Duck-typed (``setflags``) so this module never imports numpy; passes
    non-arrays (and ``None``) through untouched.  Returns ``value`` for
    assignment-site use: ``self._signatures = freeze_array(matrix)``.
    """
    if value is not None and sanitizer_enabled():
        setflags = getattr(value, "setflags", None)
        if setflags is not None:
            try:
                setflags(write=False)
            except ValueError:  # pragma: no cover - non-owning array views
                pass
    return value


def seal_view(view) -> None:
    """Deep-freeze a just-published view's containers (when armed).

    Called at the end of ``SessionView.__init__``.  Wraps the group list
    and marks every captured signature array read-only.  The signature
    arrays are shared with the live session's group objects *by design*
    (inserts replace group-list entries rather than mutating captured
    groups), so sealing them also catches any in-place write reached
    through the live side.
    """
    if not sanitizer_enabled():
        return
    for group in view.groups:
        freeze_array(getattr(group, "signature", None))
    view.groups = FrozenList(view.groups)
    freeze_array(view._signatures)


def owned_by(**domains: str):
    """Declare attribute ownership domains on a class (static metadata).

    ``@owned_by(groups="frozen-after-publish", _lsh_cache="lock:view.build")``
    attaches the attribute -> domain mapping as ``__owned_by__`` and
    returns the class unchanged -- no runtime wrapper, no overhead.  The
    shared-state race detector (``tools/analyze``, RC5xx) merges these
    with the central table in ``tools/analyze/ownership.py`` and flags
    any write outside the declared domain's writer context.
    """

    def tag(cls):
        merged = dict(getattr(cls, "__owned_by__", {}))
        merged.update(domains)
        cls.__owned_by__ = merged
        return cls

    return tag
