"""Group tag signature generation and attribute vectorisation.

The first step of the paper's tag-dimension treatment (Section 2.1.2) is
to summarise the tags of every tagging-action group into a *group tag
signature* ``T_rep(g)``: a weight vector over a global set of topic
categories.  :class:`GroupSignatureBuilder` does that for a list of
groups using one of the topic-model backends from :mod:`repro.text`
(frequency, tf*idf or LDA -- the paper evaluates with LDA and d = 25).

The LSH folding algorithm (SM-LSH-Fo, Section 4.3) additionally needs the
categorical user/item description of every group "unarized" into a
boolean vector so it can be concatenated with the tag signature; that
one-hot encoding lives here too (:class:`AttributeVectorizer`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.groups import TaggingActionGroup
from repro.core.measures import Dimension
from repro.dataset.store import ITEM_PREFIX, USER_PREFIX, TaggingDataset
from repro.text.topics import TopicModel, build_topic_model

__all__ = ["GroupSignatureBuilder", "AttributeVectorizer", "signature_matrix"]


class GroupSignatureBuilder:
    """Compute ``T_rep(g)`` for every group using a topic-model backend.

    Parameters
    ----------
    topic_model:
        A fitted-or-unfitted :class:`~repro.text.topics.TopicModel`; if
        ``None`` a backend is built from ``backend`` / ``n_dimensions`` /
        ``seed``.
    backend:
        Backend name for the factory when ``topic_model`` is ``None``
        (``"frequency"``, ``"tfidf"`` or ``"lda"``).
    n_dimensions:
        Signature dimensionality ``d`` (the paper's evaluation uses 25).
    seed:
        Seed passed to stochastic backends (LDA).
    lda_iterations:
        Gibbs sweeps for the LDA backend; kept modest by default because
        the signature builder is on the critical path of every example
        and benchmark.
    """

    def __init__(
        self,
        topic_model: Optional[TopicModel] = None,
        backend: str = "frequency",
        n_dimensions: int = 25,
        seed: int = 0,
        lda_iterations: int = 60,
    ) -> None:
        if topic_model is not None:
            self._model = topic_model
        else:
            self._model = build_topic_model(
                backend=backend,
                n_dimensions=n_dimensions,
                seed=seed,
                lda_iterations=lda_iterations,
            )
        self._fitted = False

    @property
    def topic_model(self) -> TopicModel:
        """The underlying topic model."""
        return self._model

    @property
    def n_dimensions(self) -> int:
        """Signature vector length ``d``."""
        return self._model.n_dimensions

    @property
    def is_fitted(self) -> bool:
        """Whether the topic model has been fitted (by :meth:`fit` or build)."""
        return self._fitted

    @classmethod
    def from_fitted(cls, topic_model: TopicModel) -> "GroupSignatureBuilder":
        """Wrap an already-fitted topic model (session snapshot warm loads).

        The returned builder vectorises immediately without refitting, so
        signatures computed through it are bit-identical to the ones the
        model produced before it was persisted.
        """
        builder = cls(topic_model=topic_model)
        builder._fitted = True
        return builder

    def fit(self, groups: Sequence[TaggingActionGroup]) -> "GroupSignatureBuilder":
        """Fit the topic model on the groups' tag documents."""
        if not groups:
            raise ValueError("cannot fit a signature builder on zero groups")
        documents = [list(group.tags) for group in groups]
        self._model.fit(documents)
        self._fitted = True
        return self

    def signature(self, group: TaggingActionGroup) -> np.ndarray:
        """Compute (and cache on the group) the signature of one group."""
        if not self._fitted:
            raise RuntimeError("GroupSignatureBuilder must be fitted before use")
        vector = self._model.vectorize(list(group.tags))
        group.signature = np.asarray(vector, dtype=float)
        return group.signature

    def build(self, groups: Sequence[TaggingActionGroup]) -> np.ndarray:
        """Compute signatures for all ``groups`` (fitting first if needed).

        Returns the stacked ``(n_groups, d)`` signature matrix; each
        group's ``signature`` attribute is also filled in.  The matrix is
        produced with one ``vectorize_many`` call so batch-capable
        backends (frequency, tf*idf) vectorise the whole corpus in one
        shot instead of once per group.
        """
        if not self._fitted:
            self.fit(groups)
        if not groups:
            return np.zeros((0, self.n_dimensions))
        documents = [list(group.tags) for group in groups]
        matrix = np.asarray(self._model.vectorize_many(documents), dtype=float)
        for row, group in enumerate(groups):
            group.signature = matrix[row].copy()
        return matrix

    def dimension_labels(self) -> List[str]:
        """Human-readable labels of the signature dimensions."""
        return self._model.dimension_labels()


def signature_matrix(groups: Sequence[TaggingActionGroup]) -> np.ndarray:
    """Stack the already-computed signatures of ``groups`` into a matrix."""
    if not groups:
        return np.zeros((0, 0))
    return np.vstack([group.require_signature() for group in groups])


@dataclass
class AttributeVectorizer:
    """One-hot encode group descriptions for signature folding.

    The encoder learns, per requested dimension, the set of
    ``(attribute, value)`` pairs present in the dataset and maps a group
    description to a boolean vector with a 1 for every pair the
    description contains.  SM-LSH-Fo concatenates these vectors with the
    tag signature so that groups with similar descriptions *and* similar
    tags collide (Section 4.3); the dimensionality matches the paper's
    ``sum_i sum_j |a_i = v_j|`` accounting.
    """

    dataset: TaggingDataset
    dimensions: Tuple[Dimension, ...] = (Dimension.USERS, Dimension.ITEMS)
    scale: float = 1.0

    def __post_init__(self) -> None:
        self._slots: Dict[Tuple[str, str], int] = {}
        prefixes = []
        if Dimension.USERS in self.dimensions:
            prefixes.append(USER_PREFIX)
        if Dimension.ITEMS in self.dimensions:
            prefixes.append(ITEM_PREFIX)
        for column in self.dataset.columns:
            if not any(column.startswith(prefix) for prefix in prefixes):
                continue
            for value in self.dataset.distinct_values(column):
                self._slots[(column, value)] = len(self._slots)

    @property
    def n_dimensions(self) -> int:
        """Width of the one-hot encoding."""
        return len(self._slots)

    def vectorize(self, group: TaggingActionGroup) -> np.ndarray:
        """Encode one group description into a (scaled) boolean vector."""
        vector = np.zeros(self.n_dimensions, dtype=float)
        for column, value in group.description.predicates:
            slot = self._slots.get((column, value))
            if slot is not None:
                vector[slot] = self.scale
        return vector

    def vectorize_many(self, groups: Sequence[TaggingActionGroup]) -> np.ndarray:
        """Encode a batch of groups into an ``(n, width)`` matrix.

        All slot hits are collected first and written with a single
        fancy-indexed assignment instead of one row vector per group.
        """
        if not groups:
            return np.zeros((0, self.n_dimensions))
        rows: list = []
        columns: list = []
        for row, group in enumerate(groups):
            for column, value in group.description.predicates:
                slot = self._slots.get((column, value))
                if slot is not None:
                    rows.append(row)
                    columns.append(slot)
        matrix = np.zeros((len(groups), self.n_dimensions), dtype=float)
        if rows:
            matrix[rows, columns] = self.scale
        return matrix

    def fold_with_signatures(
        self, groups: Sequence[TaggingActionGroup]
    ) -> np.ndarray:
        """Concatenate one-hot description vectors with tag signatures.

        This is the long vector of Section 4.3: dimensionality
        ``d + sum |a_i = v_j|`` (over the folded dimensions).
        """
        one_hot = self.vectorize_many(groups)
        signatures = signature_matrix(groups)
        if one_hot.shape[0] != signatures.shape[0]:
            raise ValueError("groups must all carry signatures before folding")
        return np.hstack([one_hot, signatures])
