"""Runtime lock-order witness: named locks, acquisition edges, inversions.

The serving stack's deadlock freedom rests on one global acquisition
order (documented in TOOLING.md and statically checked by
``tools/analyze``).  This module is the *runtime* half of that contract:
every lock in the concurrency-bearing layers is constructed through
:func:`named_lock` / :func:`named_rlock` (or, for the shard's ticket
lock, carries a ``name``), and when the ``TAGDM_LOCK_WITNESS``
environment variable is set the factories return thin wrapper objects
that report every acquisition to a process-wide
:class:`LockOrderWitness`.

The witness keeps a per-thread stack of held lock names and a global
edge set ``outer -> inner`` (first-observation stack traces included).
An *inversion* is either

* a **rank violation**: an observed edge ``A -> B`` where ``A`` ranks
  *below* ``B`` in :data:`LOCK_HIERARCHY`, or
* a **cycle** among observed edges (covers locks outside the declared
  hierarchy too).

With the environment variable unset (the default, and the production
configuration) the factories return plain :mod:`threading` primitives
-- zero wrappers, zero overhead, nothing monkeypatched.

``LOCK_HIERARCHY`` here is the canonical runtime copy; the static
analyzer (``tools/analyze/hierarchy.py``) carries the same order with
per-lock metadata and cross-checks the two tuples so they cannot drift.
"""

from __future__ import annotations

import os
import threading
import traceback
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "LOCK_HIERARCHY",
    "WITNESS_ENV",
    "LockOrderViolation",
    "LockOrderWitness",
    "get_witness",
    "locked_by",
    "named_lock",
    "named_rlock",
    "reset_witness",
    "witness_enabled",
]

WITNESS_ENV = "TAGDM_LOCK_WITNESS"

#: Canonical lock acquisition order, outermost first: a thread holding
#: lock ``i`` may only acquire locks with index ``> i``.  Locks that are
#: never held together are still totally ordered here -- a total order
#: is trivially cycle-free and spares every future PR a case analysis.
LOCK_HIERARCHY: Tuple[str, ...] = (
    "fleet.lifecycle",  # FleetWorker.lifecycle_lock: spawn/stop transitions
    "fleet.registry",  # TagDMFleet._lock: worker handle state
    "server.registry",  # TagDMServer._registry_lock: corpus registry
    "shard.submit",  # CorpusShard._submit_lock: closed-check + enqueue
    "shard.maintenance",  # CorpusShard._maintenance_lock: fold/rotate
    "shard.merge",  # CorpusShard._lock: ticket RW lock (delta apply / fold)
    "shard.stats",  # CorpusShard._stats_lock: counters, view, epoch pins
    "subs.state",  # SubscriptionEvaluator._lock: pending view + counters
    "store.lock",  # SqliteTaggingStore._lock: connection serialisation
    "view.build",  # SessionView._build_lock: lazy derived-state builds
    "placement.table",  # PlacementTable._lock: corpus -> worker map
    "router.breakers",  # TagDMRouter._breakers_lock: breaker registry
    "router.pools",  # TagDMRouter._pools_lock: per-worker pools
    "router.stats",  # TagDMRouter._stats_lock: forwarding counters
    "client.placement",  # FleetClient._lock: placement cache + clients
    "pool.lock",  # HttpConnectionPool._lock: idle connection list
    "breaker.state",  # CircuitBreaker._lock: state machine fields
    "budget.rng",  # RetryBudget._lock: jitter RNG draws
    "faultplan.state",  # FaultPlan._lock: arrival/fired counters
)

_RANK: Dict[str, int] = {name: index for index, name in enumerate(LOCK_HIERARCHY)}


def witness_enabled() -> bool:
    """Whether the lock-order witness is armed (``TAGDM_LOCK_WITNESS``)."""
    return os.environ.get(WITNESS_ENV, "").strip() not in ("", "0", "false")


class LockOrderViolation(AssertionError):
    """Raised by :meth:`LockOrderWitness.assert_clean` on any inversion."""


class _Edge:
    """First observation of one ``outer -> inner`` acquisition edge."""

    __slots__ = ("outer", "inner", "count", "thread_name", "stack")

    def __init__(self, outer: str, inner: str, thread_name: str, stack: str) -> None:
        self.outer = outer
        self.inner = inner
        self.count = 1
        self.thread_name = thread_name
        self.stack = stack


class LockOrderWitness:
    """Records lock-acquisition edges and reports order inversions.

    Thread-safe; one process-wide instance (see :func:`get_witness`)
    aggregates edges across every thread.  Reentrant holds of the same
    name (RLock semantics) are collapsed -- only the outermost hold
    contributes edges.
    """

    def __init__(self) -> None:
        self._guard = threading.Lock()  # internal; never witnessed
        self._held = threading.local()
        self._edges: Dict[Tuple[str, str], _Edge] = {}

    # -- per-thread held stack ------------------------------------------
    def _stack(self) -> List[str]:
        stack = getattr(self._held, "names", None)
        if stack is None:
            stack = []
            self._held.names = stack
        return stack

    def held_by_current_thread(self, name: str) -> bool:
        """Whether the calling thread currently holds lock ``name``."""
        return name in self._stack()

    # -- recording ------------------------------------------------------
    def note_acquire(self, name: str) -> None:
        """Record that the calling thread acquired lock ``name``."""
        stack = self._stack()
        if name not in stack:  # reentrant holds add no edges
            new_edges = [(outer, name) for outer in stack if (outer, name) not in self._edges]
            if new_edges:
                # strip only note_acquire's own frame: the caller (the
                # acquiring code, or the _WitnessedLock wrapper above
                # it) is exactly what a violation report needs to show.
                trace = "".join(traceback.format_stack(limit=24)[:-1])
                thread_name = threading.current_thread().name
                with self._guard:
                    for key in new_edges:
                        if key not in self._edges:
                            self._edges[key] = _Edge(key[0], key[1], thread_name, trace)
                        else:
                            self._edges[key].count += 1
            else:
                with self._guard:
                    for outer in stack:
                        edge = self._edges.get((outer, name))
                        if edge is not None:
                            edge.count += 1
        stack.append(name)

    def note_release(self, name: str) -> None:
        """Record that the calling thread released lock ``name``."""
        stack = self._stack()
        # Release the innermost hold of this name (LIFO discipline).
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == name:
                del stack[index]
                return

    # -- reporting ------------------------------------------------------
    def edges(self) -> Dict[Tuple[str, str], _Edge]:
        """A snapshot of every observed ``outer -> inner`` edge."""
        with self._guard:
            return dict(self._edges)

    def inversions(self) -> List[str]:
        """Human-readable reports, one per rank violation or cycle.

        Each report carries the first-observation stack trace of every
        offending edge, so an A->B / B->A inversion shows *both* sides.
        """
        edges = self.edges()
        reports: List[str] = []
        for (outer, inner), edge in sorted(edges.items()):
            outer_rank = _RANK.get(outer)
            inner_rank = _RANK.get(inner)
            if outer_rank is None or inner_rank is None:
                continue  # undeclared names are covered by cycle detection
            if outer_rank > inner_rank:
                report = [
                    f"rank violation: {outer!r} (rank {outer_rank}) held while "
                    f"acquiring {inner!r} (rank {inner_rank}); the hierarchy "
                    f"orders {inner!r} outside {outer!r}",
                    f"  observed {edge.count}x, first on thread "
                    f"{edge.thread_name!r}:",
                    _indent(edge.stack),
                ]
                reverse = edges.get((inner, outer))
                if reverse is not None:
                    report.append(
                        f"  reverse edge {inner!r} -> {outer!r} observed "
                        f"{reverse.count}x, first on thread "
                        f"{reverse.thread_name!r}:"
                    )
                    report.append(_indent(reverse.stack))
                reports.append("\n".join(report))
        for cycle in self._cycles(edges):
            lines = [
                "cycle among observed acquisition edges: "
                + " -> ".join(cycle + [cycle[0]])
            ]
            for outer, inner in zip(cycle, cycle[1:] + [cycle[0]]):
                edge = edges[(outer, inner)]
                lines.append(
                    f"  edge {outer!r} -> {inner!r} ({edge.count}x, first on "
                    f"thread {edge.thread_name!r}):"
                )
                lines.append(_indent(edge.stack))
            reports.append("\n".join(lines))
        return reports

    @staticmethod
    def _cycles(edges: Dict[Tuple[str, str], _Edge]) -> List[List[str]]:
        graph: Dict[str, List[str]] = {}
        for outer, inner in edges:
            graph.setdefault(outer, []).append(inner)
        seen: set = set()
        cycles: List[List[str]] = []
        reported: set = set()

        def visit(node: str, path: List[str], on_path: set) -> None:
            seen.add(node)
            path.append(node)
            on_path.add(node)
            for neighbour in sorted(graph.get(node, [])):
                if neighbour in on_path:
                    cycle = path[path.index(neighbour):]
                    key = frozenset(cycle)
                    if key not in reported:
                        reported.add(key)
                        cycles.append(list(cycle))
                elif neighbour not in seen:
                    visit(neighbour, path, on_path)
            path.pop()
            on_path.discard(node)

        for node in sorted(graph):
            if node not in seen:
                visit(node, [], set())
        return cycles

    def assert_clean(self) -> None:
        """Raise :class:`LockOrderViolation` if any inversion was seen."""
        reports = self.inversions()
        if reports:
            raise LockOrderViolation(
                f"{len(reports)} lock-order inversion(s) observed:\n\n"
                + "\n\n".join(reports)
            )

    def reset(self) -> None:
        """Drop every recorded edge (held stacks are left alone)."""
        with self._guard:
            self._edges.clear()


_witness: Optional[LockOrderWitness] = None
_witness_guard = threading.Lock()


def get_witness() -> LockOrderWitness:
    """The process-wide witness (created on first use)."""
    global _witness
    with _witness_guard:
        if _witness is None:
            _witness = LockOrderWitness()
        return _witness


def reset_witness() -> None:
    """Replace the process-wide witness with a fresh one (tests)."""
    global _witness
    with _witness_guard:
        _witness = LockOrderWitness()


class _WitnessedLock:
    """A named wrapper around one :mod:`threading` lock primitive.

    Not a monkeypatch: callers get this object *instead of* a raw lock,
    only when the witness is armed.  Supports the subset of the lock
    protocol the repo uses (``with``, ``acquire``/``release``,
    ``locked``).
    """

    __slots__ = ("name", "_inner", "_witness")

    def __init__(self, name: str, inner, witness: LockOrderWitness) -> None:
        self.name = name
        self._inner = inner
        self._witness = witness

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._witness.note_acquire(self.name)
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._witness.note_release(self.name)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<witnessed {self._inner!r} name={self.name!r}>"


def named_lock(name: str) -> "threading.Lock":
    """A mutex participating in the witness under ``name`` when armed."""
    if witness_enabled():
        return _WitnessedLock(name, threading.Lock(), get_witness())
    return threading.Lock()


def named_rlock(name: str) -> "threading.RLock":
    """A reentrant mutex participating in the witness under ``name``."""
    if witness_enabled():
        return _WitnessedLock(name, threading.RLock(), get_witness())
    return threading.RLock()


def locked_by(*names: str) -> Callable:
    """Declare the lock context a callable runs under (static metadata).

    ``@locked_by("shard.merge")`` marks a method as a *writer context*:
    in the concurrent serving stack it must only run while the named
    lock is held (or from a call site annotated
    ``# analyze: writer-context``).  The decorator attaches the names as
    ``__locked_by__`` and returns the function unchanged -- no runtime
    wrapper, no overhead; ``tools/analyze`` (the ``writer-context``
    check) enforces the contract statically.
    """

    def tag(func: Callable) -> Callable:
        func.__locked_by__ = tuple(names)
        return func

    return tag


def _indent(text: str, prefix: str = "    ") -> str:
    return "\n".join(prefix + line for line in text.rstrip().splitlines())
