"""Tagging data substrate.

This package provides the data layer the TagDM framework (``repro.core``)
operates on:

* :class:`~repro.dataset.store.TaggingDataset` -- an in-memory columnar
  store of expanded tagging-action tuples with attribute indices and
  predicate filtering (the paper's set ``G`` of tuples ``r``).
* Loaders for simple CSV / record formats
  (:mod:`repro.dataset.loaders`).
* Synthetic generators that stand in for the paper's MovieLens + IMDB
  merge and for Delicious / Flickr style corpora
  (:mod:`repro.dataset.synthetic`, :mod:`repro.dataset.delicious`,
  :mod:`repro.dataset.flickr`).
* A Zipf-distributed tag vocabulary model (:mod:`repro.dataset.vocab`).
"""

from repro.dataset.store import TaggingDataset, DatasetStats
from repro.dataset.loaders import (
    dataset_from_records,
    dataset_to_records,
    load_csv,
    load_sqlite,
    save_csv,
    save_sqlite,
)
from repro.dataset.sqlite_store import SqliteTaggingStore
from repro.dataset.vocab import TagVocabulary, ZipfTagModel
from repro.dataset.synthetic import (
    MovieLensStyleConfig,
    MovieLensStyleGenerator,
    generate_movielens_style,
)
from repro.dataset.delicious import DeliciousStyleConfig, generate_delicious_style
from repro.dataset.flickr import FlickrStyleConfig, generate_flickr_style
from repro.dataset.microblog import MicroblogStyleConfig, generate_microblog_style

__all__ = [
    "TaggingDataset",
    "DatasetStats",
    "dataset_from_records",
    "dataset_to_records",
    "load_csv",
    "save_csv",
    "load_sqlite",
    "save_sqlite",
    "SqliteTaggingStore",
    "TagVocabulary",
    "ZipfTagModel",
    "MovieLensStyleConfig",
    "MovieLensStyleGenerator",
    "generate_movielens_style",
    "DeliciousStyleConfig",
    "generate_delicious_style",
    "FlickrStyleConfig",
    "generate_flickr_style",
    "MicroblogStyleConfig",
    "generate_microblog_style",
]
