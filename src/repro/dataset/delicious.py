"""Synthetic Delicious-style bookmark tagging corpus.

The paper's introduction motivates TagDM with del.icio.us, where users
bookmark and tag web pages.  This generator produces a corpus with that
shape: users described by ``expertise`` and ``region``, bookmarks (the
items) described by ``domain`` and ``topic``, and tag sets dominated by
functional bookmarking vocabulary (``toread``, ``reference``,
``tutorial``...) mixed with topic-specific tokens.  It exists so the
examples and tests can exercise the framework on a second domain with a
different attribute schema from the MovieLens-style corpus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dataset.store import TaggingDataset
from repro.dataset.vocab import ZipfTagModel

__all__ = ["DeliciousStyleConfig", "generate_delicious_style"]

EXPERTISE_LEVELS: Tuple[str, ...] = ("novice", "intermediate", "expert")
REGIONS: Tuple[str, ...] = ("north-america", "europe", "asia", "south-america", "other")
DOMAINS: Tuple[str, ...] = (
    "programming",
    "design",
    "science",
    "news",
    "cooking",
    "travel",
    "finance",
    "education",
    "music",
    "photography",
)
PAGE_TYPES: Tuple[str, ...] = ("article", "tutorial", "tool", "video", "reference")

FUNCTIONAL_TAGS: Tuple[str, ...] = (
    "toread",
    "reference",
    "tutorial",
    "howto",
    "inspiration",
    "later",
    "work",
    "free",
    "cool",
    "useful",
)

USER_SCHEMA: Tuple[str, ...] = ("expertise", "region")
ITEM_SCHEMA: Tuple[str, ...] = ("domain", "page_type")


@dataclass
class DeliciousStyleConfig:
    """Scale knobs for the Delicious-style generator."""

    n_users: int = 200
    n_bookmarks: int = 500
    n_actions: int = 3000
    vocabulary_size: int = 1200
    n_topics: int = len(DOMAINS)
    tags_per_action_mean: float = 4.0
    tags_per_action_max: int = 10
    functional_tag_probability: float = 0.35
    seed: int = 11

    def __post_init__(self) -> None:
        if min(self.n_users, self.n_bookmarks, self.n_actions) <= 0:
            raise ValueError("corpus dimensions must be positive")
        if not 0.0 <= self.functional_tag_probability <= 1.0:
            raise ValueError("functional_tag_probability must lie in [0, 1]")


def generate_delicious_style(
    config: Optional[DeliciousStyleConfig] = None,
    name: str = "delicious-style",
) -> TaggingDataset:
    """Generate a Delicious-style bookmark tagging dataset."""
    config = config or DeliciousStyleConfig()
    rng = np.random.default_rng(config.seed)
    tag_model = ZipfTagModel(
        vocabulary_size=config.vocabulary_size,
        n_topics=config.n_topics,
        seed=config.seed + 1,
        token_prefix="dl",
    )

    dataset = TaggingDataset(USER_SCHEMA, ITEM_SCHEMA, name=name)

    user_expertise: List[str] = []
    for index in range(config.n_users):
        expertise = str(rng.choice(EXPERTISE_LEVELS, p=(0.5, 0.3, 0.2)))
        region = str(rng.choice(REGIONS))
        user_expertise.append(expertise)
        dataset.register_user(
            f"du{index:05d}", {"expertise": expertise, "region": region}
        )

    # Each domain is identified with one latent topic index.
    domain_to_topic: Dict[str, int] = {
        domain: position % config.n_topics for position, domain in enumerate(DOMAINS)
    }
    bookmark_domains: List[str] = []
    for index in range(config.n_bookmarks):
        domain = str(rng.choice(DOMAINS))
        page_type = str(rng.choice(PAGE_TYPES))
        bookmark_domains.append(domain)
        dataset.register_item(
            f"bm{index:05d}", {"domain": domain, "page_type": page_type}
        )

    user_draws = rng.integers(0, config.n_users, size=config.n_actions)
    item_draws = rng.integers(0, config.n_bookmarks, size=config.n_actions)
    tag_counts = np.clip(
        rng.poisson(config.tags_per_action_mean, size=config.n_actions),
        1,
        config.tags_per_action_max,
    )

    for row in range(config.n_actions):
        user_index = int(user_draws[row])
        item_index = int(item_draws[row])
        domain = bookmark_domains[item_index]
        mixture = np.full(config.n_topics, 0.02)
        mixture[domain_to_topic[domain]] += 1.0
        # Experts use deeper topical vocabulary; novices lean on
        # functional tags, which the explicit functional pool models.
        expertise = user_expertise[user_index]
        topical_tags = tag_model.sample_tags(mixture, int(tag_counts[row]), rng=rng)
        tags: List[str] = []
        for tag in topical_tags:
            functional_bias = {
                "novice": 1.4,
                "intermediate": 1.0,
                "expert": 0.5,
            }[expertise]
            if rng.random() < config.functional_tag_probability * functional_bias:
                tags.append(str(rng.choice(FUNCTIONAL_TAGS)))
            else:
                tags.append(tag)
        dataset.add_action(f"du{user_index:05d}", f"bm{item_index:05d}", tags)
    return dataset
