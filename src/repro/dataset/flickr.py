"""Synthetic Flickr-style photo tagging corpus.

Flickr is the second motivating site named in the paper's abstract.  The
generator below produces photo tagging actions where users are described
by ``camera`` (enthusiast segment) and ``country``, photos by ``scene``
and ``season``, and tag sets blend scene vocabulary with camera /
technique jargon.  Like the other generators it is seeded and
deterministic, and exists to exercise the public API on a third schema.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dataset.store import TaggingDataset
from repro.dataset.vocab import ZipfTagModel

__all__ = ["FlickrStyleConfig", "generate_flickr_style"]

CAMERAS: Tuple[str, ...] = ("phone", "compact", "dslr", "mirrorless")
COUNTRIES: Tuple[str, ...] = (
    "usa",
    "uk",
    "france",
    "germany",
    "japan",
    "brazil",
    "india",
    "australia",
)
SCENES: Tuple[str, ...] = (
    "landscape",
    "portrait",
    "street",
    "wildlife",
    "architecture",
    "macro",
    "night",
    "sports",
    "travel",
    "food",
)
SEASONS: Tuple[str, ...] = ("spring", "summer", "autumn", "winter")

TECHNIQUE_TAGS: Tuple[str, ...] = (
    "bokeh",
    "longexposure",
    "hdr",
    "blackandwhite",
    "golden-hour",
    "wideangle",
    "telephoto",
    "raw",
)

USER_SCHEMA: Tuple[str, ...] = ("camera", "country")
ITEM_SCHEMA: Tuple[str, ...] = ("scene", "season")


@dataclass
class FlickrStyleConfig:
    """Scale knobs for the Flickr-style generator."""

    n_users: int = 150
    n_photos: int = 600
    n_actions: int = 2500
    vocabulary_size: int = 1000
    n_topics: int = len(SCENES)
    tags_per_action_mean: float = 5.0
    tags_per_action_max: int = 12
    technique_tag_probability: float = 0.3
    seed: int = 23

    def __post_init__(self) -> None:
        if min(self.n_users, self.n_photos, self.n_actions) <= 0:
            raise ValueError("corpus dimensions must be positive")
        if not 0.0 <= self.technique_tag_probability <= 1.0:
            raise ValueError("technique_tag_probability must lie in [0, 1]")


def generate_flickr_style(
    config: Optional[FlickrStyleConfig] = None,
    name: str = "flickr-style",
) -> TaggingDataset:
    """Generate a Flickr-style photo tagging dataset."""
    config = config or FlickrStyleConfig()
    rng = np.random.default_rng(config.seed)
    tag_model = ZipfTagModel(
        vocabulary_size=config.vocabulary_size,
        n_topics=config.n_topics,
        seed=config.seed + 1,
        token_prefix="fl",
    )

    dataset = TaggingDataset(USER_SCHEMA, ITEM_SCHEMA, name=name)

    user_cameras: List[str] = []
    for index in range(config.n_users):
        camera = str(rng.choice(CAMERAS, p=(0.4, 0.2, 0.25, 0.15)))
        country = str(rng.choice(COUNTRIES))
        user_cameras.append(camera)
        dataset.register_user(
            f"fu{index:05d}", {"camera": camera, "country": country}
        )

    scene_to_topic: Dict[str, int] = {
        scene: position % config.n_topics for position, scene in enumerate(SCENES)
    }
    photo_scenes: List[str] = []
    for index in range(config.n_photos):
        scene = str(rng.choice(SCENES))
        season = str(rng.choice(SEASONS))
        photo_scenes.append(scene)
        dataset.register_item(f"ph{index:05d}", {"scene": scene, "season": season})

    user_draws = rng.integers(0, config.n_users, size=config.n_actions)
    item_draws = rng.integers(0, config.n_photos, size=config.n_actions)
    tag_counts = np.clip(
        rng.poisson(config.tags_per_action_mean, size=config.n_actions),
        1,
        config.tags_per_action_max,
    )

    for row in range(config.n_actions):
        user_index = int(user_draws[row])
        item_index = int(item_draws[row])
        scene = photo_scenes[item_index]
        mixture = np.full(config.n_topics, 0.02)
        mixture[scene_to_topic[scene]] += 1.0
        tags = tag_model.sample_tags(mixture, int(tag_counts[row]), rng=rng)
        # Serious-camera users sprinkle in technique jargon, which keeps
        # the {camera=dslr} style user groups separable in tag space.
        technique_bias = {
            "phone": 0.3,
            "compact": 0.6,
            "dslr": 1.5,
            "mirrorless": 1.3,
        }[user_cameras[user_index]]
        enriched: List[str] = []
        for tag in tags:
            if rng.random() < config.technique_tag_probability * technique_bias:
                enriched.append(str(rng.choice(TECHNIQUE_TAGS)))
            else:
                enriched.append(tag)
        dataset.add_action(f"fu{user_index:05d}", f"ph{item_index:05d}", enriched)
    return dataset
