"""Loading and saving tagging datasets.

The paper ingests the MovieLens 1M/10M dumps merged with IMDB attributes.
Offline we cannot ship those dumps, but downstream users of this library
will have their own tagging logs, so this module provides a simple,
dependency-free record format plus CSV round-tripping:

* record dicts -- ``{"user_id", "item_id", "tags", "rating", "user.<a>",
  "item.<a>"}`` -- convertible to and from :class:`TaggingDataset`;
* a CSV layout with one row per tagging action, tags joined by ``|``;
* a durable SQLite layout (:func:`save_sqlite` / :func:`load_sqlite`,
  thin wrappers over :class:`~repro.dataset.sqlite_store.SqliteTaggingStore`).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.dataset.store import ITEM_PREFIX, USER_PREFIX, TaggingDataset

__all__ = [
    "dataset_from_records",
    "dataset_to_records",
    "load_csv",
    "save_csv",
    "load_sqlite",
    "save_sqlite",
]

TAG_SEPARATOR = "|"


def _split_record(
    record: Mapping[str, object],
    user_schema: Sequence[str],
    item_schema: Sequence[str],
) -> Dict[str, object]:
    """Normalise one raw record into ids, attribute dicts, tags, rating."""
    user_attrs = {
        attr: str(record.get(USER_PREFIX + attr, "unknown")) for attr in user_schema
    }
    item_attrs = {
        attr: str(record.get(ITEM_PREFIX + attr, "unknown")) for attr in item_schema
    }
    raw_tags = record.get("tags", ())
    if isinstance(raw_tags, str):
        tags = [t for t in raw_tags.split(TAG_SEPARATOR) if t]
    else:
        tags = [str(t) for t in raw_tags]
    raw_rating = record.get("rating")
    rating: Optional[float]
    if raw_rating in (None, ""):
        rating = None
    else:
        rating = float(raw_rating)  # type: ignore[arg-type]
    return {
        "user_id": str(record["user_id"]),
        "item_id": str(record["item_id"]),
        "user_attrs": user_attrs,
        "item_attrs": item_attrs,
        "tags": tags,
        "rating": rating,
    }


def _infer_schemas(records: Sequence[Mapping[str, object]]) -> tuple:
    """Infer user/item schemas from prefixed keys present in the records."""
    user_attrs: List[str] = []
    item_attrs: List[str] = []
    seen_user = set()
    seen_item = set()
    for record in records:
        for key in record:
            if key.startswith(USER_PREFIX):
                attr = key[len(USER_PREFIX):]
                if attr not in seen_user:
                    seen_user.add(attr)
                    user_attrs.append(attr)
            elif key.startswith(ITEM_PREFIX):
                attr = key[len(ITEM_PREFIX):]
                if attr not in seen_item:
                    seen_item.add(attr)
                    item_attrs.append(attr)
    return tuple(user_attrs), tuple(item_attrs)


def dataset_from_records(
    records: Iterable[Mapping[str, object]],
    user_schema: Optional[Sequence[str]] = None,
    item_schema: Optional[Sequence[str]] = None,
    name: str = "records",
) -> TaggingDataset:
    """Build a :class:`TaggingDataset` from an iterable of record dicts.

    Each record must carry ``user_id``, ``item_id`` and ``tags`` (list or
    ``|``-joined string); user/item attributes use the prefixed keys
    ``user.<attr>`` / ``item.<attr>``.  Schemas are inferred from the
    records when not given explicitly.
    """
    materialised = list(records)
    if not materialised:
        raise ValueError("cannot build a dataset from zero records")
    if user_schema is None or item_schema is None:
        inferred_user, inferred_item = _infer_schemas(materialised)
        user_schema = user_schema if user_schema is not None else inferred_user
        item_schema = item_schema if item_schema is not None else inferred_item

    dataset = TaggingDataset(user_schema, item_schema, name=name)
    for record in materialised:
        parts = _split_record(record, user_schema, item_schema)
        user_id = parts["user_id"]
        item_id = parts["item_id"]
        if not dataset.has_user(user_id):
            dataset.register_user(user_id, parts["user_attrs"])
        if not dataset.has_item(item_id):
            dataset.register_item(item_id, parts["item_attrs"])
        dataset.add_action(user_id, item_id, parts["tags"], parts["rating"])
    return dataset


def dataset_to_records(dataset: TaggingDataset) -> List[Dict[str, object]]:
    """Serialise a dataset back into a list of flat record dicts."""
    records: List[Dict[str, object]] = []
    for action in dataset.actions():
        record: Dict[str, object] = {
            "user_id": action.user_id,
            "item_id": action.item_id,
            "tags": list(action.tags),
            "rating": action.rating,
        }
        for attr, value in action.user_attributes.items():
            record[USER_PREFIX + attr] = value
        for attr, value in action.item_attributes.items():
            record[ITEM_PREFIX + attr] = value
        records.append(record)
    return records


def save_csv(dataset: TaggingDataset, path: Union[str, Path]) -> Path:
    """Write the dataset to ``path`` as CSV (one row per tagging action)."""
    path = Path(path)
    fieldnames = (
        ["user_id", "item_id", "tags", "rating"]
        + [USER_PREFIX + attr for attr in dataset.user_schema]
        + [ITEM_PREFIX + attr for attr in dataset.item_schema]
    )
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for action in dataset.actions():
            row: Dict[str, object] = {
                "user_id": action.user_id,
                "item_id": action.item_id,
                "tags": TAG_SEPARATOR.join(action.tags),
                "rating": "" if action.rating is None else action.rating,
            }
            for attr, value in action.user_attributes.items():
                row[USER_PREFIX + attr] = value
            for attr, value in action.item_attributes.items():
                row[ITEM_PREFIX + attr] = value
            writer.writerow(row)
    return path


def load_csv(
    path: Union[str, Path],
    user_schema: Optional[Sequence[str]] = None,
    item_schema: Optional[Sequence[str]] = None,
    name: Optional[str] = None,
) -> TaggingDataset:
    """Load a dataset previously written by :func:`save_csv`."""
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        records = list(reader)
    if not records:
        raise ValueError(f"{path} contains no tagging actions")
    return dataset_from_records(
        records,
        user_schema=user_schema,
        item_schema=item_schema,
        name=name or path.stem,
    )


def save_sqlite(dataset: TaggingDataset, path: Union[str, Path]) -> Path:
    """Persist the dataset into an SQLite store at ``path``.

    One-shot convenience over
    :meth:`~repro.dataset.sqlite_store.SqliteTaggingStore.from_dataset`;
    keep the store object instead when you intend to append actions.
    """
    from repro.dataset.sqlite_store import SqliteTaggingStore

    SqliteTaggingStore.from_dataset(dataset, path).close()
    return Path(path)


def load_sqlite(path: Union[str, Path], name: Optional[str] = None) -> TaggingDataset:
    """Load a dataset previously written by :func:`save_sqlite`."""
    from repro.dataset.sqlite_store import SqliteTaggingStore

    with SqliteTaggingStore(path) as store:
        return store.to_dataset(name=name)
