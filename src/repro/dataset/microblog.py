"""Synthetic microblog (tweets-about-events) tagging corpus.

The paper's conclusion names topic-centric exploration of tweets and news
as the intended next application domain ("mining and characterizing
events in tweets and news").  This generator produces that shape of data
so the framework extension can be exercised offline: items are news
events described by ``category`` and ``outlet``, users are accounts
described by ``account_type`` and ``region``, and a tagging action is a
tweet whose hashtags form the tag set -- a blend of event-specific
hashtags (driven by the event's category topic) and account-type habits
(journalists reuse editorial hashtags, organisations campaign hashtags).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dataset.store import TaggingDataset
from repro.dataset.vocab import ZipfTagModel

__all__ = ["MicroblogStyleConfig", "generate_microblog_style"]

ACCOUNT_TYPES: Tuple[str, ...] = ("citizen", "journalist", "organization", "bot")
REGIONS: Tuple[str, ...] = (
    "north-america",
    "europe",
    "asia",
    "africa",
    "south-america",
    "oceania",
)
CATEGORIES: Tuple[str, ...] = (
    "politics",
    "sports",
    "technology",
    "business",
    "entertainment",
    "science",
    "weather",
    "health",
)
OUTLETS: Tuple[str, ...] = (
    "wire-service",
    "national-daily",
    "local-paper",
    "tv-network",
    "online-only",
)

EDITORIAL_TAGS: Tuple[str, ...] = (
    "breaking",
    "exclusive",
    "developing",
    "analysis",
    "opinion",
    "factcheck",
)
CAMPAIGN_TAGS: Tuple[str, ...] = (
    "press-release",
    "announcement",
    "event",
    "launch",
    "statement",
)

USER_SCHEMA: Tuple[str, ...] = ("account_type", "region")
ITEM_SCHEMA: Tuple[str, ...] = ("category", "outlet")


@dataclass
class MicroblogStyleConfig:
    """Scale knobs for the microblog-style generator."""

    n_accounts: int = 180
    n_events: int = 400
    n_tweets: int = 3000
    vocabulary_size: int = 1500
    n_topics: int = len(CATEGORIES)
    hashtags_per_tweet_mean: float = 3.0
    hashtags_per_tweet_max: int = 8
    habit_tag_probability: float = 0.3
    seed: int = 31

    def __post_init__(self) -> None:
        if min(self.n_accounts, self.n_events, self.n_tweets) <= 0:
            raise ValueError("corpus dimensions must be positive")
        if not 0.0 <= self.habit_tag_probability <= 1.0:
            raise ValueError("habit_tag_probability must lie in [0, 1]")


def generate_microblog_style(
    config: Optional[MicroblogStyleConfig] = None,
    name: str = "microblog-style",
) -> TaggingDataset:
    """Generate a microblog-style (tweets about news events) dataset."""
    config = config or MicroblogStyleConfig()
    rng = np.random.default_rng(config.seed)
    tag_model = ZipfTagModel(
        vocabulary_size=config.vocabulary_size,
        n_topics=config.n_topics,
        seed=config.seed + 1,
        token_prefix="ht",
    )

    dataset = TaggingDataset(USER_SCHEMA, ITEM_SCHEMA, name=name)

    account_types: List[str] = []
    for index in range(config.n_accounts):
        account_type = str(rng.choice(ACCOUNT_TYPES, p=(0.6, 0.2, 0.15, 0.05)))
        region = str(rng.choice(REGIONS))
        account_types.append(account_type)
        dataset.register_user(
            f"acct{index:05d}", {"account_type": account_type, "region": region}
        )

    category_to_topic: Dict[str, int] = {
        category: position % config.n_topics
        for position, category in enumerate(CATEGORIES)
    }
    event_categories: List[str] = []
    # Event popularity follows a heavy tail: a few events dominate the feed.
    popularity = rng.pareto(1.1, size=config.n_events) + 1.0
    popularity /= popularity.sum()
    for index in range(config.n_events):
        category = str(rng.choice(CATEGORIES))
        outlet = str(rng.choice(OUTLETS))
        event_categories.append(category)
        dataset.register_item(
            f"event{index:05d}", {"category": category, "outlet": outlet}
        )

    account_draws = rng.integers(0, config.n_accounts, size=config.n_tweets)
    event_draws = rng.choice(config.n_events, size=config.n_tweets, p=popularity)
    tag_counts = np.clip(
        rng.poisson(config.hashtags_per_tweet_mean, size=config.n_tweets),
        1,
        config.hashtags_per_tweet_max,
    )

    habit_pools = {
        "citizen": (),
        "bot": (),
        "journalist": EDITORIAL_TAGS,
        "organization": CAMPAIGN_TAGS,
    }
    for row in range(config.n_tweets):
        account_index = int(account_draws[row])
        event_index = int(event_draws[row])
        category = event_categories[event_index]
        mixture = np.full(config.n_topics, 0.02)
        mixture[category_to_topic[category]] += 1.0
        hashtags = tag_model.sample_tags(mixture, int(tag_counts[row]), rng=rng)
        pool = habit_pools[account_types[account_index]]
        if pool:
            tagged: List[str] = []
            for hashtag in hashtags:
                if rng.random() < config.habit_tag_probability:
                    tagged.append(str(rng.choice(pool)))
                else:
                    tagged.append(hashtag)
            hashtags = tagged
        dataset.add_action(f"acct{account_index:05d}", f"event{event_index:05d}", hashtags)
    return dataset
