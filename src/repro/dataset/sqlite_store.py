"""SQLite-backed durable store for tagging datasets.

:class:`TaggingDataset` keeps the expanded tagging-action tuples in
memory, which means every process regenerates its corpus from scratch.
:class:`SqliteTaggingStore` gives the same ``<U, I, T>`` model a durable
home: a single SQLite database holding the user/item registries, the
tagging actions and a normalised tag table, with batch ingestion,
streaming iteration and a lossless round-trip to and from the in-memory
dataset.  It is the substrate the warm-start session snapshots
(:mod:`repro.core.persistence`) and the incremental session
(:class:`~repro.core.incremental.IncrementalTagDM`) build on.

Connection configuration follows the WAL recipe for mixed
insert/analytics workloads: write-ahead logging so readers never block
the ingest path, ``foreign_keys=ON`` so dangling actions/tags are
impossible, ``synchronous=NORMAL`` to amortise fsyncs, and a generous
busy timeout for concurrent openers.  The full schema is documented in
``PERSISTENCE.md``.

Thread model: the store is safe to share across threads.  The connection
is opened with ``check_same_thread=False`` (the underlying SQLite build
runs in serialized mode) and every multi-statement transaction plus
every point read runs under an internal reentrant lock, so a serving
process can insert from worker threads while other threads read --
without tripping sqlite3's same-thread guard and without interleaving
partial transactions.  Streaming iterators (:meth:`iter_actions` and
friends) hold the lock for their whole walk: they see a stable snapshot
and concurrent writers simply wait, which is the behaviour the serving
layer's single-writer queue expects.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.witness import locked_by, named_rlock
from repro.dataset.store import TaggingDataset

__all__ = ["SqliteTaggingStore"]

#: Bump when the table layout changes *incompatibly*; checked on open.
#: Purely additive tables (``request_ids``) ride on ``CREATE TABLE IF
#: NOT EXISTS`` instead, so older store files upgrade transparently the
#: first time a newer build opens them.
SCHEMA_VERSION = 1

#: How many idempotency records :meth:`SqliteTaggingStore.record_request`
#: retains (oldest evicted first).  A replay arriving after its record
#: was evicted re-applies -- size this above the number of in-flight +
#: retryable requests, not the corpus size.
REQUEST_LOG_KEEP = 10_000

_PRAGMAS = (
    ("journal_mode", "WAL"),
    ("foreign_keys", "ON"),
    ("synchronous", "NORMAL"),
    ("busy_timeout", "30000"),
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS users (
    user_id    TEXT PRIMARY KEY,
    attributes TEXT NOT NULL            -- JSON object over the user schema
);
CREATE TABLE IF NOT EXISTS items (
    item_id    TEXT PRIMARY KEY,
    attributes TEXT NOT NULL            -- JSON object over the item schema
);
CREATE TABLE IF NOT EXISTS actions (
    action_id INTEGER PRIMARY KEY,      -- insertion order == dataset row order
    user_id   TEXT NOT NULL REFERENCES users(user_id),
    item_id   TEXT NOT NULL REFERENCES items(item_id),
    rating    REAL                      -- NULL when the action has no rating
);
CREATE TABLE IF NOT EXISTS tags (
    tag_id INTEGER PRIMARY KEY,
    tag    TEXT NOT NULL UNIQUE
);
CREATE TABLE IF NOT EXISTS action_tags (
    action_id INTEGER NOT NULL REFERENCES actions(action_id) ON DELETE CASCADE,
    position  INTEGER NOT NULL,         -- preserves per-action tag order
    tag_id    INTEGER NOT NULL REFERENCES tags(tag_id),
    PRIMARY KEY (action_id, position)
);
CREATE TABLE IF NOT EXISTS request_ids (
    request_id TEXT PRIMARY KEY,        -- client-generated idempotency key
    report     TEXT NOT NULL,           -- JSON of the original batch's report
    created_at REAL NOT NULL
);
-- Standing queries (additive, like request_ids): one row per
-- registered subscription, carrying its spec, delivery state and the
-- watermark (corpus action count) it was last evaluated at.  The
-- watermark/seq pair is the exactly-once-delivery ledger: an
-- evaluation replayed after a crash hits the same watermark and is
-- suppressed instead of emitting a duplicate diff.
CREATE TABLE IF NOT EXISTS subscriptions (
    subscription_id TEXT PRIMARY KEY,
    owner           TEXT NOT NULL,
    spec            TEXT NOT NULL,      -- JSON problem spec (ProblemSpec.to_dict)
    state           TEXT NOT NULL DEFAULT 'active',
    created_at      REAL NOT NULL,
    last_watermark  INTEGER NOT NULL DEFAULT -1,
    last_seq        INTEGER NOT NULL DEFAULT 0,
    last_result     TEXT                -- JSON of the last delivered result
);
-- One row per delivered diff, the consumer-facing notification log;
-- seq is dense (1..last_seq) per subscription, so a poll/stream
-- client resumes from its last acked seq with no gap ambiguity.
CREATE TABLE IF NOT EXISTS subscription_diffs (
    subscription_id TEXT NOT NULL REFERENCES subscriptions(subscription_id),
    seq             INTEGER NOT NULL,
    watermark       INTEGER NOT NULL,
    epoch           INTEGER NOT NULL,
    created_at      REAL NOT NULL,
    diff            TEXT NOT NULL,      -- JSON ResultDiff.to_dict
    PRIMARY KEY (subscription_id, seq)
);
-- Accelerator table (additive, like request_ids): one row per
-- (action, prefixed attribute column), populated *inside SQLite* from
-- the JSON registries by sync_action_attrs(), so candidate-generation
-- support counts become indexed GROUP BYs instead of Python loops.
CREATE TABLE IF NOT EXISTS action_attrs (
    action_id INTEGER NOT NULL REFERENCES actions(action_id) ON DELETE CASCADE,
    attr      TEXT NOT NULL,            -- dataset column name ("user.age", ...)
    value     TEXT NOT NULL,
    PRIMARY KEY (action_id, attr)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_actions_user ON actions(user_id);
CREATE INDEX IF NOT EXISTS idx_actions_item ON actions(item_id);
CREATE INDEX IF NOT EXISTS idx_action_tags_tag ON action_tags(tag_id);
CREATE INDEX IF NOT EXISTS idx_action_attrs_attr_value ON action_attrs(attr, value);
"""

#: Unit separator (ASCII 31) used by the window-function tag aggregation
#: in :meth:`SqliteTaggingStore.action_rows`; tags containing it force
#: the Python merge-join fallback.
_TAG_SEPARATOR = "\x1f"


class SqliteTaggingStore:
    """A durable SQLite store of one tagging dataset.

    Open an existing database with ``SqliteTaggingStore(path)``, create a
    fresh one with :meth:`create`, or persist a whole in-memory dataset in
    one call with :meth:`from_dataset`.  The store is usable as a context
    manager; :meth:`close` is idempotent.

    Parameters
    ----------
    path:
        Database file path (``":memory:"`` is accepted for tests; WAL is
        silently unavailable there and SQLite falls back to ``memory``
        journaling).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = str(path)
        # One lock serialises all transactions; check_same_thread=False
        # lets the serving layer's worker threads share the connection
        # (sqlite3 would otherwise raise ProgrammingError the moment a
        # thread other than the opener touches it).
        self._lock = named_rlock("store.lock")
        # Depth of nested deferred_commit() windows; while positive,
        # write methods skip their own commit so a whole batch lands in
        # one transaction (see deferred_commit).
        self._defer_depth = 0
        self._connection: Optional[sqlite3.Connection] = sqlite3.connect(
            self.path, check_same_thread=False
        )
        self._connection.row_factory = sqlite3.Row
        with self._lock:
            for pragma, value in _PRAGMAS:
                self._connection.execute(f"PRAGMA {pragma}={value}")
            self._connection.executescript(_SCHEMA)
            stored = self._meta("schema_version")
            if stored is None:
                self._set_meta("schema_version", str(SCHEMA_VERSION))
            elif int(stored) != SCHEMA_VERSION:
                raise ValueError(
                    f"{self.path} uses store schema v{stored}, "
                    f"this library expects v{SCHEMA_VERSION}"
                )
            self._connection.commit()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: Union[str, Path],
        user_schema: Sequence[str],
        item_schema: Sequence[str],
        name: str = "tagging-dataset",
    ) -> "SqliteTaggingStore":
        """Create (or open) a store and pin its dataset schema."""
        store = cls(path)
        store._ensure_schemas(tuple(user_schema), tuple(item_schema), name)
        return store

    @classmethod
    def from_dataset(
        cls, dataset: TaggingDataset, path: Union[str, Path]
    ) -> "SqliteTaggingStore":
        """Persist an in-memory dataset into a new store at ``path``."""
        store = cls.create(path, dataset.user_schema, dataset.item_schema, dataset.name)
        store.ingest(dataset)
        return store

    @property
    def connection(self) -> sqlite3.Connection:
        """The live SQLite connection (raises after :meth:`close`)."""
        if self._connection is None:
            raise RuntimeError(f"store {self.path} has been closed")
        return self._connection

    def close(self) -> None:
        """Checkpoint the WAL and close the connection (idempotent).

        ``wal_checkpoint(TRUNCATE)`` folds every committed frame back
        into the main database file and truncates the ``-wal`` sidecar,
        so a process that is later killed (and therefore never runs a
        clean shutdown again) still left behind a self-contained main DB
        from its *last* clean close -- and warm restarts never pay a
        large WAL replay for data that was already durable.
        """
        with self._lock:
            if self._connection is not None:
                try:
                    self._connection.commit()
                    self._connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")
                except sqlite3.Error:  # pragma: no cover - checkpoint is best-effort
                    pass
                self._connection.close()
                self._connection = None

    def __enter__(self) -> "SqliteTaggingStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    def _meta(self, key: str) -> Optional[str]:
        with self._lock:
            row = self.connection.execute(
                "SELECT value FROM meta WHERE key = ?", (key,)
            ).fetchone()
        return None if row is None else row["value"]

    def _set_meta(self, key: str, value: str) -> None:
        with self._lock:
            self.connection.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)", (key, value)
            )

    def _ensure_schemas(
        self,
        user_schema: Tuple[str, ...],
        item_schema: Tuple[str, ...],
        name: str,
    ) -> None:
        existing_user = self._meta("user_schema")
        if existing_user is None:
            self._set_meta("user_schema", json.dumps(list(user_schema)))
            self._set_meta("item_schema", json.dumps(list(item_schema)))
            self._set_meta("name", name)
            self.connection.commit()
            return
        if (
            tuple(json.loads(existing_user)) != user_schema
            or tuple(json.loads(self._meta("item_schema") or "[]")) != item_schema
        ):
            raise ValueError(
                f"store {self.path} was created with a different user/item schema"
            )

    @property
    def name(self) -> str:
        """The dataset name recorded at creation time."""
        return self._meta("name") or "tagging-dataset"

    @property
    def user_schema(self) -> Tuple[str, ...]:
        """The user attribute schema ``S_U``."""
        return tuple(json.loads(self._meta("user_schema") or "[]"))

    @property
    def item_schema(self) -> Tuple[str, ...]:
        """The item attribute schema ``S_I``."""
        return tuple(json.loads(self._meta("item_schema") or "[]"))

    def pragma(self, name: str) -> object:
        """Return the current value of a connection pragma (for tests)."""
        with self._lock:
            return self.connection.execute(f"PRAGMA {name}").fetchone()[0]

    # ------------------------------------------------------------------
    # Transaction scoping
    # ------------------------------------------------------------------
    def _maybe_commit(self) -> None:
        """Commit now unless a deferred_commit window is open."""
        if self._defer_depth == 0:
            self.connection.commit()

    @contextmanager
    def deferred_commit(self):
        """Scope several writes into one SQLite transaction.

        Inside the window, :meth:`append_action` / :meth:`add_action` /
        :meth:`record_request` skip their per-call commit; the whole
        window commits **once** on exit.  This is the atom the
        exactly-once insert path builds on: a batch of actions plus its
        idempotency record become visible together, and a process killed
        mid-window loses the *entire* uncommitted transaction to WAL
        recovery -- never a prefix with the dedup record, or vice versa.

        The exit commit runs even when the window is left by an
        exception: each action already committed per-call semantics
        before this API existed (a rejected action mid-batch leaves the
        applied prefix durable), and the deferred window preserves that
        -- it only removes the *torn-by-kill* case.  Callers that need
        all-or-nothing on Python-level errors roll back themselves
        before re-raising.  Reentrant; holds the store lock for the
        whole window (the single-writer serving path already does).
        """
        with self._lock:
            self._defer_depth += 1
            try:
                yield self
            finally:
                self._defer_depth -= 1
                if self._defer_depth == 0:
                    self.connection.commit()

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    @locked_by("store.lock")
    def register_user(self, user_id: str, attributes: Mapping[str, str]) -> None:
        """Insert or update a user registry row."""
        with self._lock:
            self.connection.execute(
                "INSERT OR REPLACE INTO users (user_id, attributes) VALUES (?, ?)",
                (str(user_id), json.dumps(dict(attributes), sort_keys=True)),
            )
            self.connection.commit()

    @locked_by("store.lock")
    def register_item(self, item_id: str, attributes: Mapping[str, str]) -> None:
        """Insert or update an item registry row."""
        with self._lock:
            self.connection.execute(
                "INSERT OR REPLACE INTO items (item_id, attributes) VALUES (?, ?)",
                (str(item_id), json.dumps(dict(attributes), sort_keys=True)),
            )
            self.connection.commit()

    def has_user(self, user_id: str) -> bool:
        """Whether ``user_id`` exists in the user registry."""
        with self._lock:
            row = self.connection.execute(
                "SELECT 1 FROM users WHERE user_id = ?", (str(user_id),)
            ).fetchone()
        return row is not None

    def has_item(self, item_id: str) -> bool:
        """Whether ``item_id`` exists in the item registry."""
        with self._lock:
            row = self.connection.execute(
                "SELECT 1 FROM items WHERE item_id = ?", (str(item_id),)
            ).fetchone()
        return row is not None

    def _tag_id(self, cursor: sqlite3.Cursor, tag: str) -> int:
        cursor.execute("INSERT OR IGNORE INTO tags (tag) VALUES (?)", (tag,))
        cursor.execute("SELECT tag_id FROM tags WHERE tag = ?", (tag,))
        return int(cursor.fetchone()[0])

    def _insert_action(
        self,
        cursor: sqlite3.Cursor,
        user_id: str,
        item_id: str,
        tags: Iterable[str],
        rating: Optional[float],
    ) -> int:
        cursor.execute(
            "INSERT INTO actions (user_id, item_id, rating) VALUES (?, ?, ?)",
            (str(user_id), str(item_id), None if rating is None else float(rating)),
        )
        action_id = int(cursor.lastrowid)
        tag_tuple = tuple(dict.fromkeys(str(t) for t in tags))
        cursor.executemany(
            "INSERT INTO action_tags (action_id, position, tag_id) VALUES (?, ?, ?)",
            [
                (action_id, position, self._tag_id(cursor, tag))
                for position, tag in enumerate(tag_tuple)
            ],
        )
        return action_id

    @locked_by("store.lock")
    def add_action(
        self,
        user_id: str,
        item_id: str,
        tags: Iterable[str],
        rating: Optional[float] = None,
    ) -> int:
        """Append one tagging action; returns its ``action_id``.

        The user and item must already be registered (``foreign_keys=ON``
        enforces it at the database level as well).
        """
        with self._lock:
            cursor = self.connection.cursor()
            action_id = self._insert_action(cursor, user_id, item_id, tags, rating)
            self._maybe_commit()
        return action_id

    @locked_by("store.lock")
    def append_action(
        self,
        user_id: str,
        item_id: str,
        tags: Iterable[str],
        rating: Optional[float] = None,
        user_attributes: Optional[Mapping[str, str]] = None,
        item_attributes: Optional[Mapping[str, str]] = None,
    ) -> int:
        """Register (when attributes are given) and insert in one commit.

        The serving-path variant of :meth:`add_action`: a new user/item
        registration and the action row land atomically, so a crash can
        never leave a registered-but-actionless ghost, and the hot insert
        path pays one WAL commit instead of up to three.

        Inside a :meth:`deferred_commit` window the per-call commit is
        skipped and the action's statements run under a savepoint, so a
        rejected action undoes only itself -- earlier actions of the
        batch stay in the (still uncommitted) transaction.
        """
        with self._lock:
            connection = self.connection
            cursor = connection.cursor()
            cursor.execute("SAVEPOINT repro_append_action")
            try:
                if user_attributes is not None:
                    cursor.execute(
                        "INSERT OR REPLACE INTO users (user_id, attributes) VALUES (?, ?)",
                        (str(user_id), json.dumps(dict(user_attributes), sort_keys=True)),
                    )
                if item_attributes is not None:
                    cursor.execute(
                        "INSERT OR REPLACE INTO items (item_id, attributes) VALUES (?, ?)",
                        (str(item_id), json.dumps(dict(item_attributes), sort_keys=True)),
                    )
                action_id = self._insert_action(cursor, user_id, item_id, tags, rating)
                cursor.execute("RELEASE SAVEPOINT repro_append_action")
                self._maybe_commit()
            except BaseException:
                cursor.execute("ROLLBACK TRANSACTION TO SAVEPOINT repro_append_action")
                cursor.execute("RELEASE SAVEPOINT repro_append_action")
                if self._defer_depth == 0:
                    connection.rollback()
                raise
        return action_id

    # ------------------------------------------------------------------
    # Idempotency log
    # ------------------------------------------------------------------
    def recall_request(self, request_id: str) -> Optional[Dict[str, object]]:
        """The recorded report of ``request_id``, or ``None`` if unseen.

        A non-``None`` return means the batch carrying this idempotency
        key was already applied *and committed*; the caller returns the
        cached report instead of re-applying.
        """
        with self._lock:
            row = self.connection.execute(
                "SELECT report FROM request_ids WHERE request_id = ?",
                (str(request_id),),
            ).fetchone()
        return None if row is None else json.loads(row["report"])

    @locked_by("store.lock")
    def record_request(
        self,
        request_id: str,
        report: Mapping[str, object],
        keep_last: int = REQUEST_LOG_KEEP,
    ) -> None:
        """Record ``request_id`` as applied, with its JSON-safe report.

        Meant to run inside the same :meth:`deferred_commit` window as
        the batch it marks, so the marker and the data commit together.
        Retains the ``keep_last`` newest records (insertion order).
        """
        with self._lock:
            self.connection.execute(
                "INSERT OR REPLACE INTO request_ids (request_id, report, created_at) "
                "VALUES (?, ?, ?)",
                (str(request_id), json.dumps(dict(report)), time.time()),
            )
            self.connection.execute(
                "DELETE FROM request_ids WHERE rowid <= "
                "(SELECT COALESCE(MAX(rowid), 0) FROM request_ids) - ?",
                (int(keep_last),),
            )
            self._maybe_commit()

    def request_log_size(self) -> int:
        """How many idempotency records are currently retained."""
        with self._lock:
            return int(
                self.connection.execute(
                    "SELECT COUNT(*) FROM request_ids"
                ).fetchone()[0]
            )

    # ------------------------------------------------------------------
    # Subscriptions (standing queries)
    # ------------------------------------------------------------------
    def _subscription_row(self, row: sqlite3.Row) -> Dict[str, object]:
        return {
            "subscription_id": row["subscription_id"],
            "owner": row["owner"],
            "spec": json.loads(row["spec"]),
            "state": row["state"],
            "created_at": float(row["created_at"]),
            "last_watermark": int(row["last_watermark"]),
            "last_seq": int(row["last_seq"]),
            "last_result": (
                None if row["last_result"] is None else json.loads(row["last_result"])
            ),
        }

    @locked_by("store.lock")
    def create_subscription(
        self, subscription_id: str, owner: str, spec: Mapping[str, object]
    ) -> Dict[str, object]:
        """Register a standing query; returns its stored row.

        Raises :class:`KeyError` when the id is already taken -- the
        service layer maps that onto the 409 ``subscription-exists``
        error (or onto idempotent replay via the request log).  Meant
        to run inside a :meth:`deferred_commit` window together with
        its :meth:`record_request` marker.
        """
        with self._lock:
            try:
                self.connection.execute(
                    "INSERT INTO subscriptions "
                    "(subscription_id, owner, spec, state, created_at) "
                    "VALUES (?, ?, ?, 'active', ?)",
                    (
                        str(subscription_id),
                        str(owner),
                        json.dumps(dict(spec), sort_keys=True),
                        time.time(),
                    ),
                )
            except sqlite3.IntegrityError:
                raise KeyError(subscription_id) from None
            self._maybe_commit()
            return self.subscription(subscription_id)

    def subscription(self, subscription_id: str) -> Optional[Dict[str, object]]:
        """The stored row of one subscription, or ``None`` if unknown."""
        with self._lock:
            row = self.connection.execute(
                "SELECT * FROM subscriptions WHERE subscription_id = ?",
                (str(subscription_id),),
            ).fetchone()
        return None if row is None else self._subscription_row(row)

    def list_subscriptions(self) -> List[Dict[str, object]]:
        """All subscriptions, oldest first (registration order)."""
        with self._lock:
            rows = self.connection.execute(
                "SELECT * FROM subscriptions ORDER BY rowid"
            ).fetchall()
        return [self._subscription_row(row) for row in rows]

    @locked_by("store.lock")
    def record_subscription_diff(
        self,
        subscription_id: str,
        watermark: int,
        epoch: int,
        diff: Mapping[str, object],
        result: Mapping[str, object],
    ) -> Optional[int]:
        """Append one evaluated diff; returns its seq, or ``None`` when
        suppressed.

        The exactly-once gate of the notification pipeline: the diff
        row, the subscription's advanced watermark and its new
        ``last_result`` commit in **one** transaction, and an
        evaluation at a watermark at or below ``last_watermark`` (a
        crash-replay, or a stale coalesced epoch) returns ``None``
        without writing -- at-least-once evaluation upstream, exactly
        once in the visible diff log.
        """
        with self.deferred_commit():
            row = self.connection.execute(
                "SELECT last_watermark, last_seq FROM subscriptions "
                "WHERE subscription_id = ?",
                (str(subscription_id),),
            ).fetchone()
            if row is None:
                raise KeyError(subscription_id)
            if int(watermark) <= int(row["last_watermark"]):
                return None
            seq = int(row["last_seq"]) + 1
            self.connection.execute(
                "INSERT INTO subscription_diffs "
                "(subscription_id, seq, watermark, epoch, created_at, diff) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (
                    str(subscription_id),
                    seq,
                    int(watermark),
                    int(epoch),
                    time.time(),
                    json.dumps(dict(diff), sort_keys=True),
                ),
            )
            self.connection.execute(
                "UPDATE subscriptions SET last_watermark = ?, last_seq = ?, "
                "last_result = ? WHERE subscription_id = ?",
                (
                    int(watermark),
                    seq,
                    json.dumps(dict(result), sort_keys=True),
                    str(subscription_id),
                ),
            )
            return seq

    @locked_by("store.lock")
    def advance_subscription_watermark(
        self, subscription_id: str, watermark: int
    ) -> bool:
        """Advance the ledger without a diff row (bit-identical re-solve).

        The no-notification half of the delivery contract: the
        re-evaluation produced a result byte-equal to the last
        delivered one, so the watermark moves forward (the evaluator
        will not re-solve this range again) but the consumer-visible
        diff log stays untouched.  Returns whether the row advanced.
        """
        with self.deferred_commit():
            row = self.connection.execute(
                "SELECT last_watermark FROM subscriptions WHERE subscription_id = ?",
                (str(subscription_id),),
            ).fetchone()
            if row is None:
                raise KeyError(subscription_id)
            if int(watermark) <= int(row["last_watermark"]):
                return False
            self.connection.execute(
                "UPDATE subscriptions SET last_watermark = ? WHERE subscription_id = ?",
                (int(watermark), str(subscription_id)),
            )
            return True

    def subscription_diffs(
        self, subscription_id: str, from_seq: int = 1
    ) -> List[Dict[str, object]]:
        """Delivered diffs of one subscription with ``seq >= from_seq``.

        Raises :class:`KeyError` for an unknown subscription so the
        service layer can distinguish "no new diffs" from "no such
        subscription" (404).
        """
        with self._lock:
            if self.subscription(subscription_id) is None:
                raise KeyError(subscription_id)
            rows = self.connection.execute(
                "SELECT seq, watermark, epoch, created_at, diff "
                "FROM subscription_diffs WHERE subscription_id = ? AND seq >= ? "
                "ORDER BY seq",
                (str(subscription_id), int(from_seq)),
            ).fetchall()
        return [
            {
                "seq": int(row["seq"]),
                "watermark": int(row["watermark"]),
                "epoch": int(row["epoch"]),
                "created_at": float(row["created_at"]),
                "diff": json.loads(row["diff"]),
            }
            for row in rows
        ]

    @locked_by("store.lock")
    def ingest(self, dataset: TaggingDataset) -> int:
        """Batch-load an in-memory dataset in a single transaction.

        Returns the number of actions written.  The store's schemas must
        match the dataset's (checked by :meth:`create`).  Refuses a store
        that already holds actions: re-running an ingest script against
        the same file would otherwise silently duplicate every action
        (append individual rows with :meth:`add_action` instead).
        """
        with self._lock:
            return self._ingest_locked(dataset)

    def _ingest_locked(self, dataset: TaggingDataset) -> int:
        connection = self.connection
        existing = int(
            connection.execute("SELECT COUNT(*) FROM actions").fetchone()[0]
        )
        if existing:
            raise ValueError(
                f"store {self.path} already holds {existing} actions; "
                "ingest() only loads into an empty store"
            )
        cursor = connection.cursor()
        # sqlite3 auto-begins a transaction at the first INSERT; everything
        # below commits atomically (or rolls back as one unit on error).
        try:
            cursor.executemany(
                "INSERT OR REPLACE INTO users (user_id, attributes) VALUES (?, ?)",
                [
                    (user_id, json.dumps(attributes, sort_keys=True))
                    for user_id, attributes in dataset.registered_users()
                ],
            )
            cursor.executemany(
                "INSERT OR REPLACE INTO items (item_id, attributes) VALUES (?, ?)",
                [
                    (item_id, json.dumps(attributes, sort_keys=True))
                    for item_id, attributes in dataset.registered_items()
                ],
            )

            # One pass for the tag vocabulary, then bulk action/tag rows.
            distinct_tags = sorted(
                {tag for row in range(dataset.n_actions) for tag in dataset.tags_of(row)}
            )
            cursor.executemany(
                "INSERT OR IGNORE INTO tags (tag) VALUES (?)",
                [(tag,) for tag in distinct_tags],
            )
            tag_ids: Dict[str, int] = {
                row["tag"]: row["tag_id"]
                for row in cursor.execute("SELECT tag_id, tag FROM tags")
            }

            action_rows: List[Tuple[str, str, Optional[float]]] = []
            tag_rows: List[Tuple[int, int, int]] = []
            next_id = int(
                cursor.execute(
                    "SELECT COALESCE(MAX(action_id), 0) FROM actions"
                ).fetchone()[0]
            ) + 1
            for row in range(dataset.n_actions):
                action_rows.append(
                    (dataset.user_of(row), dataset.item_of(row), dataset.rating_of(row))
                )
                for position, tag in enumerate(dataset.tags_of(row)):
                    tag_rows.append((next_id + row, position, tag_ids[tag]))
            cursor.executemany(
                "INSERT INTO actions (user_id, item_id, rating) VALUES (?, ?, ?)",
                action_rows,
            )
            cursor.executemany(
                "INSERT INTO action_tags (action_id, position, tag_id) VALUES (?, ?, ?)",
                tag_rows,
            )
            connection.commit()
        except BaseException:
            connection.rollback()
            raise
        return dataset.n_actions

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Row counts per entity (``actions``, ``users``, ``items``, ``tags``)."""
        out: Dict[str, int] = {}
        with self._lock:
            for table in ("actions", "users", "items", "tags"):
                out[table] = int(
                    self.connection.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]
                )
        return out

    def iter_users(self) -> Iterator[Tuple[str, Dict[str, str]]]:
        """Stream ``(user_id, attributes)`` in primary-key order.

        Holds the store lock for the whole walk (see the module docstring
        for the thread model).
        """
        with self._lock:
            for row in self.connection.execute(
                "SELECT user_id, attributes FROM users ORDER BY rowid"
            ):
                yield row["user_id"], json.loads(row["attributes"])

    def iter_items(self) -> Iterator[Tuple[str, Dict[str, str]]]:
        """Stream ``(item_id, attributes)`` in primary-key order.

        Holds the store lock for the whole walk (see the module docstring
        for the thread model).
        """
        with self._lock:
            for row in self.connection.execute(
                "SELECT item_id, attributes FROM items ORDER BY rowid"
            ):
                yield row["item_id"], json.loads(row["attributes"])

    def iter_actions(self) -> Iterator[Dict[str, object]]:
        """Stream action dicts in insertion order.

        Each dict carries ``action_id``, ``user_id``, ``item_id``,
        ``tags`` (ordered tuple) and ``rating``.  Tags are fetched with a
        single ordered join and grouped on the fly, so the whole table is
        never materialised in memory.  Holds the store lock for the whole
        walk, so writers wait and the walk sees a stable snapshot.
        """
        with self._lock:
            tag_cursor = self.connection.execute(
                "SELECT at.action_id AS action_id, t.tag AS tag "
                "FROM action_tags AS at JOIN tags AS t ON t.tag_id = at.tag_id "
                "ORDER BY at.action_id, at.position"
            )
            pending: Optional[sqlite3.Row] = None

            def tags_for(action_id: int) -> Tuple[str, ...]:
                nonlocal pending
                tags: List[str] = []
                while True:
                    row = pending if pending is not None else tag_cursor.fetchone()
                    pending = None
                    if row is None:
                        break
                    if row["action_id"] != action_id:
                        pending = row
                        break
                    tags.append(row["tag"])
                return tuple(tags)

            for row in self.connection.execute(
                "SELECT action_id, user_id, item_id, rating FROM actions ORDER BY action_id"
            ):
                yield {
                    "action_id": int(row["action_id"]),
                    "user_id": row["user_id"],
                    "item_id": row["item_id"],
                    "tags": tags_for(int(row["action_id"])),
                    "rating": None if row["rating"] is None else float(row["rating"]),
                }

    # ------------------------------------------------------------------
    # SQL pushdowns (window functions + accelerator tables)
    # ------------------------------------------------------------------
    def _tags_collide_with_separator(self) -> bool:
        with self._lock:
            row = self.connection.execute(
                "SELECT 1 FROM tags WHERE instr(tag, char(31)) > 0 LIMIT 1"
            ).fetchone()
        return row is not None

    def action_rows(self, after_action_id: int = 0) -> List[Dict[str, object]]:
        """Bulk-read action dicts with the tag merge-join done *in SQL*.

        The old path (:meth:`iter_actions`) walks two cursors and groups
        tags per action in Python -- fine for streaming, but warm starts
        and store-tail replays materialise everything anyway, paying the
        per-row interpreter overhead for nothing.  Here one query does
        the grouping: an ordered ``group_concat`` *window* over
        ``(action, position)`` builds each action's tag list inside
        SQLite (``ORDER BY`` inside plain aggregates needs 3.44+, the
        unbounded window frame works on 3.25+), and a ``ROW_NUMBER()``
        filter keeps one row per action.  Tags are joined with the ASCII
        unit separator; a vocabulary that actually contains that byte
        (checked first) falls back to the Python merge-join, so the
        result is always identical to :meth:`iter_actions`.

        ``after_action_id`` restricts the read to the store tail
        (``action_id > after_action_id``) -- the warm-start replay path.
        Returns a list (this is a materialising bulk read, not a
        stream).
        """
        if self._tags_collide_with_separator():
            with self._lock:
                return [
                    action
                    for action in self.iter_actions()
                    if int(action["action_id"]) > int(after_action_id)
                ]
        sql = """
            SELECT action_id, user_id, item_id, rating, tag_list FROM (
                SELECT a.action_id AS action_id,
                       a.user_id   AS user_id,
                       a.item_id   AS item_id,
                       a.rating    AS rating,
                       group_concat(t.tag, char(31)) OVER (
                           PARTITION BY a.action_id ORDER BY at.position
                           ROWS BETWEEN UNBOUNDED PRECEDING
                                    AND UNBOUNDED FOLLOWING
                       ) AS tag_list,
                       ROW_NUMBER() OVER (
                           PARTITION BY a.action_id ORDER BY at.position
                       ) AS rn
                FROM actions AS a
                LEFT JOIN action_tags AS at ON at.action_id = a.action_id
                LEFT JOIN tags AS t ON t.tag_id = at.tag_id
                WHERE a.action_id > ?
            ) WHERE rn = 1 ORDER BY action_id
        """
        with self._lock:
            rows = self.connection.execute(sql, (int(after_action_id),)).fetchall()
        out: List[Dict[str, object]] = []
        for row in rows:
            tag_list = row["tag_list"]
            out.append(
                {
                    "action_id": int(row["action_id"]),
                    "user_id": row["user_id"],
                    "item_id": row["item_id"],
                    "tags": (
                        () if tag_list is None else tuple(tag_list.split(_TAG_SEPARATOR))
                    ),
                    "rating": None if row["rating"] is None else float(row["rating"]),
                }
            )
        return out

    def tail_actions(self, start_row: int) -> List[Dict[str, object]]:
        """The store's action tail from dataset row ``start_row`` on.

        Dataset rows are zero-based and ``action_id`` is one-based
        insertion order, so row ``n`` is ``action_id n+1``.  Used by the
        serving layer's warm-start tail replay, which previously
        re-walked the materialised dataset in Python.
        """
        return self.action_rows(after_action_id=int(start_row))

    @locked_by("store.lock")
    def sync_action_attrs(self, rebuild: bool = False) -> int:
        """Fill the ``action_attrs`` accelerator table, entirely in SQL.

        One ``INSERT .. SELECT`` explodes the user/item JSON registries
        with ``json_each`` and joins them to the (new) actions -- no row
        ever surfaces into Python.  Incremental by default: only actions
        beyond the accelerator's current high-water mark are added, which
        is what the shard's merge path wants after each folded batch.
        ``rebuild=True`` drops and refills the table (use after mutating
        a registered user/item's attributes -- accelerator rows snapshot
        attributes as of the sync).

        Returns the number of accelerator rows added.
        """
        with self._lock:
            connection = self.connection
            try:
                if rebuild:
                    connection.execute("DELETE FROM action_attrs")
                before = int(
                    connection.execute(
                        "SELECT COUNT(*) FROM action_attrs"
                    ).fetchone()[0]
                )
                watermark = int(
                    connection.execute(
                        "SELECT COALESCE(MAX(action_id), 0) FROM action_attrs"
                    ).fetchone()[0]
                )
                connection.execute(
                    """
                    INSERT OR REPLACE INTO action_attrs (action_id, attr, value)
                    SELECT a.action_id, 'user.' || j.key, j.value
                    FROM actions AS a
                    JOIN users AS u ON u.user_id = a.user_id,
                         json_each(u.attributes) AS j
                    WHERE a.action_id > ?
                    """,
                    (watermark,),
                )
                connection.execute(
                    """
                    INSERT OR REPLACE INTO action_attrs (action_id, attr, value)
                    SELECT a.action_id, 'item.' || j.key, j.value
                    FROM actions AS a
                    JOIN items AS i ON i.item_id = a.item_id,
                         json_each(i.attributes) AS j
                    WHERE a.action_id > ?
                    """,
                    (watermark,),
                )
                after = int(
                    connection.execute(
                        "SELECT COUNT(*) FROM action_attrs"
                    ).fetchone()[0]
                )
                self._maybe_commit()
            except BaseException:
                if self._defer_depth == 0:
                    connection.rollback()
                raise
        return after - before

    def attribute_support_counts(
        self, min_support: int = 1, sync: bool = True
    ) -> Dict[Tuple[str, str], int]:
        """Support of every single-predicate candidate, computed in SQL.

        Returns ``{(column, value): n_actions}`` for predicates with at
        least ``min_support`` matching actions -- the single-column seed
        of candidate-group generation, as an indexed ``GROUP BY`` over
        the accelerator table instead of a Python pass over every row.
        ``sync=False`` skips the incremental accelerator sync (callers
        that just synced).
        """
        if sync:
            self.sync_action_attrs()
        with self._lock:
            rows = self.connection.execute(
                """
                SELECT attr, value, COUNT(*) AS support
                FROM action_attrs
                GROUP BY attr, value
                HAVING COUNT(*) >= ?
                ORDER BY attr, value
                """,
                (int(min_support),),
            ).fetchall()
        return {
            (row["attr"], row["value"]): int(row["support"]) for row in rows
        }

    def pair_support_counts(
        self, min_support: int = 1, sync: bool = True
    ) -> Dict[Tuple[Tuple[str, str], Tuple[str, str]], int]:
        """Support of every (user-attr, item-attr) cross pair, in SQL.

        The candidate generation of ``"cross"`` enumeration mode as one
        self-join + ``GROUP BY`` over the accelerator table.  Returns
        ``{((user_col, value), (item_col, value)): n_actions}`` for
        pairs with at least ``min_support`` matching actions.
        """
        if sync:
            self.sync_action_attrs()
        with self._lock:
            rows = self.connection.execute(
                """
                SELECT ua.attr AS u_attr, ua.value AS u_value,
                       ia.attr AS i_attr, ia.value AS i_value,
                       COUNT(*) AS support
                FROM action_attrs AS ua
                JOIN action_attrs AS ia ON ia.action_id = ua.action_id
                WHERE ua.attr LIKE 'user.%' AND ia.attr LIKE 'item.%'
                GROUP BY ua.attr, ua.value, ia.attr, ia.value
                HAVING COUNT(*) >= ?
                ORDER BY ua.attr, ua.value, ia.attr, ia.value
                """,
                (int(min_support),),
            ).fetchall()
        return {
            (
                (row["u_attr"], row["u_value"]),
                (row["i_attr"], row["i_value"]),
            ): int(row["support"])
            for row in rows
        }

    def tag_histogram(self, limit: Optional[int] = None) -> List[Tuple[str, int]]:
        """Tag frequencies, most frequent first (ties alphabetical).

        One aggregate over the normalised tag tables; the warm path for
        vocabulary-drift monitoring and the merge bench.
        """
        sql = (
            "SELECT t.tag AS tag, COUNT(*) AS n "
            "FROM action_tags AS at JOIN tags AS t ON t.tag_id = at.tag_id "
            "GROUP BY t.tag ORDER BY n DESC, t.tag"
        )
        params: Tuple[object, ...] = ()
        if limit is not None:
            sql += " LIMIT ?"
            params = (int(limit),)
        with self._lock:
            rows = self.connection.execute(sql, params).fetchall()
        return [(row["tag"], int(row["n"])) for row in rows]

    def to_dataset(self, name: Optional[str] = None) -> TaggingDataset:
        """Materialise the store into an in-memory :class:`TaggingDataset`.

        The round-trip ``from_dataset(d, p).to_dataset()`` is lossless:
        same schemas, registries (including users/items with no actions),
        action order, tag order and ratings.  Actions come through the
        bulk :meth:`action_rows` pushdown (tag grouping inside SQLite),
        which is what makes server warm starts stop streaming rows
        through two Python cursors.
        """
        dataset = TaggingDataset(
            self.user_schema, self.item_schema, name=name or self.name
        )
        for user_id, attributes in self.iter_users():
            dataset.register_user(user_id, attributes)
        for item_id, attributes in self.iter_items():
            dataset.register_item(item_id, attributes)
        for action in self.action_rows():
            dataset.add_action(
                action["user_id"], action["item_id"], action["tags"], action["rating"]
            )
        return dataset

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._connection is None else "open"
        return f"SqliteTaggingStore(path={self.path!r}, {state})"
