"""In-memory columnar store of tagging actions.

The paper models a social tagging site as a triple ``<U, I, T>`` of users,
items and the tag vocabulary, and every tagging action as a triple
``<u, i, T>`` with ``T`` a subset of the vocabulary (Section 2).  Each
action is then expanded into a tuple that concatenates the user
attributes, the item attributes and the tags.  :class:`TaggingDataset`
stores those expanded tuples column-wise, maintains posting lists (value
-> row ids) for every attribute, and supports the conjunctive-predicate
filtering that *describable* tagging-action groups are built from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.dataset.vocab import TagVocabulary

__all__ = ["TaggingAction", "TaggingDataset", "DatasetStats"]

USER_PREFIX = "user."
ITEM_PREFIX = "item."


@dataclass(frozen=True)
class TaggingAction:
    """One expanded tagging-action tuple.

    Attributes mirror the paper's tuple
    ``r = <r_u.a1, ..., r_i.a1, ..., T>`` plus the identifiers of the user
    and item the action came from and an optional numeric rating (the
    MovieLens data the paper uses carries ratings alongside tags).
    """

    index: int
    user_id: str
    item_id: str
    user_attributes: Mapping[str, str]
    item_attributes: Mapping[str, str]
    tags: Tuple[str, ...]
    rating: Optional[float] = None

    def attribute(self, column: str) -> Optional[str]:
        """Return the value of a prefixed column such as ``user.gender``."""
        if column.startswith(USER_PREFIX):
            return self.user_attributes.get(column[len(USER_PREFIX):])
        if column.startswith(ITEM_PREFIX):
            return self.item_attributes.get(column[len(ITEM_PREFIX):])
        raise KeyError(f"column {column!r} must start with 'user.' or 'item.'")


@dataclass(frozen=True)
class DatasetStats:
    """Summary statistics of a :class:`TaggingDataset`."""

    n_actions: int
    n_users: int
    n_items: int
    n_distinct_tags: int
    n_tag_assignments: int
    mean_tags_per_action: float
    user_attributes: Tuple[str, ...]
    item_attributes: Tuple[str, ...]

    def as_dict(self) -> Dict[str, object]:
        """Return the statistics as a plain dictionary (for reporting)."""
        return {
            "n_actions": self.n_actions,
            "n_users": self.n_users,
            "n_items": self.n_items,
            "n_distinct_tags": self.n_distinct_tags,
            "n_tag_assignments": self.n_tag_assignments,
            "mean_tags_per_action": self.mean_tags_per_action,
            "user_attributes": list(self.user_attributes),
            "item_attributes": list(self.item_attributes),
        }


class TaggingDataset:
    """Columnar store of expanded tagging-action tuples.

    Parameters
    ----------
    user_schema:
        Ordered sequence of user attribute names (the paper's ``S_U``).
    item_schema:
        Ordered sequence of item attribute names (the paper's ``S_I``).
    name:
        Optional human-readable dataset name, used in reports.
    """

    def __init__(
        self,
        user_schema: Sequence[str],
        item_schema: Sequence[str],
        name: str = "tagging-dataset",
    ) -> None:
        if not user_schema and not item_schema:
            raise ValueError("at least one of user_schema/item_schema is required")
        self.name = name
        self._user_schema: Tuple[str, ...] = tuple(user_schema)
        self._item_schema: Tuple[str, ...] = tuple(item_schema)

        self._users: Dict[str, Dict[str, str]] = {}
        self._items: Dict[str, Dict[str, str]] = {}

        # Column storage for the expanded tuples.
        self._user_ids: List[str] = []
        self._item_ids: List[str] = []
        self._tags: List[Tuple[str, ...]] = []
        self._ratings: List[Optional[float]] = []
        self._columns: Dict[str, List[str]] = {
            USER_PREFIX + attr: [] for attr in self._user_schema
        }
        self._columns.update(
            {ITEM_PREFIX + attr: [] for attr in self._item_schema}
        )

        # Posting lists: column -> value -> list of row indices.
        self._postings: Dict[str, Dict[str, List[int]]] = {
            column: {} for column in self._columns
        }
        self._tag_vocabulary = TagVocabulary()

    # ------------------------------------------------------------------
    # Schema / registration
    # ------------------------------------------------------------------
    @property
    def user_schema(self) -> Tuple[str, ...]:
        """The user attribute schema ``S_U``."""
        return self._user_schema

    @property
    def item_schema(self) -> Tuple[str, ...]:
        """The item attribute schema ``S_I``."""
        return self._item_schema

    @property
    def columns(self) -> Tuple[str, ...]:
        """All prefixed attribute columns (``user.*`` then ``item.*``)."""
        return tuple(self._columns)

    def register_user(self, user_id: str, attributes: Mapping[str, str]) -> None:
        """Register a user and its attribute values.

        Missing attributes default to the sentinel value ``"unknown"``;
        unknown attribute names raise ``ValueError`` so schema drift is
        caught early.
        """
        self._users[str(user_id)] = self._conform(attributes, self._user_schema, "user")

    def register_item(self, item_id: str, attributes: Mapping[str, str]) -> None:
        """Register an item and its attribute values."""
        self._items[str(item_id)] = self._conform(attributes, self._item_schema, "item")

    @staticmethod
    def _conform(
        attributes: Mapping[str, str],
        schema: Sequence[str],
        kind: str,
    ) -> Dict[str, str]:
        unknown = set(attributes) - set(schema)
        if unknown:
            raise ValueError(f"unknown {kind} attributes: {sorted(unknown)}")
        return {attr: str(attributes.get(attr, "unknown")) for attr in schema}

    def has_user(self, user_id: str) -> bool:
        """Return whether ``user_id`` has been registered."""
        return str(user_id) in self._users

    def has_item(self, item_id: str) -> bool:
        """Return whether ``item_id`` has been registered."""
        return str(item_id) in self._items

    def user_attributes(self, user_id: str) -> Dict[str, str]:
        """Return a copy of the registered attributes of ``user_id``."""
        return dict(self._users[str(user_id)])

    def item_attributes(self, item_id: str) -> Dict[str, str]:
        """Return a copy of the registered attributes of ``item_id``."""
        return dict(self._items[str(item_id)])

    def registered_users(self) -> Iterator[Tuple[str, Dict[str, str]]]:
        """Iterate ``(user_id, attributes)`` in registration order.

        Includes users registered but never referenced by an action, so
        durable stores can persist the full registry losslessly.
        """
        for user_id, attributes in self._users.items():
            yield user_id, dict(attributes)

    def registered_items(self) -> Iterator[Tuple[str, Dict[str, str]]]:
        """Iterate ``(item_id, attributes)`` in registration order."""
        for item_id, attributes in self._items.items():
            yield item_id, dict(attributes)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def add_action(
        self,
        user_id: str,
        item_id: str,
        tags: Iterable[str],
        rating: Optional[float] = None,
    ) -> int:
        """Append a tagging action and return its row index.

        The user and item must have been registered beforehand so the
        expanded tuple can be materialised with their attributes.
        """
        user_id = str(user_id)
        item_id = str(item_id)
        if user_id not in self._users:
            raise KeyError(f"user {user_id!r} has not been registered")
        if item_id not in self._items:
            raise KeyError(f"item {item_id!r} has not been registered")

        tag_tuple = tuple(dict.fromkeys(str(t) for t in tags))
        row = len(self._user_ids)
        self._user_ids.append(user_id)
        self._item_ids.append(item_id)
        self._tags.append(tag_tuple)
        self._ratings.append(None if rating is None else float(rating))

        user_attrs = self._users[user_id]
        item_attrs = self._items[item_id]
        for attr in self._user_schema:
            column = USER_PREFIX + attr
            value = user_attrs[attr]
            self._columns[column].append(value)
            self._postings[column].setdefault(value, []).append(row)
        for attr in self._item_schema:
            column = ITEM_PREFIX + attr
            value = item_attrs[attr]
            self._columns[column].append(value)
            self._postings[column].setdefault(value, []).append(row)

        for tag in tag_tuple:
            self._tag_vocabulary.record_usage(tag)
        return row

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._user_ids)

    @property
    def n_actions(self) -> int:
        """Number of expanded tagging-action tuples."""
        return len(self._user_ids)

    @property
    def n_users(self) -> int:
        """Number of registered users."""
        return len(self._users)

    @property
    def n_items(self) -> int:
        """Number of registered items."""
        return len(self._items)

    @property
    def tag_vocabulary(self) -> TagVocabulary:
        """The dataset-wide tag vocabulary with usage counts."""
        return self._tag_vocabulary

    def action(self, index: int) -> TaggingAction:
        """Materialise the expanded tuple at ``index``."""
        if index < 0 or index >= len(self._user_ids):
            raise IndexError(f"action index {index} out of range")
        user_id = self._user_ids[index]
        item_id = self._item_ids[index]
        return TaggingAction(
            index=index,
            user_id=user_id,
            item_id=item_id,
            user_attributes=dict(self._users[user_id]),
            item_attributes=dict(self._items[item_id]),
            tags=self._tags[index],
            rating=self._ratings[index],
        )

    def actions(self, indices: Optional[Iterable[int]] = None) -> Iterator[TaggingAction]:
        """Iterate expanded tuples, optionally restricted to ``indices``."""
        if indices is None:
            indices = range(len(self._user_ids))
        for index in indices:
            yield self.action(int(index))

    def tags_of(self, index: int) -> Tuple[str, ...]:
        """Return the tag set of the action at ``index``."""
        return self._tags[index]

    def rating_of(self, index: int) -> Optional[float]:
        """Return the rating of the action at ``index`` (or ``None``)."""
        return self._ratings[index]

    def user_of(self, index: int) -> str:
        """Return the user id of the action at ``index``."""
        return self._user_ids[index]

    def item_of(self, index: int) -> str:
        """Return the item id of the action at ``index``."""
        return self._item_ids[index]

    def column_values(self, column: str) -> List[str]:
        """Return the full column of values for a prefixed attribute."""
        if column not in self._columns:
            raise KeyError(f"unknown column {column!r}")
        return list(self._columns[column])

    def distinct_values(self, column: str) -> List[str]:
        """Return the distinct values of a prefixed attribute column."""
        if column not in self._postings:
            raise KeyError(f"unknown column {column!r}")
        return sorted(self._postings[column])

    def value_counts(self, column: str) -> Dict[str, int]:
        """Return ``value -> number of tuples`` for a prefixed column."""
        if column not in self._postings:
            raise KeyError(f"unknown column {column!r}")
        return {value: len(rows) for value, rows in self._postings[column].items()}

    # ------------------------------------------------------------------
    # Predicate filtering
    # ------------------------------------------------------------------
    def matching_indices(self, predicates: Mapping[str, str]) -> np.ndarray:
        """Return row indices of tuples matching a conjunctive predicate.

        ``predicates`` maps prefixed columns (``user.gender``,
        ``item.genre``...) to required values.  An empty predicate matches
        every tuple.  The intersection is computed over posting lists,
        smallest first, so highly selective predicates short-circuit fast.
        """
        if not predicates:
            return np.arange(len(self._user_ids), dtype=np.int64)

        posting_lists: List[List[int]] = []
        for column, value in predicates.items():
            if column not in self._postings:
                raise KeyError(f"unknown column {column!r}")
            rows = self._postings[column].get(str(value))
            if not rows:
                return np.empty(0, dtype=np.int64)
            posting_lists.append(rows)

        posting_lists.sort(key=len)
        result = set(posting_lists[0])
        for rows in posting_lists[1:]:
            result.intersection_update(rows)
            if not result:
                return np.empty(0, dtype=np.int64)
        return np.array(sorted(result), dtype=np.int64)

    def support(self, predicates: Mapping[str, str]) -> int:
        """Return how many tuples match the conjunctive predicate."""
        return int(len(self.matching_indices(predicates)))

    def filter(self, predicates: Mapping[str, str], name: Optional[str] = None) -> "TaggingDataset":
        """Return a new dataset containing only matching tuples.

        Users and items referenced by the surviving tuples are carried
        over; the sub-dataset shares no mutable state with the parent.
        """
        indices = self.matching_indices(predicates)
        subset = TaggingDataset(
            self._user_schema,
            self._item_schema,
            name=name or f"{self.name}[filtered]",
        )
        for index in indices:
            index = int(index)
            user_id = self._user_ids[index]
            item_id = self._item_ids[index]
            if not subset.has_user(user_id):
                subset.register_user(user_id, self._users[user_id])
            if not subset.has_item(item_id):
                subset.register_item(item_id, self._items[item_id])
            subset.add_action(
                user_id, item_id, self._tags[index], self._ratings[index]
            )
        return subset

    def prefix(
        self,
        n_actions: int,
        n_users: Optional[int] = None,
        n_items: Optional[int] = None,
        name: Optional[str] = None,
    ) -> "TaggingDataset":
        """Return the dataset as it was after its first ``n_actions`` rows.

        Because actions are append-only and users/items are registered in
        first-sight order, the first ``n_actions`` rows plus the first
        ``n_users`` / ``n_items`` registrations reconstruct an earlier
        state of the corpus exactly -- which is what lets a warm-start
        snapshot taken at that point load against the prefix and then
        replay the tail (:meth:`repro.serving.server.TagDMServer.open_corpus`).
        ``n_users`` / ``n_items`` default to every registration (callers
        that know the historical registry sizes pass them explicitly).
        The name is kept by default so dataset fingerprints line up.
        """
        if n_actions < 0 or n_actions > self.n_actions:
            raise ValueError(
                f"prefix length {n_actions} out of range [0, {self.n_actions}]"
            )
        subset = TaggingDataset(
            self._user_schema, self._item_schema, name=name or self.name
        )
        for position, (user_id, attributes) in enumerate(self._users.items()):
            if n_users is not None and position >= n_users:
                break
            subset.register_user(user_id, attributes)
        for position, (item_id, attributes) in enumerate(self._items.items()):
            if n_items is not None and position >= n_items:
                break
            subset.register_item(item_id, attributes)
        for index in range(n_actions):
            subset.add_action(
                self._user_ids[index],
                self._item_ids[index],
                self._tags[index],
                self._ratings[index],
            )
        return subset

    def sample(self, n: int, seed: int = 0, name: Optional[str] = None) -> "TaggingDataset":
        """Return a uniformly sampled sub-dataset of ``n`` tuples.

        Used by the Figure 7/8 experiments to build the 5K/10K/20K/30K
        tagging-tuple bins.
        """
        if n < 0:
            raise ValueError("sample size must be non-negative")
        n = min(n, self.n_actions)
        rng = np.random.default_rng(seed)
        chosen = rng.choice(self.n_actions, size=n, replace=False)
        chosen.sort()
        subset = TaggingDataset(
            self._user_schema,
            self._item_schema,
            name=name or f"{self.name}[sample-{n}]",
        )
        for index in chosen:
            index = int(index)
            user_id = self._user_ids[index]
            item_id = self._item_ids[index]
            if not subset.has_user(user_id):
                subset.register_user(user_id, self._users[user_id])
            if not subset.has_item(item_id):
                subset.register_item(item_id, self._items[item_id])
            subset.add_action(
                user_id, item_id, self._tags[index], self._ratings[index]
            )
        return subset

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def tags_for_indices(self, indices: Iterable[int]) -> List[str]:
        """Return the concatenation of tag lists of the given tuples."""
        tags: List[str] = []
        for index in indices:
            tags.extend(self._tags[int(index)])
        return tags

    def items_for_indices(self, indices: Iterable[int]) -> set:
        """Return the set of item ids tagged by the given tuples."""
        return {self._item_ids[int(index)] for index in indices}

    def users_for_indices(self, indices: Iterable[int]) -> set:
        """Return the set of user ids appearing in the given tuples."""
        return {self._user_ids[int(index)] for index in indices}

    def stats(self) -> DatasetStats:
        """Compute summary statistics of the dataset."""
        n_assignments = sum(len(tags) for tags in self._tags)
        mean_tags = n_assignments / self.n_actions if self.n_actions else 0.0
        return DatasetStats(
            n_actions=self.n_actions,
            n_users=self.n_users,
            n_items=self.n_items,
            n_distinct_tags=len(self._tag_vocabulary),
            n_tag_assignments=n_assignments,
            mean_tags_per_action=mean_tags,
            user_attributes=self._user_schema,
            item_attributes=self._item_schema,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TaggingDataset(name={self.name!r}, actions={self.n_actions}, "
            f"users={self.n_users}, items={self.n_items}, "
            f"tags={len(self._tag_vocabulary)})"
        )
