"""Synthetic MovieLens-style tagging corpus.

The paper's evaluation uses the MovieLens 1M/10M dumps merged with IMDB
movie attributes: 33,322 tagging+rating actions by 2,320 users on 6,258
movies, a 64,663-token tag vocabulary, user attributes *gender, age,
occupation, location* and movie attributes *genre, actor, director*
(Section 6).  Those dumps cannot be shipped offline, so this module
generates a corpus with the same schema, matching attribute
cardinalities, a Zipf long-tail vocabulary and -- crucially -- latent
topic structure: a movie's genre and a user's demographic profile induce
a topic mixture, and tags are drawn from that mixture.  Describable
groups (e.g. ``{gender=male, genre=action}``) therefore have genuinely
similar or dissimilar tag signatures, which is the property the TagDM
algorithms exploit.

See DESIGN.md section 2 for the full substitution argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataset.store import TaggingDataset
from repro.dataset.vocab import ZipfTagModel

__all__ = [
    "MovieLensStyleConfig",
    "MovieLensStyleGenerator",
    "generate_movielens_style",
    "GENDERS",
    "AGE_RANGES",
    "OCCUPATIONS",
    "LOCATIONS",
    "GENRES",
]

# Attribute value pools mirroring the cardinalities reported in Section 6
# of the paper: gender 2, age 8 ranges, 21 occupations, 52 locations,
# 19 genres; actor/director pools are configurable (paper: 697 / 210).
GENDERS: Tuple[str, ...] = ("male", "female")

AGE_RANGES: Tuple[str, ...] = (
    "under 18",
    "18-24",
    "25-34",
    "35-44",
    "45-49",
    "50-55",
    "56+",
    "unknown-age",
)

OCCUPATIONS: Tuple[str, ...] = (
    "student",
    "artist",
    "doctor",
    "lawyer",
    "engineer",
    "programmer",
    "teacher",
    "scientist",
    "writer",
    "executive",
    "homemaker",
    "farmer",
    "clerical",
    "craftsman",
    "retired",
    "sales",
    "technician",
    "tradesman",
    "unemployed",
    "self-employed",
    "other",
)

_STATES: Tuple[str, ...] = (
    "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA",
    "HI", "ID", "IL", "IN", "IA", "KS", "KY", "LA", "ME", "MD",
    "MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ",
    "NM", "NY", "NC", "ND", "OH", "OK", "OR", "PA", "RI", "SC",
    "SD", "TN", "TX", "UT", "VT", "VA", "WA", "WV", "WI", "WY",
    "DC",
)
LOCATIONS: Tuple[str, ...] = _STATES + ("foreign",)

GENRES: Tuple[str, ...] = (
    "action",
    "adventure",
    "animation",
    "children",
    "comedy",
    "crime",
    "documentary",
    "drama",
    "fantasy",
    "film-noir",
    "horror",
    "musical",
    "mystery",
    "romance",
    "sci-fi",
    "thriller",
    "war",
    "western",
    "imax",
)


@dataclass
class MovieLensStyleConfig:
    """Scale and shape knobs of the synthetic MovieLens-style corpus.

    The defaults produce a laptop-friendly corpus; the benchmark harness
    scales ``n_actions`` up to mirror the paper's tuple bins.
    """

    n_users: int = 400
    n_items: int = 800
    n_actions: int = 6000
    n_actors: int = 120
    n_directors: int = 60
    n_topics: int = 25
    vocabulary_size: int = 2500
    tags_per_action_mean: float = 3.0
    tags_per_action_max: int = 8
    rating_levels: Tuple[float, ...] = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0)
    demographic_topic_shift: float = 0.5
    seed: int = 42

    def __post_init__(self) -> None:
        if self.n_users <= 0 or self.n_items <= 0 or self.n_actions <= 0:
            raise ValueError("n_users, n_items and n_actions must be positive")
        if self.n_topics <= 1:
            raise ValueError("n_topics must be at least 2")
        if self.tags_per_action_max <= 0:
            raise ValueError("tags_per_action_max must be positive")
        if not 0.0 <= self.demographic_topic_shift <= 1.0:
            raise ValueError("demographic_topic_shift must lie in [0, 1]")


USER_SCHEMA: Tuple[str, ...] = ("gender", "age", "occupation", "location")
ITEM_SCHEMA: Tuple[str, ...] = ("genre", "actor", "director")


@dataclass
class _UserProfile:
    user_id: str
    attributes: Dict[str, str]
    topic_shift: np.ndarray
    activity: float


@dataclass
class _ItemProfile:
    item_id: str
    attributes: Dict[str, str]
    topic_mixture: np.ndarray
    popularity: float


class MovieLensStyleGenerator:
    """Deterministic generator of MovieLens-style tagging corpora.

    The generator is seeded; two generators with the same configuration
    produce byte-identical datasets, which keeps tests and benchmark
    workloads reproducible.
    """

    def __init__(self, config: Optional[MovieLensStyleConfig] = None) -> None:
        self.config = config or MovieLensStyleConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self._tag_model = ZipfTagModel(
            vocabulary_size=self.config.vocabulary_size,
            n_topics=self.config.n_topics,
            seed=self.config.seed + 1,
        )
        self._genre_topics = self._build_genre_topics()
        self._demographic_topics = self._build_demographic_topics()

    # ------------------------------------------------------------------
    # Latent structure
    # ------------------------------------------------------------------
    def _build_genre_topics(self) -> Dict[str, np.ndarray]:
        """Assign each genre a characteristic topic mixture."""
        mixtures: Dict[str, np.ndarray] = {}
        for position, genre in enumerate(GENRES):
            base = np.full(self.config.n_topics, 0.2)
            primary = position % self.config.n_topics
            secondary = (position * 3 + 1) % self.config.n_topics
            base[primary] += 6.0
            base[secondary] += 2.0
            mixtures[genre] = self._rng.dirichlet(base)
        return mixtures

    def _build_demographic_topics(self) -> Dict[Tuple[str, str], np.ndarray]:
        """Assign each (gender, age) demographic cell a topic shift.

        Groups that the paper's case studies contrast -- e.g. teenaged
        males versus teenaged females on action movies -- end up with
        visibly different shifts, so the diversity-maximising problems
        have real structure to find.
        """
        shifts: Dict[Tuple[str, str], np.ndarray] = {}
        for g_index, gender in enumerate(GENDERS):
            for a_index, age in enumerate(AGE_RANGES):
                base = np.full(self.config.n_topics, 0.3)
                primary = (g_index * len(AGE_RANGES) + a_index) % self.config.n_topics
                base[primary] += 4.0
                shifts[(gender, age)] = self._rng.dirichlet(base)
        return shifts

    # ------------------------------------------------------------------
    # Entity generation
    # ------------------------------------------------------------------
    def _generate_users(self) -> List[_UserProfile]:
        users: List[_UserProfile] = []
        activity = self._rng.pareto(1.3, size=self.config.n_users) + 1.0
        activity /= activity.sum()
        for index in range(self.config.n_users):
            gender = str(self._rng.choice(GENDERS, p=(0.6, 0.4)))
            age = str(self._rng.choice(AGE_RANGES))
            occupation = str(self._rng.choice(OCCUPATIONS))
            location = str(self._rng.choice(LOCATIONS))
            attributes = {
                "gender": gender,
                "age": age,
                "occupation": occupation,
                "location": location,
            }
            users.append(
                _UserProfile(
                    user_id=f"u{index:05d}",
                    attributes=attributes,
                    topic_shift=self._demographic_topics[(gender, age)],
                    activity=float(activity[index]),
                )
            )
        return users

    def _generate_items(self) -> List[_ItemProfile]:
        actors = [f"actor_{i:04d}" for i in range(self.config.n_actors)]
        directors = [f"director_{i:04d}" for i in range(self.config.n_directors)]
        # Popular actors/directors appear in more movies (Zipf over the pool).
        actor_weights = 1.0 / np.arange(1, len(actors) + 1, dtype=float)
        actor_weights /= actor_weights.sum()
        director_weights = 1.0 / np.arange(1, len(directors) + 1, dtype=float)
        director_weights /= director_weights.sum()

        popularity = self._rng.pareto(1.2, size=self.config.n_items) + 1.0
        popularity /= popularity.sum()

        items: List[_ItemProfile] = []
        for index in range(self.config.n_items):
            genre = str(self._rng.choice(GENRES))
            actor = str(self._rng.choice(actors, p=actor_weights))
            director = str(self._rng.choice(directors, p=director_weights))
            attributes = {"genre": genre, "actor": actor, "director": director}
            # Item topic mixture = genre mixture plus a bit of per-item noise.
            noise = self._rng.dirichlet(np.full(self.config.n_topics, 0.5))
            mixture = 0.8 * self._genre_topics[genre] + 0.2 * noise
            items.append(
                _ItemProfile(
                    item_id=f"m{index:05d}",
                    attributes=attributes,
                    topic_mixture=mixture,
                    popularity=float(popularity[index]),
                )
            )
        return items

    # ------------------------------------------------------------------
    # Corpus generation
    # ------------------------------------------------------------------
    def generate(self, name: str = "movielens-style") -> TaggingDataset:
        """Generate the full synthetic corpus as a :class:`TaggingDataset`."""
        config = self.config
        users = self._generate_users()
        items = self._generate_items()

        dataset = TaggingDataset(USER_SCHEMA, ITEM_SCHEMA, name=name)
        for user in users:
            dataset.register_user(user.user_id, user.attributes)
        for item in items:
            dataset.register_item(item.item_id, item.attributes)

        user_probs = np.array([user.activity for user in users])
        item_probs = np.array([item.popularity for item in items])
        shift = config.demographic_topic_shift

        user_draws = self._rng.choice(len(users), size=config.n_actions, p=user_probs)
        item_draws = self._rng.choice(len(items), size=config.n_actions, p=item_probs)
        tag_counts = np.clip(
            self._rng.poisson(config.tags_per_action_mean, size=config.n_actions),
            1,
            config.tags_per_action_max,
        )
        ratings = self._rng.choice(config.rating_levels, size=config.n_actions)

        for row in range(config.n_actions):
            user = users[int(user_draws[row])]
            item = items[int(item_draws[row])]
            mixture = (1.0 - shift) * item.topic_mixture + shift * user.topic_shift
            tags = self._tag_model.sample_tags(mixture, int(tag_counts[row]), rng=self._rng)
            dataset.add_action(user.user_id, item.item_id, tags, float(ratings[row]))
        return dataset


def generate_movielens_style(
    n_users: int = 400,
    n_items: int = 800,
    n_actions: int = 6000,
    seed: int = 42,
    config: Optional[MovieLensStyleConfig] = None,
    name: str = "movielens-style",
) -> TaggingDataset:
    """Convenience wrapper: build a generator and return its dataset.

    Either pass a full :class:`MovieLensStyleConfig` via ``config`` or use
    the scale shortcuts ``n_users`` / ``n_items`` / ``n_actions`` /
    ``seed``.
    """
    if config is None:
        config = MovieLensStyleConfig(
            n_users=n_users, n_items=n_items, n_actions=n_actions, seed=seed
        )
    return MovieLensStyleGenerator(config).generate(name=name)
