"""Tag vocabulary models.

The paper stresses (Section 2.1.2) that tags are drawn from a much larger
vocabulary than user or item attributes and exhibit a *long tail*
characteristic.  The synthetic generators therefore need a vocabulary
model that produces realistically skewed tag usage.  This module supplies:

* :class:`TagVocabulary` -- a plain, ordered vocabulary with id <-> token
  mapping and usage counting.
* :class:`ZipfTagModel` -- a topic-aware Zipf sampler.  Each topic owns a
  preferred slice of the vocabulary; drawing tags for an (item, user)
  pair mixes the topic-specific distribution with a global long-tail
  distribution, so that groups of tagging actions about the same topics
  share tags (giving LDA something real to recover) while the overall
  frequency histogram stays heavy-tailed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["TagVocabulary", "ZipfTagModel"]


class TagVocabulary:
    """A bidirectional mapping between tag tokens and integer ids.

    The vocabulary also keeps a usage counter so that callers (for
    example the tag-cloud renderer) can ask for the most frequent tags
    without rescanning the dataset.
    """

    def __init__(self, tokens: Optional[Iterable[str]] = None) -> None:
        self._token_to_id: Dict[str, int] = {}
        self._id_to_token: List[str] = []
        self._counts: List[int] = []
        if tokens is not None:
            for token in tokens:
                self.add(token)

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __iter__(self):
        return iter(self._id_to_token)

    def add(self, token: str, count: int = 0) -> int:
        """Add ``token`` if missing and return its id."""
        token_id = self._token_to_id.get(token)
        if token_id is None:
            token_id = len(self._id_to_token)
            self._token_to_id[token] = token_id
            self._id_to_token.append(token)
            self._counts.append(0)
        if count:
            self._counts[token_id] += count
        return token_id

    def record_usage(self, token: str, count: int = 1) -> None:
        """Increment the usage counter of ``token`` (adding it if new)."""
        token_id = self.add(token)
        self._counts[token_id] += count

    def id_of(self, token: str) -> int:
        """Return the id of ``token``; raise ``KeyError`` if unknown."""
        return self._token_to_id[token]

    def token_of(self, token_id: int) -> str:
        """Return the token with id ``token_id``."""
        return self._id_to_token[token_id]

    def count_of(self, token: str) -> int:
        """Return how many usages of ``token`` were recorded."""
        token_id = self._token_to_id.get(token)
        if token_id is None:
            return 0
        return self._counts[token_id]

    def tokens(self) -> List[str]:
        """Return all tokens in insertion order."""
        return list(self._id_to_token)

    def most_common(self, n: Optional[int] = None) -> List[tuple]:
        """Return ``(token, count)`` pairs sorted by descending count."""
        order = sorted(
            range(len(self._id_to_token)),
            key=lambda i: (-self._counts[i], self._id_to_token[i]),
        )
        if n is not None:
            order = order[:n]
        return [(self._id_to_token[i], self._counts[i]) for i in order]

    def merge(self, other: "TagVocabulary") -> "TagVocabulary":
        """Return a new vocabulary containing tokens and counts of both."""
        merged = TagVocabulary()
        for vocab in (self, other):
            for token in vocab:
                merged.add(token, vocab.count_of(token))
        return merged


@dataclass
class ZipfTagModel:
    """Topic-aware Zipf sampler over a synthetic tag vocabulary.

    Parameters
    ----------
    vocabulary_size:
        Number of distinct tag tokens.
    n_topics:
        Number of latent topics; each topic prefers a contiguous block of
        the vocabulary.
    zipf_exponent:
        Skew of the global frequency distribution (1.0 is classic Zipf).
    topic_concentration:
        Probability mass a draw spends inside its topic block (the rest
        goes to the global long-tail distribution).
    seed:
        Seed for the internal random generator; generation is fully
        deterministic given the seed.
    """

    vocabulary_size: int = 2000
    n_topics: int = 25
    zipf_exponent: float = 1.05
    topic_concentration: float = 0.7
    seed: int = 7
    token_prefix: str = "tag"
    _rng: np.random.Generator = field(init=False, repr=False)
    _global_probs: np.ndarray = field(init=False, repr=False)
    _topic_probs: np.ndarray = field(init=False, repr=False)
    vocabulary: TagVocabulary = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.vocabulary_size <= 0:
            raise ValueError("vocabulary_size must be positive")
        if self.n_topics <= 0:
            raise ValueError("n_topics must be positive")
        if not 0.0 <= self.topic_concentration <= 1.0:
            raise ValueError("topic_concentration must lie in [0, 1]")
        self._rng = np.random.default_rng(self.seed)
        self.vocabulary = TagVocabulary(
            f"{self.token_prefix}_{i:05d}" for i in range(self.vocabulary_size)
        )
        ranks = np.arange(1, self.vocabulary_size + 1, dtype=float)
        weights = ranks ** (-self.zipf_exponent)
        self._global_probs = weights / weights.sum()
        self._topic_probs = self._build_topic_distributions()

    def _build_topic_distributions(self) -> np.ndarray:
        """Give each topic a preferred block of the vocabulary.

        Topic t concentrates its mass on the block of tokens
        ``[t * block, (t + 1) * block)`` but keeps a small uniform floor
        elsewhere so every token remains reachable from every topic.
        """
        block = max(1, self.vocabulary_size // self.n_topics)
        probs = np.full(
            (self.n_topics, self.vocabulary_size),
            1.0 / (10.0 * self.vocabulary_size),
        )
        for topic in range(self.n_topics):
            start = (topic * block) % self.vocabulary_size
            stop = min(start + block, self.vocabulary_size)
            in_block = np.arange(start, stop)
            local_ranks = np.arange(1, len(in_block) + 1, dtype=float)
            probs[topic, in_block] += local_ranks ** (-self.zipf_exponent)
        probs /= probs.sum(axis=1, keepdims=True)
        return probs

    @property
    def topics(self) -> int:
        """Number of latent topics the model mixes over."""
        return self.n_topics

    def token(self, token_id: int) -> str:
        """Return the token string for ``token_id``."""
        return self.vocabulary.token_of(token_id)

    def sample_topic_mixture(self, concentration: float = 0.3) -> np.ndarray:
        """Draw a Dirichlet topic mixture (used for users and items)."""
        return self._rng.dirichlet(np.full(self.n_topics, concentration))

    def sample_tags(
        self,
        topic_mixture: Sequence[float],
        n_tags: int,
        rng: Optional[np.random.Generator] = None,
    ) -> List[str]:
        """Sample ``n_tags`` distinct tag tokens for a tagging action.

        Each tag first picks a topic from ``topic_mixture``; with
        probability ``topic_concentration`` the token comes from the
        topic's own distribution, otherwise from the global Zipf tail.
        """
        if n_tags <= 0:
            return []
        generator = rng if rng is not None else self._rng
        mixture = np.asarray(topic_mixture, dtype=float)
        if mixture.shape != (self.n_topics,):
            raise ValueError(
                f"topic mixture must have length {self.n_topics}, "
                f"got {mixture.shape}"
            )
        total = mixture.sum()
        if total <= 0:
            mixture = np.full(self.n_topics, 1.0 / self.n_topics)
        else:
            mixture = mixture / total

        chosen: List[str] = []
        seen = set()
        # Allow a few retries so that requested tag counts close to the
        # vocabulary size still terminate.
        max_attempts = max(20, 10 * n_tags)
        attempts = 0
        while len(chosen) < n_tags and attempts < max_attempts:
            attempts += 1
            topic = int(generator.choice(self.n_topics, p=mixture))
            if generator.random() < self.topic_concentration:
                probs = self._topic_probs[topic]
            else:
                probs = self._global_probs
            token_id = int(generator.choice(self.vocabulary_size, p=probs))
            token = self.vocabulary.token_of(token_id)
            if token not in seen:
                seen.add(token)
                chosen.append(token)
        return chosen

    def expected_frequencies(self) -> np.ndarray:
        """Return the marginal token distribution under a uniform mixture."""
        mix = self._topic_probs.mean(axis=0)
        return (
            self.topic_concentration * mix
            + (1.0 - self.topic_concentration) * self._global_probs
        )
