"""Experiment harness reproducing the paper's evaluation (Section 6).

Each public function regenerates the rows/series behind one table or
figure of the paper; the ``benchmarks/`` directory wraps them in
pytest-benchmark targets.  See DESIGN.md for the experiment index and
EXPERIMENTS.md for the recorded paper-vs-measured comparison.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    AlgorithmRun,
    build_dataset,
    build_session,
    run_algorithm,
    run_problem_suite,
)
from repro.experiments.figures import (
    FigureResult,
    figure_1_2_tag_clouds,
    table_1_problem_instances,
    table_2_capabilities,
    figure_3_similarity_time,
    figure_4_similarity_quality,
    figure_5_diversity_time,
    figure_6_diversity_quality,
    figure_7_scaling_time,
    figure_8_scaling_quality,
    figure_9_user_study,
    run_similarity_experiment,
    run_diversity_experiment,
    run_scaling_experiment,
    case_studies,
)
from repro.experiments.reporting import format_rows, render_figure

__all__ = [
    "ExperimentConfig",
    "AlgorithmRun",
    "build_dataset",
    "build_session",
    "run_algorithm",
    "run_problem_suite",
    "FigureResult",
    "figure_1_2_tag_clouds",
    "table_1_problem_instances",
    "table_2_capabilities",
    "figure_3_similarity_time",
    "figure_4_similarity_quality",
    "figure_5_diversity_time",
    "figure_6_diversity_quality",
    "figure_7_scaling_time",
    "figure_8_scaling_quality",
    "figure_9_user_study",
    "run_similarity_experiment",
    "run_diversity_experiment",
    "run_scaling_experiment",
    "case_studies",
    "format_rows",
    "render_figure",
]
