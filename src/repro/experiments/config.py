"""Configuration of the reproduction experiments.

The defaults are sized for a laptop run of the full benchmark suite in
minutes rather than the paper's tens of minutes per Exact run; every
knob that affects fidelity (k, support fraction, thresholds, signature
dimensionality, LSH parameters) matches Section 6.1, and scale knobs
(dataset size, candidate-group cap) are documented so they can be raised
towards the paper's 33K-tuple / 4,535-group setting on a bigger budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["ExperimentConfig"]


@dataclass
class ExperimentConfig:
    """All knobs of the reproduction experiments.

    Parameters mirroring Section 6.1 of the paper:

    * ``k`` = 3 groups returned;
    * ``support_fraction`` = 1% of the scoped tagging tuples (the paper's
      ``p = 350`` over 33K tuples);
    * ``user_threshold`` / ``item_threshold`` = 0.5 (the paper's q, r);
    * ``signature_dimensions`` = 25 topic categories;
    * ``lsh_bits`` = 10 initial hash functions, ``lsh_tables`` = 1.

    Scale parameters (smaller than the paper by default so the whole
    suite runs in minutes):

    * ``n_users`` / ``n_items`` / ``n_actions`` -- synthetic corpus size;
    * ``max_groups`` -- cap on candidate groups shared by every
      algorithm, keeping the Exact baseline enumerable;
    * ``scaling_bins`` -- tuple-count bins for the Figure 7/8 sweep
      (fractions of ``n_actions``).
    """

    # Dataset scale.
    n_users: int = 200
    n_items: int = 400
    n_actions: int = 6000
    seed: int = 42

    # Problem parameters (Section 6.1).
    k: int = 3
    support_fraction: float = 0.01
    user_threshold: float = 0.5
    item_threshold: float = 0.5

    # Candidate group enumeration.
    group_min_support: int = 5
    max_groups: Optional[int] = 120

    # Tag signatures.
    signature_backend: str = "frequency"
    signature_dimensions: int = 25
    lda_iterations: int = 60

    # LSH parameters.
    lsh_bits: int = 10
    lsh_tables: int = 1

    # Exact baseline guard.
    exact_max_candidates: int = 2_000_000

    # Figure 7/8 bins, as fractions of ``n_actions`` (paper: 5K..30K tuples).
    scaling_bins: Tuple[float, ...] = (0.17, 0.33, 0.67, 1.0)

    # User study.
    user_study_judges: int = 30

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ValueError("k must be at least 2 for pairwise quality metrics")
        if not 0.0 < self.support_fraction <= 1.0:
            raise ValueError("support_fraction must lie in (0, 1]")
        if self.max_groups is not None and self.max_groups < self.k:
            raise ValueError("max_groups must be at least k")
        if any(fraction <= 0 or fraction > 1 for fraction in self.scaling_bins):
            raise ValueError("scaling_bins must be fractions in (0, 1]")

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """A minimal configuration for smoke tests and CI."""
        return cls(
            n_users=80,
            n_items=150,
            n_actions=1500,
            max_groups=60,
            scaling_bins=(0.5, 1.0),
            user_study_judges=12,
        )

    @classmethod
    def paper_scale(cls) -> "ExperimentConfig":
        """A configuration approaching the paper's dataset scale.

        33K tagging actions and an uncapped candidate-group set; expect
        Exact runs to take tens of minutes, as the paper reports.
        """
        return cls(
            n_users=2300,
            n_items=6000,
            n_actions=33000,
            max_groups=None,
            signature_backend="lda",
        )
