"""Per-figure and per-table experiment drivers.

One function per artefact of the paper's evaluation section; each
returns a :class:`FigureResult` whose rows are the series the paper
plots.  The heavyweight pieces (dataset generation, session preparation)
are cached per configuration so a benchmark session that regenerates
every figure pays for them once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.casestudy import CaseStudy, build_case_study, render_case_study
from repro.analysis.queries import AnalysisQuery, analyze
from repro.analysis.userstudy import SimulatedUserStudy
from repro.algorithms.capabilities import capability_matrix
from repro.core.framework import TagDM
from repro.core.problem import TABLE1_SPECS
from repro.dataset.store import TaggingDataset
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import render_figure
from repro.experiments.runner import (
    AlgorithmRun,
    build_dataset,
    build_session,
    run_problem_suite,
)
from repro.text.tagcloud import TagCloud, build_tag_cloud, render_tag_cloud

__all__ = [
    "FigureResult",
    "experiment_environment",
    "clear_environment_cache",
    "figure_1_2_tag_clouds",
    "table_1_problem_instances",
    "table_2_capabilities",
    "run_similarity_experiment",
    "run_diversity_experiment",
    "run_scaling_experiment",
    "figure_3_similarity_time",
    "figure_4_similarity_quality",
    "figure_5_diversity_time",
    "figure_6_diversity_quality",
    "figure_7_scaling_time",
    "figure_8_scaling_quality",
    "figure_9_user_study",
    "case_studies",
]

SIMILARITY_PROBLEMS: Tuple[int, ...] = (1, 2, 3)
DIVERSITY_PROBLEMS: Tuple[int, ...] = (4, 5, 6)
SIMILARITY_ALGORITHMS: Tuple[str, ...] = ("exact", "sm-lsh-fi", "sm-lsh-fo")
DIVERSITY_ALGORITHMS: Tuple[str, ...] = ("exact", "dv-fdp-fi", "dv-fdp-fo")


@dataclass
class FigureResult:
    """The reproduced content of one paper figure or table."""

    name: str
    description: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""
    extra: Dict[str, object] = field(default_factory=dict)

    def render(self, columns: Optional[Sequence[str]] = None) -> str:
        """Readable text rendering of the figure."""
        return render_figure(
            f"{self.name}: {self.description}", self.rows, columns=columns, notes=self.notes
        )


# ----------------------------------------------------------------------
# Cached experiment environment (dataset + prepared session).
# ----------------------------------------------------------------------
_ENVIRONMENT_CACHE: Dict[Tuple, Tuple[TaggingDataset, TagDM]] = {}


def _config_key(config: ExperimentConfig) -> Tuple:
    return (
        config.n_users,
        config.n_items,
        config.n_actions,
        config.seed,
        config.group_min_support,
        config.max_groups,
        config.signature_backend,
        config.signature_dimensions,
    )


def experiment_environment(config: ExperimentConfig) -> Tuple[TaggingDataset, TagDM]:
    """Return (dataset, prepared session) for ``config``, cached."""
    key = _config_key(config)
    if key not in _ENVIRONMENT_CACHE:
        dataset = build_dataset(config)
        session = build_session(dataset, config)
        _ENVIRONMENT_CACHE[key] = (dataset, session)
    return _ENVIRONMENT_CACHE[key]


def clear_environment_cache() -> None:
    """Drop every cached experiment environment (used by tests)."""
    _ENVIRONMENT_CACHE.clear()


# ----------------------------------------------------------------------
# Figures 1 and 2: tag signatures as tag clouds.
# ----------------------------------------------------------------------
def figure_1_2_tag_clouds(
    config: Optional[ExperimentConfig] = None,
    location: str = "CA",
    max_tags: int = 20,
) -> FigureResult:
    """Reproduce Figures 1-2: tag clouds for one director, all vs CA users.

    The paper renders the tag signature of Woody Allen movies for all
    users (Figure 1) and for California users only (Figure 2).  The
    synthetic corpus has no Woody Allen, so the most-tagged director is
    used; the comparison semantics (full population versus one location's
    sub-population, overlap and dropped tags) are identical.
    """
    config = config or ExperimentConfig()
    dataset, _session = experiment_environment(config)

    director_counts = dataset.value_counts("item.director")
    director = max(director_counts, key=director_counts.get)
    scoped = dataset.filter({"item.director": director})

    all_tags = scoped.tags_for_indices(range(scoped.n_actions))
    cloud_all = build_tag_cloud(
        all_tags, title=f"director={director}, all users", max_tags=max_tags
    )

    location_counts = scoped.value_counts("user.location")
    if location not in location_counts:
        location = max(location_counts, key=location_counts.get)
    scoped_location = scoped.filter({"user.location": location})
    location_tags = scoped_location.tags_for_indices(range(scoped_location.n_actions))
    cloud_location = build_tag_cloud(
        location_tags, title=f"director={director}, location={location}", max_tags=max_tags
    )

    rows: List[Dict[str, object]] = []
    for cloud, which in ((cloud_all, "figure-1 (all users)"), (cloud_location, f"figure-2 ({location})")):
        for entry in cloud.entries:
            rows.append(
                {"figure": which, "tag": entry.tag, "count": entry.count, "size": round(entry.size, 3)}
            )
    dropped = cloud_all.difference(cloud_location)
    notes = (
        f"director with most tagging actions: {director}; "
        f"tags prominent overall but absent for {location} users: "
        + (", ".join(dropped[:5]) if dropped else "(none)")
    )
    return FigureResult(
        name="Figures 1-2",
        description="group tag signatures rendered as frequency tag clouds",
        rows=rows,
        notes=notes,
        extra={
            "cloud_all": cloud_all,
            "cloud_location": cloud_location,
            "rendered_all": render_tag_cloud(cloud_all),
            "rendered_location": render_tag_cloud(cloud_location),
        },
    )


# ----------------------------------------------------------------------
# Tables 1 and 2.
# ----------------------------------------------------------------------
def table_1_problem_instances() -> FigureResult:
    """Reproduce Table 1: the six studied problem instantiations."""
    rows = [
        {
            "id": problem_id,
            "user": spec[0].value,
            "item": spec[1].value,
            "tag": spec[2].value,
            "C": "U,I",
            "O": "T",
        }
        for problem_id, spec in sorted(TABLE1_SPECS.items())
    ]
    return FigureResult(
        name="Table 1",
        description="concrete TagDM problem instantiations",
        rows=rows,
    )


def table_2_capabilities() -> FigureResult:
    """Reproduce Table 2: summary of TagDM problem solutions."""
    rows = [
        {
            "optimization": row.optimization,
            "algorithm": row.algorithm_family,
            "constraints": row.constraints,
            "technique": row.technique,
        }
        for row in capability_matrix()
    ]
    return FigureResult(
        name="Table 2",
        description="summary of TagDM problem solutions",
        rows=rows,
    )


# ----------------------------------------------------------------------
# Figures 3-6: execution time and quality on the full candidate set.
# ----------------------------------------------------------------------
def run_similarity_experiment(
    config: Optional[ExperimentConfig] = None,
) -> List[AlgorithmRun]:
    """Problems 1-3 with Exact, SM-LSH-Fi and SM-LSH-Fo (Figures 3-4)."""
    config = config or ExperimentConfig()
    dataset, session = experiment_environment(config)
    return run_problem_suite(
        session, dataset, config, SIMILARITY_PROBLEMS, SIMILARITY_ALGORITHMS
    )


def run_diversity_experiment(
    config: Optional[ExperimentConfig] = None,
) -> List[AlgorithmRun]:
    """Problems 4-6 with Exact, DV-FDP-Fi and DV-FDP-Fo (Figures 5-6)."""
    config = config or ExperimentConfig()
    dataset, session = experiment_environment(config)
    return run_problem_suite(
        session, dataset, config, DIVERSITY_PROBLEMS, DIVERSITY_ALGORITHMS
    )


def _time_rows(runs: Sequence[AlgorithmRun]) -> List[Dict[str, object]]:
    return [
        {
            "problem": run.problem_name,
            "algorithm": run.algorithm,
            "time_s": round(run.elapsed_seconds, 4),
            "evaluations": run.evaluations,
            "feasible": run.feasible,
        }
        for run in runs
    ]


def _quality_rows(runs: Sequence[AlgorithmRun]) -> List[Dict[str, object]]:
    return [
        {
            "problem": run.problem_name,
            "algorithm": run.algorithm,
            "quality": None if run.quality is None else round(run.quality, 4),
            "objective": round(run.objective, 4),
            "k": run.k_returned,
            "null_result": run.null_result,
        }
        for run in runs
    ]


def figure_3_similarity_time(
    config: Optional[ExperimentConfig] = None,
    runs: Optional[Sequence[AlgorithmRun]] = None,
) -> FigureResult:
    """Figure 3: execution time of Problems 1-3 (tag similarity)."""
    runs = runs if runs is not None else run_similarity_experiment(config)
    return FigureResult(
        name="Figure 3",
        description="execution time, Problems 1-3 (Exact vs SM-LSH-Fi vs SM-LSH-Fo)",
        rows=_time_rows(runs),
        notes="expected shape: both LSH variants run far faster than Exact",
    )


def figure_4_similarity_quality(
    config: Optional[ExperimentConfig] = None,
    runs: Optional[Sequence[AlgorithmRun]] = None,
) -> FigureResult:
    """Figure 4: result quality of Problems 1-3 (avg pairwise cosine)."""
    runs = runs if runs is not None else run_similarity_experiment(config)
    return FigureResult(
        name="Figure 4",
        description="result quality, Problems 1-3 (average pairwise cosine similarity)",
        rows=_quality_rows(runs),
        notes="expected shape: LSH quality close to the Exact optimum",
    )


def figure_5_diversity_time(
    config: Optional[ExperimentConfig] = None,
    runs: Optional[Sequence[AlgorithmRun]] = None,
) -> FigureResult:
    """Figure 5: execution time of Problems 4-6 (tag diversity)."""
    runs = runs if runs is not None else run_diversity_experiment(config)
    return FigureResult(
        name="Figure 5",
        description="execution time, Problems 4-6 (Exact vs DV-FDP-Fi vs DV-FDP-Fo)",
        rows=_time_rows(runs),
        notes="expected shape: both FDP variants run far faster than Exact",
    )


def figure_6_diversity_quality(
    config: Optional[ExperimentConfig] = None,
    runs: Optional[Sequence[AlgorithmRun]] = None,
) -> FigureResult:
    """Figure 6: result quality of Problems 4-6 (avg pairwise cosine)."""
    runs = runs if runs is not None else run_diversity_experiment(config)
    return FigureResult(
        name="Figure 6",
        description="result quality, Problems 4-6 (average pairwise cosine similarity)",
        rows=_quality_rows(runs),
        notes=(
            "expected shape: FDP selections nearly as dispersed as Exact "
            "(lower cosine similarity = more diverse tagging behaviour)"
        ),
    )


# ----------------------------------------------------------------------
# Figures 7-8: varying the number of tagging tuples.
# ----------------------------------------------------------------------
def run_scaling_experiment(
    config: Optional[ExperimentConfig] = None,
) -> List[Dict[str, object]]:
    """Problem 1 (SM-LSH-Fo) and Problem 6 (DV-FDP-Fo) vs Exact per bin.

    The full corpus is sampled into bins of increasing tuple counts (the
    paper uses 5K/10K/20K/30K); each bin gets its own prepared session.
    """
    config = config or ExperimentConfig()
    dataset, _ = experiment_environment(config)
    rows: List[Dict[str, object]] = []
    for fraction in config.scaling_bins:
        bin_size = max(1, int(round(fraction * dataset.n_actions)))
        bin_dataset = dataset.sample(bin_size, seed=config.seed, name=f"bin-{bin_size}")
        session = build_session(bin_dataset, config)
        pairs = (
            (1, "exact"),
            (1, "sm-lsh-fo"),
            (6, "exact"),
            (6, "dv-fdp-fo"),
        )
        runs = []
        for problem_id, algorithm in pairs:
            runs.extend(
                run_problem_suite(session, bin_dataset, config, [problem_id], [algorithm])
            )
        for run in runs:
            row = run.as_row()
            row["tuples"] = bin_dataset.n_actions
            row["groups"] = session.n_groups
            rows.append(row)
    return rows


def figure_7_scaling_time(
    config: Optional[ExperimentConfig] = None,
    rows: Optional[List[Dict[str, object]]] = None,
) -> FigureResult:
    """Figure 7: execution time while varying the number of tagging tuples."""
    rows = rows if rows is not None else run_scaling_experiment(config)
    selected = [
        {
            "tuples": row["tuples"],
            "problem": row["problem"],
            "algorithm": row["algorithm"],
            "time_s": row["time_s"],
        }
        for row in rows
    ]
    return FigureResult(
        name="Figure 7",
        description="execution time vs number of tagging tuples (Problem 1 and Problem 6)",
        rows=selected,
        notes="expected shape: the Exact-vs-heuristic gap widens with more tuples",
    )


def figure_8_scaling_quality(
    config: Optional[ExperimentConfig] = None,
    rows: Optional[List[Dict[str, object]]] = None,
) -> FigureResult:
    """Figure 8: result quality while varying the number of tagging tuples."""
    rows = rows if rows is not None else run_scaling_experiment(config)
    selected = [
        {
            "tuples": row["tuples"],
            "problem": row["problem"],
            "algorithm": row["algorithm"],
            "quality": row["quality"],
            "feasible": row["feasible"],
            "null_result": row["null_result"],
        }
        for row in rows
    ]
    return FigureResult(
        name="Figure 8",
        description="result quality vs number of tagging tuples (Problem 1 and Problem 6)",
        rows=selected,
        notes="expected shape: heuristic quality stays comparable to Exact across bins",
    )


# ----------------------------------------------------------------------
# Figure 9: the (simulated) user study.
# ----------------------------------------------------------------------
def figure_9_user_study(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Figure 9: preference percentages over the six problem instances."""
    config = config or ExperimentConfig()
    study = SimulatedUserStudy(n_judges=config.user_study_judges, seed=config.seed)
    outcome = study.run()
    return FigureResult(
        name="Figure 9",
        description="user study: preference percentage per problem instance (simulated)",
        rows=outcome.as_rows(),
        notes=(
            "simulated stand-in for the paper's AMT study; calibrated so the "
            "single-diversity-component instances (2, 3, 6) are preferred"
        ),
        extra={"outcome": outcome},
    )


# ----------------------------------------------------------------------
# Section 6.2.1 case studies.
# ----------------------------------------------------------------------
def case_studies(config: Optional[ExperimentConfig] = None) -> List[CaseStudy]:
    """Reproduce the two Section 6.2.1 case-study queries.

    Query 1 scopes one genre of movies and asks for diverse user groups
    that disagree in their tagging (Problem 4); query 2 scopes one user
    sub-population and asks for similar user groups that disagree on
    similar items (Problem 6).
    """
    config = config or ExperimentConfig()
    dataset, _ = experiment_environment(config)

    genre_counts = dataset.value_counts("item.genre")
    genre = max(genre_counts, key=genre_counts.get)
    query_1 = AnalysisQuery.build(
        {"item.genre": genre},
        problem=4,
        title=f"user tagging behaviour for {{genre={genre}}} movies",
    )

    gender_counts = dataset.value_counts("user.gender")
    gender = max(gender_counts, key=gender_counts.get)
    query_2 = AnalysisQuery.build(
        {"user.gender": gender},
        problem=6,
        title=f"tagging behaviour of {{gender={gender}}} users for movies",
    )

    studies: List[CaseStudy] = []
    for query in (query_1, query_2):
        report = analyze(
            dataset,
            query,
            algorithm="auto",
            k=config.k,
            support_fraction=config.support_fraction,
            signature_backend=config.signature_backend,
            signature_dimensions=config.signature_dimensions,
            seed=config.seed,
        )
        studies.append(build_case_study(report))
    return studies
