"""Plain-text reporting of experiment results.

The harness prints the same rows/series the paper plots, as aligned
text tables, so every figure can be regenerated and eyeballed from a
terminal or a benchmark log.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["format_rows", "render_figure"]


def _format_cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def format_rows(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Format dict rows as an aligned text table.

    ``columns`` fixes the column order; by default the keys of the first
    row are used.
    """
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    table = [[_format_cell(row.get(column)) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), max(len(row[i]) for row in table))
        for i, column in enumerate(columns)
    ]
    lines = [
        "  ".join(str(column).ljust(width) for column, width in zip(columns, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in table:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def render_figure(
    title: str,
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    notes: Optional[str] = None,
) -> str:
    """Render one figure/table reproduction as titled text."""
    lines = [f"=== {title} ==="]
    if notes:
        lines.append(notes)
    lines.append(format_rows(rows, columns))
    return "\n".join(lines)
