"""Shared machinery of the reproduction experiments.

The runner builds the synthetic MovieLens-style corpus, prepares a TagDM
session with the experiment configuration, runs (problem, algorithm)
pairs and records the two quantities the paper's quantitative evaluation
plots: wall-clock execution time and result quality, where quality is the
average pairwise cosine similarity between the tag signature vectors of
the ``k`` returned groups (Section 6.1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.enumeration import GroupEnumerationConfig
from repro.core.framework import TagDM
from repro.core.problem import TagDMProblem, table1_problem
from repro.core.result import MiningResult
from repro.dataset.store import TaggingDataset
from repro.dataset.synthetic import MovieLensStyleConfig, MovieLensStyleGenerator
from repro.experiments.config import ExperimentConfig
from repro.geometry.distance import average_pairwise_similarity

__all__ = [
    "AlgorithmRun",
    "build_dataset",
    "build_session",
    "build_problem",
    "run_algorithm",
    "run_problem_suite",
]


@dataclass
class AlgorithmRun:
    """One (problem, algorithm) execution with the paper's two metrics."""

    problem_id: int
    problem_name: str
    algorithm: str
    elapsed_seconds: float
    quality: Optional[float]
    objective: float
    feasible: bool
    k_returned: int
    support: int
    evaluations: int
    null_result: bool

    def as_row(self) -> Dict[str, object]:
        """Flatten into a dict for tabular reporting.

        ``null_result`` is emitted so figure tables can distinguish an
        algorithm returning nothing from one returning a feasible-but-
        small set (both can show ``k`` below the requested bound).
        """
        return {
            "problem": self.problem_name,
            "algorithm": self.algorithm,
            "time_s": round(self.elapsed_seconds, 4),
            "quality": None if self.quality is None else round(self.quality, 4),
            "objective": round(self.objective, 4),
            "feasible": self.feasible,
            "k": self.k_returned,
            "support": self.support,
            "evaluations": self.evaluations,
            "null_result": self.null_result,
        }


def build_dataset(config: ExperimentConfig) -> TaggingDataset:
    """Generate the MovieLens-style corpus used by every experiment."""
    generator = MovieLensStyleGenerator(
        MovieLensStyleConfig(
            n_users=config.n_users,
            n_items=config.n_items,
            n_actions=config.n_actions,
            n_topics=config.signature_dimensions,
            seed=config.seed,
        )
    )
    return generator.generate(name="movielens-style-experiment")


def build_session(
    dataset: TaggingDataset, config: ExperimentConfig, prepare: bool = True
) -> TagDM:
    """Prepare a TagDM session over ``dataset`` per the configuration."""
    session = TagDM(
        dataset,
        enumeration=GroupEnumerationConfig(
            min_support=config.group_min_support,
            mode="partial",
            max_predicates=2,
            max_groups=config.max_groups,
        ),
        signature_backend=config.signature_backend,
        signature_dimensions=config.signature_dimensions,
        seed=config.seed,
    )
    return session.prepare() if prepare else session


def build_problem(
    problem_id: int, dataset: TaggingDataset, config: ExperimentConfig
) -> TagDMProblem:
    """Instantiate one Table 1 problem with the configured parameters."""
    min_support = max(1, int(round(config.support_fraction * dataset.n_actions)))
    return table1_problem(
        problem_id,
        k=config.k,
        min_support=min_support,
        user_threshold=config.user_threshold,
        item_threshold=config.item_threshold,
    )


def _result_quality(result: MiningResult) -> Optional[float]:
    """The paper's quality metric: mean pairwise cosine of returned signatures."""
    if len(result.groups) < 2:
        return None
    signatures = [group.require_signature() for group in result.groups]
    return average_pairwise_similarity(signatures)


def run_algorithm(
    session: TagDM,
    problem: TagDMProblem,
    algorithm: str,
    config: ExperimentConfig,
    problem_id: int = 0,
) -> AlgorithmRun:
    """Solve ``problem`` with ``algorithm`` and record time and quality."""
    options: Dict[str, object] = {}
    if algorithm.startswith("sm-lsh"):
        options = {"n_bits": config.lsh_bits, "n_tables": config.lsh_tables}
    elif algorithm == "exact":
        options = {"max_candidates": config.exact_max_candidates}

    started = time.perf_counter()
    result = session.solve(problem, algorithm=algorithm, **options)
    elapsed = time.perf_counter() - started
    return AlgorithmRun(
        problem_id=problem_id,
        problem_name=problem.name,
        algorithm=algorithm,
        elapsed_seconds=elapsed,
        quality=_result_quality(result),
        objective=result.objective_value,
        feasible=result.feasible,
        k_returned=result.k,
        support=result.support,
        evaluations=result.evaluations,
        null_result=result.is_empty,
    )


def run_problem_suite(
    session: TagDM,
    dataset: TaggingDataset,
    config: ExperimentConfig,
    problem_ids: Sequence[int],
    algorithms: Sequence[str],
) -> List[AlgorithmRun]:
    """Run every (problem, algorithm) combination and collect the runs."""
    runs: List[AlgorithmRun] = []
    for problem_id in problem_ids:
        problem = build_problem(problem_id, dataset, config)
        for algorithm in algorithms:
            runs.append(
                run_algorithm(session, problem, algorithm, config, problem_id=problem_id)
            )
    return runs
