"""Computational-geometry substrate: distances and facility dispersion.

Section 5 of the paper maps tag-diversity maximisation onto the Facility
Dispersion Problem (FDP): treat each group tag signature as a point in a
unit hypercube and pick ``k`` points maximising the average (or minimum)
pairwise distance.  This package provides:

* :mod:`repro.geometry.distance` -- cosine similarity / distance and
  pairwise matrices;
* :mod:`repro.geometry.dispersion` -- the greedy MAX-AVG heuristic of
  Ravi, Rosenkrantz & Tayi (factor-4 approximation), a MAX-MIN variant,
  an exact enumerator for small instances, and a constraint-aware greedy
  used by DV-FDP-Fo.
"""

from repro.geometry.distance import (
    cosine_similarity,
    cosine_distance,
    pairwise_cosine_similarity,
    pairwise_cosine_distance,
    average_pairwise_distance,
    average_pairwise_similarity,
    minimum_pairwise_distance,
)
from repro.geometry.dispersion import (
    DispersionResult,
    greedy_max_avg_dispersion,
    greedy_max_min_dispersion,
    exact_max_dispersion,
    constrained_greedy_dispersion,
)

__all__ = [
    "cosine_similarity",
    "cosine_distance",
    "pairwise_cosine_similarity",
    "pairwise_cosine_distance",
    "average_pairwise_distance",
    "average_pairwise_similarity",
    "minimum_pairwise_distance",
    "DispersionResult",
    "greedy_max_avg_dispersion",
    "greedy_max_min_dispersion",
    "exact_max_dispersion",
    "constrained_greedy_dispersion",
]
