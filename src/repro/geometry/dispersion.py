"""Facility dispersion heuristics.

Section 5 of the paper adapts the facility dispersion problem (FDP) to
TagDM: given ``n`` tag signature vectors, choose ``k`` of them maximising
the average pairwise distance (MAX-AVG) or the minimum pairwise distance
(MAX-MIN).  Both objectives are NP-hard; the paper's DV-FDP uses the
greedy heuristic of Ravi, Rosenkrantz & Tayi, which carries a factor-4
approximation guarantee for MAX-AVG under the triangle inequality
(Theorem 4).

This module implements the heuristics over an explicit distance matrix so
they are reusable for any metric, plus an exact enumerator for small
instances (used by the Exact baseline and by tests validating the
approximation bound) and a constraint-aware greedy (used by DV-FDP-Fo to
fold user/item constraints into the add step).

The greedy loops are *incremental*: instead of re-summing (or re-taking
the minimum over) the selected set for every candidate at every round --
``O(n * k)`` work per add step, ``O(n * k^2)`` total, all in Python --
each selection maintains a per-candidate gain (MAX-AVG) or min-distance
(MAX-MIN) array that one vectorised update per add step keeps current,
for ``O(n)`` numpy work per step and ``O(n * k)`` total.

Tie-break rule: every add step picks candidates via ``np.argmax``, so
among equally good candidates the **lowest index wins**, and the whole
construction is deterministic.  (The pre-vectorised implementation
iterated a Python ``set``, making tie-breaks order-dependent across
runs.)  The matrices are assumed symmetric, as every distance matrix is;
:mod:`repro.geometry.reference` retains the naive loops for parity tests
and benchmarking.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "DispersionResult",
    "greedy_max_avg_dispersion",
    "greedy_max_min_dispersion",
    "exact_max_dispersion",
    "constrained_greedy_dispersion",
]


@dataclass(frozen=True)
class DispersionResult:
    """Outcome of a dispersion run: chosen indices and objective value."""

    indices: Tuple[int, ...]
    objective: float
    objective_kind: str

    def __len__(self) -> int:
        return len(self.indices)


def _validate_matrix(distance_matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(distance_matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("distance matrix must be square")
    if matrix.shape[0] == 0:
        raise ValueError("distance matrix must be non-empty")
    return matrix


def _average_pairwise(matrix: np.ndarray, indices: Sequence[int]) -> float:
    size = len(indices)
    if size < 2:
        return 0.0
    idx = np.asarray(indices, dtype=np.intp)
    submatrix = matrix[np.ix_(idx, idx)]
    # Symmetric matrix: the off-diagonal sum counts every pair twice.
    return float((submatrix.sum() - np.trace(submatrix)) / (size * (size - 1)))


def _minimum_pairwise(matrix: np.ndarray, indices: Sequence[int]) -> float:
    size = len(indices)
    if size < 2:
        return 0.0
    idx = np.asarray(indices, dtype=np.intp)
    submatrix = matrix[np.ix_(idx, idx)]
    rows, cols = np.triu_indices(size, k=1)
    return float(submatrix[rows, cols].min())


def greedy_max_avg_dispersion(distance_matrix: np.ndarray, k: int) -> DispersionResult:
    """Greedy MAX-AVG dispersion (Ravi et al., factor-4 for metrics).

    Seeds with the farthest pair, then repeatedly adds the point whose
    total distance to the already-selected set is maximal -- exactly the
    add step of Algorithm 2 (DV-FDP) in the paper.
    """
    matrix = _validate_matrix(distance_matrix)
    n = matrix.shape[0]
    if k < 1:
        raise ValueError("k must be at least 1")
    k = min(k, n)
    if k == 1:
        return DispersionResult(indices=(0,), objective=0.0, objective_kind="max-avg")

    # Seed: the pair joined by the edge of maximum weight.
    upper = np.triu(matrix, k=1)
    seed_a, seed_b = np.unravel_index(np.argmax(upper), upper.shape)
    selected = [int(seed_a), int(seed_b)]

    # Incremental gain array: gains[c] = sum of matrix[c, chosen] over the
    # selected set, refreshed with one O(n) update per add step.
    gains = matrix[:, seed_a] + matrix[:, seed_b]
    available = np.ones(n, dtype=bool)
    available[selected] = False
    while len(selected) < k and available.any():
        masked = np.where(available, gains, -np.inf)
        best_candidate = int(np.argmax(masked))
        selected.append(best_candidate)
        available[best_candidate] = False
        gains = gains + matrix[:, best_candidate]

    return DispersionResult(
        indices=tuple(selected),
        objective=_average_pairwise(matrix, selected),
        objective_kind="max-avg",
    )


def greedy_max_min_dispersion(distance_matrix: np.ndarray, k: int) -> DispersionResult:
    """Greedy MAX-MIN dispersion (farthest-point / Gonzalez-style).

    Seeds with the farthest pair, then adds the point maximising its
    minimum distance to the selected set.  Provided as the alternative
    optimality criterion discussed in Section 5; exposed for the
    dispersion ablation bench.
    """
    matrix = _validate_matrix(distance_matrix)
    n = matrix.shape[0]
    if k < 1:
        raise ValueError("k must be at least 1")
    k = min(k, n)
    if k == 1:
        return DispersionResult(indices=(0,), objective=0.0, objective_kind="max-min")

    upper = np.triu(matrix, k=1)
    seed_a, seed_b = np.unravel_index(np.argmax(upper), upper.shape)
    selected = [int(seed_a), int(seed_b)]

    # Incremental min-distance array: min_distance[c] = min over the
    # selected set of matrix[c, chosen], one O(n) update per add step.
    min_distance = np.minimum(matrix[:, seed_a], matrix[:, seed_b])
    available = np.ones(n, dtype=bool)
    available[selected] = False
    while len(selected) < k and available.any():
        masked = np.where(available, min_distance, -np.inf)
        best_candidate = int(np.argmax(masked))
        selected.append(best_candidate)
        available[best_candidate] = False
        min_distance = np.minimum(min_distance, matrix[:, best_candidate])

    return DispersionResult(
        indices=tuple(selected),
        objective=_minimum_pairwise(matrix, selected),
        objective_kind="max-min",
    )


def exact_max_dispersion(
    distance_matrix: np.ndarray,
    k: int,
    objective: str = "max-avg",
    max_candidates: int = 5000000,
) -> DispersionResult:
    """Exhaustively find the ``k``-subset maximising the dispersion objective.

    Only feasible for small ``n`` / ``k``; ``max_candidates`` guards
    against accidental combinatorial explosions (the number of candidate
    subsets is ``C(n, k)``).
    """
    matrix = _validate_matrix(distance_matrix)
    n = matrix.shape[0]
    if k < 1:
        raise ValueError("k must be at least 1")
    k = min(k, n)
    if objective not in ("max-avg", "max-min"):
        raise ValueError("objective must be 'max-avg' or 'max-min'")

    from math import comb

    if comb(n, k) > max_candidates:
        raise ValueError(
            f"exact dispersion over C({n}, {k}) subsets exceeds the "
            f"max_candidates={max_candidates} guard"
        )

    score = _average_pairwise if objective == "max-avg" else _minimum_pairwise
    best_subset: Optional[Tuple[int, ...]] = None
    best_value = -np.inf
    for subset in combinations(range(n), k):
        value = score(matrix, subset)
        if value > best_value:
            best_value = value
            best_subset = subset
    assert best_subset is not None
    return DispersionResult(
        indices=best_subset, objective=float(best_value), objective_kind=objective
    )


def _greedy_grow_from_seed(
    matrix: np.ndarray,
    feasible: np.ndarray,
    seed_a: int,
    seed_b: int,
    k: int,
) -> List[int]:
    """Grow a pairwise-feasible set from one seed pair (greedy add step).

    Both the objective gain and the feasible-with-all-selected mask are
    maintained incrementally (one O(n) update per added member) instead
    of being recomputed against the whole selected set each round.
    """
    n = matrix.shape[0]
    selected: List[int] = [int(seed_a), int(seed_b)]
    remaining_mask = np.ones(n, dtype=bool)
    remaining_mask[selected] = False
    gains = matrix[:, seed_a] + matrix[:, seed_b]
    feasible_with_all = feasible[:, seed_a] & feasible[:, seed_b]
    while len(selected) < k and remaining_mask.any():
        # A candidate must be pairwise feasible with every selected member.
        candidate_feasible = remaining_mask & feasible_with_all
        if not candidate_feasible.any():
            break  # no feasible extension; return what we have
        masked = np.where(candidate_feasible, gains, -np.inf)
        best_candidate = int(np.argmax(masked))
        selected.append(best_candidate)
        remaining_mask[best_candidate] = False
        gains = gains + matrix[:, best_candidate]
        feasible_with_all &= feasible[:, best_candidate]
    return selected


def constrained_greedy_dispersion(
    distance_matrix: np.ndarray,
    k: int,
    pair_feasible: Optional[Callable[[int, int], bool]] = None,
    feasible_matrix: Optional[np.ndarray] = None,
    seed_pairs: Optional[Sequence[Tuple[int, int]]] = None,
    restarts: int = 8,
) -> Optional[DispersionResult]:
    """Greedy MAX-AVG dispersion with per-pair feasibility folding.

    This is the engine of DV-FDP-Fo (Section 5.3): at every add step only
    candidates that are pairwise feasible against every already-selected
    member are considered, so hard user/item constraints steer the
    construction instead of being checked only at the end.  Feasibility
    is supplied either as a callable ``pair_feasible(i, j)`` or as a
    precomputed boolean ``feasible_matrix`` (much faster for large
    candidate sets).  If the construction stalls before reaching ``k``
    members, up to ``restarts`` alternative seed pairs (next-heaviest
    feasible edges) are tried and the largest set found wins (ties broken
    by average pairwise weight).  Returns ``None`` when no feasible seed
    pair exists.
    """
    matrix = _validate_matrix(distance_matrix)
    n = matrix.shape[0]
    if k < 1:
        raise ValueError("k must be at least 1")
    if pair_feasible is None and feasible_matrix is None:
        raise ValueError("provide pair_feasible or feasible_matrix")
    if restarts < 1:
        raise ValueError("restarts must be at least 1")
    k = min(k, n)

    if feasible_matrix is None:
        feasible = np.zeros((n, n), dtype=bool)
        for a in range(n):
            for b in range(a + 1, n):
                ok = bool(pair_feasible(a, b))
                feasible[a, b] = ok
                feasible[b, a] = ok
    else:
        feasible = np.asarray(feasible_matrix, dtype=bool)
        if feasible.shape != matrix.shape:
            raise ValueError("feasible_matrix must have the same shape as the distance matrix")

    if seed_pairs is not None:
        allowed = np.zeros((n, n), dtype=bool)
        for a, b in seed_pairs:
            if a != b:
                allowed[a, b] = True
                allowed[b, a] = True
        seed_mask = feasible & allowed
    else:
        seed_mask = feasible.copy()
    np.fill_diagonal(seed_mask, False)

    if not seed_mask.any():
        if k == 1 and n >= 1:
            return DispersionResult(indices=(0,), objective=0.0, objective_kind="max-avg")
        return None

    masked_weights = np.where(seed_mask, matrix, -np.inf)
    best_selected: Optional[List[int]] = None
    best_key: Tuple[int, float] = (-1, -np.inf)

    for _attempt in range(restarts):
        if not np.isfinite(masked_weights).any() or masked_weights.max() == -np.inf:
            break
        seed_a, seed_b = np.unravel_index(np.argmax(masked_weights), masked_weights.shape)
        selected = _greedy_grow_from_seed(matrix, feasible, int(seed_a), int(seed_b), k)
        key = (len(selected), _average_pairwise(matrix, selected))
        if key > best_key:
            best_key = key
            best_selected = selected
        if len(selected) >= k:
            break
        # Exclude this seed edge and retry from the next-heaviest one.
        masked_weights[seed_a, seed_b] = -np.inf
        masked_weights[seed_b, seed_a] = -np.inf

    assert best_selected is not None
    return DispersionResult(
        indices=tuple(best_selected),
        objective=_average_pairwise(matrix, best_selected),
        objective_kind="max-avg",
    )
