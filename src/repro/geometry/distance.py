"""Cosine similarity / distance utilities for signature vectors.

All TagDM tag-dimension comparisons in the paper use the cosine of the
angle between two group tag signature vectors (Section 2.1.2); diversity
is its complement.  Signature vectors produced by the topic models are
non-negative, so cosine similarity lies in ``[0, 1]`` and
``1 - similarity`` is a well-behaved distance for the dispersion
heuristics.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "cosine_similarity",
    "cosine_distance",
    "pairwise_cosine_similarity",
    "pairwise_cosine_distance",
    "average_pairwise_distance",
    "average_pairwise_similarity",
    "minimum_pairwise_distance",
]


def cosine_similarity(vector_a: Sequence[float], vector_b: Sequence[float]) -> float:
    """Cosine similarity of two vectors; zero vectors give 0.0."""
    a = np.asarray(vector_a, dtype=float)
    b = np.asarray(vector_b, dtype=float)
    norm_a = np.linalg.norm(a)
    norm_b = np.linalg.norm(b)
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return float(np.clip(np.dot(a, b) / (norm_a * norm_b), -1.0, 1.0))


def cosine_distance(vector_a: Sequence[float], vector_b: Sequence[float]) -> float:
    """Cosine distance ``1 - cosine_similarity``."""
    return 1.0 - cosine_similarity(vector_a, vector_b)


def pairwise_cosine_similarity(vectors: Sequence[Sequence[float]]) -> np.ndarray:
    """Full ``(n, n)`` cosine-similarity matrix.

    Rows with zero norm get similarity 0 against everything (including
    themselves), mirroring :func:`cosine_similarity`.
    """
    array = np.atleast_2d(np.asarray(vectors, dtype=float))
    norms = np.linalg.norm(array, axis=1)
    safe = np.where(norms > 0, norms, 1.0)
    unit = array / safe[:, None]
    matrix = np.clip(unit @ unit.T, -1.0, 1.0)
    zero_mask = norms == 0
    if zero_mask.any():
        matrix[zero_mask, :] = 0.0
        matrix[:, zero_mask] = 0.0
    return matrix


def pairwise_cosine_distance(vectors: Sequence[Sequence[float]]) -> np.ndarray:
    """Full ``(n, n)`` cosine-distance matrix with zero diagonal."""
    matrix = 1.0 - pairwise_cosine_similarity(vectors)
    np.fill_diagonal(matrix, 0.0)
    return matrix


def _pair_values(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=float)
    n = matrix.shape[0]
    if n < 2:
        return np.empty(0)
    upper = np.triu_indices(n, k=1)
    return matrix[upper]


def average_pairwise_distance(vectors: Sequence[Sequence[float]]) -> float:
    """Average pairwise cosine distance (the MAX-AVG dispersion objective)."""
    values = _pair_values(pairwise_cosine_distance(vectors))
    return float(values.mean()) if values.size else 0.0


def average_pairwise_similarity(vectors: Sequence[Sequence[float]]) -> float:
    """Average pairwise cosine similarity (the paper's quality metric)."""
    values = _pair_values(pairwise_cosine_similarity(vectors))
    return float(values.mean()) if values.size else 1.0


def minimum_pairwise_distance(vectors: Sequence[Sequence[float]]) -> float:
    """Minimum pairwise cosine distance (the MAX-MIN dispersion objective)."""
    values = _pair_values(pairwise_cosine_distance(vectors))
    return float(values.min()) if values.size else 0.0
