"""Naive reference implementations of the vectorised hot paths.

These are the pre-vectorisation (seed) implementations of the greedy
dispersion heuristics, subset scoring and LSH bucket assembly, kept
**only** for parity tests and for ``benchmarks/perf_report.py`` to
measure the speedup of the vectorised engine against.  Production code
must import from :mod:`repro.geometry.dispersion`, :mod:`repro.index`
and :mod:`repro.algorithms.scoring` instead.

The one intentional difference from the seed: the greedy loops here
iterate candidates in ascending index order (the seed iterated a Python
``set``, whose order is unspecified), so tie-breaks match the vectorised
``np.argmax`` rule -- lowest index wins -- and parity is exact.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.geometry.dispersion import DispersionResult, _validate_matrix
from repro.index.hyperplane import RandomHyperplaneHasher

__all__ = [
    "naive_average_pairwise",
    "naive_minimum_pairwise",
    "naive_greedy_max_avg_dispersion",
    "naive_greedy_max_min_dispersion",
    "naive_subset_mean",
    "naive_lsh_tables",
]


def naive_average_pairwise(matrix: np.ndarray, indices: Sequence[int]) -> float:
    """Seed ``_average_pairwise``: a Python loop over index pairs."""
    if len(indices) < 2:
        return 0.0
    pairs = [(a, b) for a, b in combinations(indices, 2)]
    return float(np.mean([matrix[a, b] for a, b in pairs]))


def naive_minimum_pairwise(matrix: np.ndarray, indices: Sequence[int]) -> float:
    """Seed ``_minimum_pairwise``: a Python min over index pairs."""
    if len(indices) < 2:
        return 0.0
    return float(min(matrix[a, b] for a, b in combinations(indices, 2)))


def naive_subset_mean(matrix: np.ndarray, indices: Sequence[int], singleton: float) -> float:
    """Seed ``PairwiseMatrixCache.subset_mean`` over one prebuilt matrix."""
    if len(indices) < 2:
        return singleton
    values = [matrix[a, b] for a, b in combinations(indices, 2)]
    return float(np.mean(values))


def naive_greedy_max_avg_dispersion(distance_matrix: np.ndarray, k: int) -> DispersionResult:
    """Seed MAX-AVG greedy: per-candidate Python re-summation each round."""
    matrix = _validate_matrix(distance_matrix)
    n = matrix.shape[0]
    if k < 1:
        raise ValueError("k must be at least 1")
    k = min(k, n)
    if k == 1:
        return DispersionResult(indices=(0,), objective=0.0, objective_kind="max-avg")

    upper = np.triu(matrix, k=1)
    seed_a, seed_b = np.unravel_index(np.argmax(upper), upper.shape)
    selected = [int(seed_a), int(seed_b)]
    remaining = sorted(set(range(n)) - set(selected))
    while len(selected) < k and remaining:
        best_candidate = None
        best_gain = -np.inf
        for candidate in remaining:
            gain = float(sum(matrix[candidate, chosen] for chosen in selected))
            if gain > best_gain:
                best_gain = gain
                best_candidate = candidate
        assert best_candidate is not None
        selected.append(best_candidate)
        remaining.remove(best_candidate)

    return DispersionResult(
        indices=tuple(selected),
        objective=naive_average_pairwise(matrix, selected),
        objective_kind="max-avg",
    )


def naive_greedy_max_min_dispersion(distance_matrix: np.ndarray, k: int) -> DispersionResult:
    """Seed MAX-MIN greedy: per-candidate Python min each round."""
    matrix = _validate_matrix(distance_matrix)
    n = matrix.shape[0]
    if k < 1:
        raise ValueError("k must be at least 1")
    k = min(k, n)
    if k == 1:
        return DispersionResult(indices=(0,), objective=0.0, objective_kind="max-min")

    upper = np.triu(matrix, k=1)
    seed_a, seed_b = np.unravel_index(np.argmax(upper), upper.shape)
    selected = [int(seed_a), int(seed_b)]
    remaining = sorted(set(range(n)) - set(selected))
    while len(selected) < k and remaining:
        best_candidate = None
        best_score = -np.inf
        for candidate in remaining:
            score = float(min(matrix[candidate, chosen] for chosen in selected))
            if score > best_score:
                best_score = score
                best_candidate = candidate
        assert best_candidate is not None
        selected.append(best_candidate)
        remaining.remove(best_candidate)

    return DispersionResult(
        indices=tuple(selected),
        objective=naive_minimum_pairwise(matrix, selected),
        objective_kind="max-min",
    )


def naive_lsh_tables(
    vectors: np.ndarray,
    n_bits: int,
    n_tables: int,
    seed: int,
) -> List[Dict[int, Tuple[int, ...]]]:
    """Seed LSH bucket assembly: fresh projection + per-row ``setdefault``.

    Replicates what ``CosineLshIndex.build`` (and therefore the seed
    ``rebuild_with_bits``) did before projection caching: re-hash every
    vector with a per-column key-packing loop, then grow bucket lists one
    row at a time.
    """
    array = np.atleast_2d(np.asarray(vectors, dtype=float))
    tables: List[Dict[int, Tuple[int, ...]]] = []
    for table in range(n_tables):
        hasher = RandomHyperplaneHasher(array.shape[1], n_bits, seed=seed + table)
        bits = hasher.hash_bits(array)
        keys = np.zeros(bits.shape[0], dtype=np.int64)
        for column in range(n_bits):
            keys = (keys << 1) | bits[:, column].astype(np.int64)
        buckets: Dict[int, List[int]] = {}
        for row, key in enumerate(keys):
            buckets.setdefault(int(key), []).append(row)
        tables.append({key: tuple(members) for key, members in buckets.items()})
    return tables
