"""Locality Sensitive Hashing substrate.

Section 4 of the paper builds its similarity-maximisation algorithms on
Charikar's sign-random-projection (cosine) LSH scheme: every tag
signature vector is reduced to a ``d'``-bit signature by taking the signs
of dot products with random hyperplanes; vectors whose angle is small
collide with high probability (Theorem 2).  This package implements that
scheme as a reusable index:

* :class:`~repro.index.hyperplane.RandomHyperplaneHasher` -- one family
  of ``d'`` random hyperplanes producing bit signatures;
* :class:`~repro.index.lsh.CosineLshIndex` -- ``l`` independent hash
  tables with bucket inspection, collision-probability estimates and the
  bucket-ranking access pattern SM-LSH relies on.
"""

from repro.index.hyperplane import RandomHyperplaneHasher, signature_to_key
from repro.index.lsh import Bucket, CosineLshIndex, collision_probability

__all__ = [
    "RandomHyperplaneHasher",
    "signature_to_key",
    "Bucket",
    "CosineLshIndex",
    "collision_probability",
]
