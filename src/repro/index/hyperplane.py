"""Random hyperplane (sign random projection) hash family.

Implements the LSH family of Theorem 2 in the paper (after Charikar
2002): draw ``n_bits`` random vectors ``r`` with i.i.d. standard normal
entries; the hash of a vector ``v`` is the bit string
``[sign(r_1 . v), ..., sign(r_bits . v)]``.  For two vectors at angle
``theta`` the per-bit collision probability is ``1 - theta / pi``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["RandomHyperplaneHasher", "signature_to_key", "pack_bits"]


def signature_to_key(bits: np.ndarray) -> int:
    """Pack a boolean signature into an integer bucket key."""
    key = 0
    for bit in np.asarray(bits, dtype=bool):
        key = (key << 1) | int(bit)
    return key


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack an ``(n, n_bits)`` boolean matrix into ``n`` integer keys.

    Vectorised equivalent of calling :func:`signature_to_key` per row:
    the first column is the most significant bit.  Signatures wider than
    63 bits fall back to the per-row Python path to avoid int64 overflow.
    """
    matrix = np.atleast_2d(np.asarray(bits, dtype=bool))
    n_bits = matrix.shape[1]
    if n_bits == 0:
        return np.zeros(matrix.shape[0], dtype=np.int64)
    if n_bits > 63:
        return np.array([signature_to_key(row) for row in matrix], dtype=object)
    weights = np.int64(1) << np.arange(n_bits - 1, -1, -1, dtype=np.int64)
    return matrix.astype(np.int64) @ weights


class RandomHyperplaneHasher:
    """One family of ``n_bits`` random hyperplanes in ``n_dimensions``.

    Parameters
    ----------
    n_dimensions:
        Dimensionality of the input vectors (the tag-signature length
        ``d``; with folded constraints this grows to ``d`` plus the
        one-hot widths of the folded attributes).
    n_bits:
        Number of hyperplanes, i.e. the reduced dimensionality ``d'``.
    seed:
        Seed for the hyperplane draws; two hashers with the same seed and
        shape are identical.
    """

    def __init__(self, n_dimensions: int, n_bits: int, seed: int = 0) -> None:
        if n_dimensions <= 0:
            raise ValueError("n_dimensions must be positive")
        if n_bits <= 0:
            raise ValueError("n_bits must be positive")
        self.n_dimensions = n_dimensions
        self.n_bits = n_bits
        self.seed = seed
        rng = np.random.default_rng(seed)
        # Rows are hyperplane normals r_1 ... r_{n_bits}.
        self._hyperplanes = rng.standard_normal((n_bits, n_dimensions))

    @property
    def hyperplanes(self) -> np.ndarray:
        """The ``(n_bits, n_dimensions)`` matrix of hyperplane normals."""
        return self._hyperplanes

    def _validate(self, vectors: np.ndarray) -> np.ndarray:
        array = np.atleast_2d(np.asarray(vectors, dtype=float))
        if array.shape[1] != self.n_dimensions:
            raise ValueError(
                f"expected vectors of dimension {self.n_dimensions}, "
                f"got {array.shape[1]}"
            )
        return array

    def project(self, vectors: np.ndarray) -> np.ndarray:
        """Return the raw projection matrix ``(n_vectors, n_bits)``.

        One matmul against the hyperplane normals; the sign of each entry
        is the corresponding hash bit.  Exposed so callers (the LSH index)
        can cache projections once and derive narrower signatures by
        column truncation without re-projecting.
        """
        array = self._validate(vectors)
        return array @ self._hyperplanes.T

    def hash_bits(self, vectors: np.ndarray) -> np.ndarray:
        """Return the boolean signature matrix ``(n_vectors, n_bits)``.

        A dot product of exactly zero hashes to bit 1, matching the
        ``r . v >= 0`` convention of the paper's hash function.
        """
        return self.project(vectors) >= 0.0

    def hash_keys(self, vectors: np.ndarray) -> np.ndarray:
        """Return integer bucket keys, one per input vector."""
        return pack_bits(self.hash_bits(vectors))

    def hash_one(self, vector: np.ndarray) -> Tuple[int, np.ndarray]:
        """Hash a single vector; returns ``(key, bit signature)``."""
        bits = self.hash_bits(np.asarray(vector, dtype=float).reshape(1, -1))[0]
        return signature_to_key(bits), bits

    def narrowed(self, n_bits: int, seed: Optional[int] = None) -> "RandomHyperplaneHasher":
        """Return a hasher with fewer bits (used by iterative relaxation).

        SM-LSH halves ``d'`` when no bucket yields a feasible result;
        using the same seed keeps the retained hyperplanes a prefix of the
        original family so behaviour stays comparable across iterations.
        """
        if n_bits <= 0:
            raise ValueError("n_bits must be positive")
        n_bits = min(n_bits, self.n_bits)
        clone = RandomHyperplaneHasher(
            self.n_dimensions, n_bits, seed=self.seed if seed is None else seed
        )
        clone._hyperplanes = self._hyperplanes[:n_bits].copy()
        return clone
