"""Multi-table cosine LSH index.

The SM-LSH family of algorithms (Section 4) hashes the ``n`` group tag
signature vectors into ``l`` hash tables of ``d'``-bit buckets, then --
unlike classic nearest-neighbour usage -- inspects and *ranks whole
buckets* to find the result set of tagging-action groups.  The index
below supports exactly that access pattern: build once, iterate buckets
per table, and re-hash cheaply with a narrower bit width during the
iterative relaxation loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.index.hyperplane import RandomHyperplaneHasher

__all__ = ["Bucket", "CosineLshIndex", "collision_probability"]


def collision_probability(vector_a: np.ndarray, vector_b: np.ndarray, n_bits: int) -> float:
    """Probability that two vectors share a full ``n_bits`` signature.

    From Theorem 2: per-bit collision probability is ``1 - theta / pi``
    where ``theta`` is the angle between the vectors; independent bits
    multiply.
    """
    a = np.asarray(vector_a, dtype=float)
    b = np.asarray(vector_b, dtype=float)
    norm_a = np.linalg.norm(a)
    norm_b = np.linalg.norm(b)
    if norm_a == 0 or norm_b == 0:
        # A zero vector hashes to the all-ones signature deterministically;
        # treat the angle as pi/2 against any non-zero vector.
        theta = math.pi / 2 if (norm_a > 0 or norm_b > 0) else 0.0
    else:
        cosine = float(np.clip(np.dot(a, b) / (norm_a * norm_b), -1.0, 1.0))
        theta = math.acos(cosine)
    per_bit = 1.0 - theta / math.pi
    return per_bit ** n_bits


@dataclass
class Bucket:
    """One LSH bucket: table index, integer key, member row ids."""

    table: int
    key: int
    members: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.members)


class CosineLshIndex:
    """``l`` independent random-hyperplane hash tables over a vector set.

    Parameters
    ----------
    n_dimensions:
        Input vector dimensionality.
    n_bits:
        Signature width ``d'`` per table.
    n_tables:
        Number of independent tables ``l``.
    seed:
        Base seed; table ``t`` uses ``seed + t`` for its hyperplanes.
    """

    def __init__(
        self,
        n_dimensions: int,
        n_bits: int = 10,
        n_tables: int = 1,
        seed: int = 0,
    ) -> None:
        if n_tables <= 0:
            raise ValueError("n_tables must be positive")
        self.n_dimensions = n_dimensions
        self.n_bits = n_bits
        self.n_tables = n_tables
        self.seed = seed
        self._hashers = [
            RandomHyperplaneHasher(n_dimensions, n_bits, seed=seed + table)
            for table in range(n_tables)
        ]
        self._tables: List[Dict[int, List[int]]] = [{} for _ in range(n_tables)]
        self._vectors: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def vectors(self) -> np.ndarray:
        """The indexed vectors (raises if :meth:`build` was not called)."""
        if self._vectors is None:
            raise RuntimeError("index has not been built yet")
        return self._vectors

    @property
    def n_indexed(self) -> int:
        """Number of indexed vectors (0 before :meth:`build`)."""
        return 0 if self._vectors is None else self._vectors.shape[0]

    def build(self, vectors: Sequence[Sequence[float]]) -> "CosineLshIndex":
        """Hash all ``vectors`` into every table.  Returns ``self``."""
        array = np.atleast_2d(np.asarray(vectors, dtype=float))
        if array.size == 0:
            raise ValueError("cannot build an LSH index over zero vectors")
        if array.shape[1] != self.n_dimensions:
            raise ValueError(
                f"expected vectors of dimension {self.n_dimensions}, "
                f"got {array.shape[1]}"
            )
        self._vectors = array
        self._tables = [{} for _ in range(self.n_tables)]
        for table, hasher in enumerate(self._hashers):
            keys = hasher.hash_keys(array)
            buckets = self._tables[table]
            for row, key in enumerate(keys):
                buckets.setdefault(int(key), []).append(row)
        return self

    def rebuild_with_bits(self, n_bits: int) -> "CosineLshIndex":
        """Return a new index over the same vectors with ``n_bits`` bits.

        Used by SM-LSH's iterative relaxation: fewer bits means coarser
        buckets, so more groups collide and a feasible bucket is more
        likely to appear.
        """
        clone = CosineLshIndex(
            self.n_dimensions, n_bits=n_bits, n_tables=self.n_tables, seed=self.seed
        )
        if self._vectors is not None:
            clone.build(self._vectors)
        return clone

    # ------------------------------------------------------------------
    def buckets(self, table: Optional[int] = None) -> Iterator[Bucket]:
        """Iterate buckets, over one table or all tables."""
        tables = range(self.n_tables) if table is None else [table]
        for table_index in tables:
            for key, members in self._tables[table_index].items():
                yield Bucket(table=table_index, key=key, members=list(members))

    def bucket_of(self, vector: Sequence[float], table: int = 0) -> Bucket:
        """Return the bucket the query ``vector`` falls into (may be empty)."""
        if table < 0 or table >= self.n_tables:
            raise IndexError(f"table {table} out of range")
        key, _ = self._hashers[table].hash_one(np.asarray(vector, dtype=float))
        members = self._tables[table].get(key, [])
        return Bucket(table=table, key=key, members=list(members))

    def candidates(self, vector: Sequence[float]) -> List[int]:
        """Union of bucket members of ``vector`` across all tables.

        This is the classic approximate-nearest-neighbour access path; it
        is exposed for completeness and used by tests to validate the
        collision-probability behaviour.
        """
        seen: List[int] = []
        seen_set = set()
        for table in range(self.n_tables):
            for member in self.bucket_of(vector, table).members:
                if member not in seen_set:
                    seen_set.add(member)
                    seen.append(member)
        return seen

    def bucket_count(self, table: Optional[int] = None) -> int:
        """Number of non-empty buckets in one table or across all tables."""
        if table is not None:
            return len(self._tables[table])
        return sum(len(buckets) for buckets in self._tables)

    def largest_bucket(self) -> Bucket:
        """Return the bucket with the most members across all tables."""
        best: Optional[Bucket] = None
        for bucket in self.buckets():
            if best is None or len(bucket) > len(best):
                best = bucket
        if best is None:
            raise RuntimeError("index has no buckets; call build() first")
        return best

    def stats(self) -> Dict[str, float]:
        """Bucket-occupancy statistics (useful for tuning ``d'`` and ``l``)."""
        sizes = [len(members) for table in self._tables for members in table.values()]
        if not sizes:
            return {"buckets": 0, "mean_size": 0.0, "max_size": 0, "singletons": 0}
        sizes_array = np.asarray(sizes)
        return {
            "buckets": int(len(sizes)),
            "mean_size": float(sizes_array.mean()),
            "max_size": int(sizes_array.max()),
            "singletons": int((sizes_array == 1).sum()),
        }
