"""Multi-table cosine LSH index.

The SM-LSH family of algorithms (Section 4) hashes the ``n`` group tag
signature vectors into ``l`` hash tables of ``d'``-bit buckets, then --
unlike classic nearest-neighbour usage -- inspects and *ranks whole
buckets* to find the result set of tagging-action groups.  The index
below supports exactly that access pattern: build once, iterate buckets
per table, and re-hash cheaply with a narrower bit width during the
iterative relaxation loop.

Hot-path design: :meth:`CosineLshIndex.build` runs one matmul per table
and caches the resulting sign-bit matrices.  Because the hyperplane rows
drawn for ``d'`` bits are a prefix of those drawn for any wider width
(same seeded RNG stream), :meth:`CosineLshIndex.rebuild_with_bits` with a
narrower width needs *zero re-projection*: it truncates the cached bit
columns and regroups the packed keys.  Bucket assembly itself is a
stable argsort-based grouping rather than a per-row ``dict.setdefault``
loop, and member lists are stored as immutable tuples that
:meth:`buckets` / :meth:`bucket_of` expose without copying.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.index.hyperplane import RandomHyperplaneHasher, pack_bits

__all__ = ["Bucket", "CosineLshIndex", "collision_probability"]


def collision_probability(vector_a: np.ndarray, vector_b: np.ndarray, n_bits: int) -> float:
    """Probability that two vectors share a full ``n_bits`` signature.

    From Theorem 2: per-bit collision probability is ``1 - theta / pi``
    where ``theta`` is the angle between the vectors; independent bits
    multiply.
    """
    a = np.asarray(vector_a, dtype=float)
    b = np.asarray(vector_b, dtype=float)
    norm_a = np.linalg.norm(a)
    norm_b = np.linalg.norm(b)
    if norm_a == 0 or norm_b == 0:
        # A zero vector hashes to the all-ones signature deterministically;
        # treat the angle as pi/2 against any non-zero vector.
        theta = math.pi / 2 if (norm_a > 0 or norm_b > 0) else 0.0
    else:
        cosine = float(np.clip(np.dot(a, b) / (norm_a * norm_b), -1.0, 1.0))
        theta = math.acos(cosine)
    per_bit = 1.0 - theta / math.pi
    return per_bit ** n_bits


@dataclass
class Bucket:
    """One LSH bucket: table index, integer key, member row ids.

    ``members`` is an immutable tuple shared with the index's internal
    table -- do not rely on mutating it.
    """

    table: int
    key: int
    members: Tuple[int, ...] = ()

    def __len__(self) -> int:
        return len(self.members)


def _group_rows_by_key(keys: np.ndarray) -> Dict[int, Tuple[int, ...]]:
    """Group row ids by hash key without a per-row Python dict loop.

    A stable argsort keeps member row ids ascending inside every bucket,
    and the resulting dict lists buckets in order of first appearance --
    exactly the insertion order a row-by-row ``setdefault`` build would
    produce, so downstream tie-breaks are unchanged.
    """
    sort_keys = keys
    if keys.dtype == np.int64 and keys.size and 0 <= keys[0] < 65536:
        # Narrow signatures (d' <= 16) fit uint16, where numpy's stable
        # argsort switches to a radix sort -- an order of magnitude
        # faster and the common case in the relaxation loop.
        if int(keys.max()) < 65536 and int(keys.min()) >= 0:
            sort_keys = keys.astype(np.uint16)
    order = np.argsort(sort_keys, kind="stable")
    sorted_keys = keys[order]
    n = len(keys)
    boundaries = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [n]))
    member_rows = order.tolist()
    groups = [
        (int(sorted_keys[start]), tuple(member_rows[start:end]))
        for start, end in zip(starts, ends)
    ]
    groups.sort(key=lambda item: item[1][0])
    return dict(groups)


class CosineLshIndex:
    """``l`` independent random-hyperplane hash tables over a vector set.

    Parameters
    ----------
    n_dimensions:
        Input vector dimensionality.
    n_bits:
        Signature width ``d'`` per table.
    n_tables:
        Number of independent tables ``l``.
    seed:
        Base seed; table ``t`` uses ``seed + t`` for its hyperplanes.
    """

    def __init__(
        self,
        n_dimensions: int,
        n_bits: int = 10,
        n_tables: int = 1,
        seed: int = 0,
    ) -> None:
        if n_tables <= 0:
            raise ValueError("n_tables must be positive")
        self.n_dimensions = n_dimensions
        self.n_bits = n_bits
        self.n_tables = n_tables
        self.seed = seed
        self._hashers = [
            RandomHyperplaneHasher(n_dimensions, n_bits, seed=seed + table)
            for table in range(n_tables)
        ]
        self._tables: List[Dict[int, Tuple[int, ...]]] = [{} for _ in range(n_tables)]
        self._vectors: Optional[np.ndarray] = None
        #: Per-table cached sign-bit matrices ``(n, n_bits)`` (set by build).
        self._bit_cache: List[np.ndarray] = []

    # ------------------------------------------------------------------
    @property
    def vectors(self) -> np.ndarray:
        """The indexed vectors (raises if :meth:`build` was not called)."""
        if self._vectors is None:
            raise RuntimeError("index has not been built yet")
        return self._vectors

    @property
    def n_indexed(self) -> int:
        """Number of indexed vectors (0 before :meth:`build`)."""
        return 0 if self._vectors is None else self._vectors.shape[0]

    @property
    def bit_cache(self) -> List[np.ndarray]:
        """Per-table cached sign-bit matrices (empty before :meth:`build`).

        Session snapshots persist these so :meth:`from_cached_bits` can
        restore the index without re-projecting.
        """
        return list(self._bit_cache)

    def build(self, vectors: Sequence[Sequence[float]]) -> "CosineLshIndex":
        """Hash all ``vectors`` into every table.  Returns ``self``."""
        array = np.atleast_2d(np.asarray(vectors, dtype=float))
        if array.size == 0:
            raise ValueError("cannot build an LSH index over zero vectors")
        if array.shape[1] != self.n_dimensions:
            raise ValueError(
                f"expected vectors of dimension {self.n_dimensions}, "
                f"got {array.shape[1]}"
            )
        self._vectors = array
        self._bit_cache = [hasher.hash_bits(array) for hasher in self._hashers]
        self._tables = [
            _group_rows_by_key(pack_bits(bits)) for bits in self._bit_cache
        ]
        return self

    @classmethod
    def from_cached_bits(
        cls,
        vectors: Sequence[Sequence[float]],
        bit_cache: Sequence[np.ndarray],
        seed: int = 0,
    ) -> "CosineLshIndex":
        """Rebuild an index from persisted sign-bit matrices.

        ``bit_cache`` is one ``(n, n_bits)`` boolean matrix per table, as
        cached by :meth:`build` (and saved by session snapshots).  Only
        key packing and bucket grouping run -- no projection -- so a
        warm-started process recovers the index in milliseconds.  The
        hyperplane hashers are re-drawn from ``seed`` (deterministic), so
        :meth:`bucket_of` / :meth:`candidates` behave identically to the
        original index.
        """
        if not bit_cache:
            raise ValueError("bit_cache must contain at least one table")
        array = np.atleast_2d(np.asarray(vectors, dtype=float))
        bits_list = [np.atleast_2d(np.asarray(bits, dtype=bool)) for bits in bit_cache]
        n_bits = bits_list[0].shape[1]
        if any(bits.shape != (array.shape[0], n_bits) for bits in bits_list):
            raise ValueError("bit matrices must all be (n_vectors, n_bits)")
        index = cls(
            n_dimensions=array.shape[1],
            n_bits=n_bits,
            n_tables=len(bits_list),
            seed=seed,
        )
        index._vectors = array
        index._bit_cache = bits_list
        index._tables = [_group_rows_by_key(pack_bits(bits)) for bits in bits_list]
        return index

    def rebuild_with_bits(self, n_bits: int) -> "CosineLshIndex":
        """Return a new index over the same vectors with ``n_bits`` bits.

        Used by SM-LSH's iterative relaxation: fewer bits means coarser
        buckets, so more groups collide and a feasible bucket is more
        likely to appear.  Narrowing a built index re-uses the cached
        sign bits (the ``n_bits``-wide signature is a column prefix of the
        cached one, because the hyperplane RNG stream is prefix-stable),
        so no projection work is repeated -- only key packing/grouping.
        """
        if self._vectors is not None and 0 < n_bits <= self.n_bits:
            clone = CosineLshIndex.__new__(CosineLshIndex)
            clone.n_dimensions = self.n_dimensions
            clone.n_bits = n_bits
            clone.n_tables = self.n_tables
            clone.seed = self.seed
            clone._hashers = [hasher.narrowed(n_bits) for hasher in self._hashers]
            clone._vectors = self._vectors
            clone._bit_cache = [bits[:, :n_bits] for bits in self._bit_cache]
            clone._tables = [
                _group_rows_by_key(pack_bits(bits)) for bits in clone._bit_cache
            ]
            return clone
        clone = CosineLshIndex(
            self.n_dimensions, n_bits=n_bits, n_tables=self.n_tables, seed=self.seed
        )
        if self._vectors is not None:
            clone.build(self._vectors)
        return clone

    # ------------------------------------------------------------------
    def buckets(self, table: Optional[int] = None) -> Iterator[Bucket]:
        """Iterate buckets, over one table or all tables.

        Member tuples are shared (not copied) with the index internals.
        """
        tables = range(self.n_tables) if table is None else [table]
        for table_index in tables:
            for key, members in self._tables[table_index].items():
                yield Bucket(table=table_index, key=key, members=members)

    def bucket_of(self, vector: Sequence[float], table: int = 0) -> Bucket:
        """Return the bucket the query ``vector`` falls into (may be empty)."""
        if table < 0 or table >= self.n_tables:
            raise IndexError(f"table {table} out of range")
        key, _ = self._hashers[table].hash_one(np.asarray(vector, dtype=float))
        members = self._tables[table].get(key, ())
        return Bucket(table=table, key=key, members=members)

    def candidates(self, vector: Sequence[float]) -> List[int]:
        """Union of bucket members of ``vector`` across all tables.

        This is the classic approximate-nearest-neighbour access path; it
        is exposed for completeness and used by tests to validate the
        collision-probability behaviour.
        """
        seen: List[int] = []
        seen_set = set()
        for table in range(self.n_tables):
            for member in self.bucket_of(vector, table).members:
                if member not in seen_set:
                    seen_set.add(member)
                    seen.append(member)
        return seen

    def bucket_count(self, table: Optional[int] = None) -> int:
        """Number of non-empty buckets in one table or across all tables."""
        if table is not None:
            return len(self._tables[table])
        return sum(len(buckets) for buckets in self._tables)

    def largest_bucket(self) -> Bucket:
        """Return the bucket with the most members across all tables."""
        best: Optional[Bucket] = None
        for bucket in self.buckets():
            if best is None or len(bucket) > len(best):
                best = bucket
        if best is None:
            raise RuntimeError("index has no buckets; call build() first")
        return best

    def stats(self) -> Dict[str, float]:
        """Bucket-occupancy statistics (useful for tuning ``d'`` and ``l``)."""
        sizes = [len(members) for table in self._tables for members in table.values()]
        if not sizes:
            return {"buckets": 0, "mean_size": 0.0, "max_size": 0, "singletons": 0}
        sizes_array = np.asarray(sizes)
        return {
            "buckets": int(len(sizes)),
            "mean_size": float(sizes_array.mean()),
            "max_size": int(sizes_array.max()),
            "singletons": int((sizes_array == 1).sum()),
        }
