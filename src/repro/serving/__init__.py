"""Long-lived serving loop over warm TagDM sessions.

The serving subsystem turns the persistence substrate (SQLite dataset
stores + warm-start session snapshots) into a process that can sit
under mixed insert/query traffic: a :class:`TagDMServer` registry of
per-corpus :class:`CorpusShard` instances, each with a single writer
thread, shared-read solves, and a :class:`SnapshotRotationPolicy`
keeping warm-start snapshots fresh and bounded.  See ``SERVING.md``.

:class:`TagDMHttpServer` puts the registry on the network: an HTTP
front-end speaking the wire-native API of :mod:`repro.api` (problem
specs in, serialised results out, typed error taxonomy).  See
``API.md``.
"""

from repro.serving.policy import SnapshotRotationPolicy, SnapshotRotator
from repro.serving.server import TagDMServer
from repro.serving.shards import CorpusShard, ReadWriteLock
from repro.serving.http import TagDMHttpServer

__all__ = [
    "TagDMServer",
    "TagDMHttpServer",
    "CorpusShard",
    "ReadWriteLock",
    "SnapshotRotationPolicy",
    "SnapshotRotator",
]
