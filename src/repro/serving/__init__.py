"""Long-lived serving over warm TagDM sessions, single- or multi-process.

The serving subsystem turns the persistence substrate (SQLite dataset
stores + warm-start session snapshots) into processes that sit under
mixed insert/query traffic, in three layers:

* **In-process registry** -- :class:`TagDMServer`, a registry of
  per-corpus :class:`CorpusShard` instances, each served HTAP-style as
  **delta + main**: one single-writer insert queue feeding the session
  (the delta), lock-free solves against a pinned immutable
  :class:`~repro.core.incremental.SessionView` (the main), and a merge
  path -- governed by :class:`MergePolicy` -- that folds delta into a
  freshly published view and rotates snapshots per
  :class:`SnapshotRotationPolicy`/:class:`SnapshotRotator`.  The fair
  :class:`ReadWriteLock` coordinates only the merge path (writer apply
  vs fold/snapshot).  See ``SERVING.md``.
* **Network front-end** -- :class:`TagDMHttpServer`, an HTTP server
  speaking the wire-native API of :mod:`repro.api` (problem specs in,
  serialised -- optionally paginated or NDJSON-streamed -- results out,
  typed error taxonomy).  See ``API.md``.
* **Multi-process fleet** -- :class:`TagDMFleet` spawns and supervises
  N worker processes (each a :class:`TagDMServer` + front-end on its
  own port) behind a :class:`TagDMRouter` that owns the
  corpus->worker :class:`PlacementTable` (rendezvous hashing + pins)
  and rides out worker deaths by retrying against respawned workers.
  See ``DEPLOYMENT.md`` and ``ARCHITECTURE.md``.

Cross-cutting the three layers, :mod:`repro.serving.reliability`
supplies the fault-tolerance primitives: :class:`AdmissionPolicy`
(429 load shedding), :class:`CircuitBreaker` + :class:`RetryBudget`
(the router's health-aware retry machinery) and
:class:`FaultPlan`/:class:`FaultRule` (the deterministic
fault-injection harness behind ``tests/serving/test_chaos.py`` and
``examples/chaos_demo.py``).  The failure-semantics matrix -- which
fault surfaces where, with which status code -- is in
``DEPLOYMENT.md``.
"""

from repro.core.incremental import SessionView
from repro.serving.policy import MergePolicy, SnapshotRotationPolicy, SnapshotRotator
from repro.serving.reliability import (
    AdmissionPolicy,
    CircuitBreaker,
    FaultPlan,
    FaultRule,
    InjectedFault,
    RetryBudget,
)
from repro.serving.server import TagDMServer
from repro.serving.shards import CorpusShard, ReadWriteLock
from repro.serving.http import TagDMHttpServer
from repro.serving.router import PlacementTable, TagDMRouter
from repro.serving.fleet import FleetWorker, TagDMFleet

__all__ = [
    "TagDMServer",
    "TagDMHttpServer",
    "TagDMFleet",
    "TagDMRouter",
    "PlacementTable",
    "FleetWorker",
    "CorpusShard",
    "ReadWriteLock",
    "SessionView",
    "MergePolicy",
    "SnapshotRotationPolicy",
    "SnapshotRotator",
    "AdmissionPolicy",
    "CircuitBreaker",
    "RetryBudget",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
]
