"""Multi-process serving fleet: N worker processes behind one router.

:class:`TagDMFleet` scales the single-process serving stack across OS
processes -- the ROADMAP's "cross-process shard placement" step.  One
fleet owns:

* a shared on-disk **root** with the exact
  :class:`~repro.serving.server.TagDMServer` layout (one subdirectory
  per corpus: SQLite store + snapshot dir), so any corpus directory a
  single-process server wrote is servable by a fleet and vice versa;
* a :class:`~repro.serving.router.PlacementTable` assigning each corpus
  to exactly one **worker process** (rendezvous hashing + pins), which
  preserves the single-writer-per-shard invariant across processes --
  only the owning worker ever opens a corpus's store;
* the worker processes themselves, each running a
  :class:`TagDMServer` + :class:`~repro.serving.http.TagDMHttpServer`
  on its own port, warm-starting every assigned corpus from its
  snapshot directory;
* a **supervisor thread** that respawns any worker that dies (the
  respawn warm-starts from the corpus's newest snapshot, replaying the
  store tail if the snapshot lagged) and republishes the worker's new
  address;
* a :class:`~repro.serving.router.TagDMRouter` in the fleet process,
  forwarding client requests to owners and riding out respawns.

Blocking behaviour: :meth:`TagDMFleet.start` blocks until every worker
reports ready (warm-started and listening); :meth:`add_corpus` blocks
for the initial ingest/prepare (plus a worker restart when the fleet is
already running); :meth:`close` blocks until every worker exited.  All
public methods are safe to call from any thread.

Deployment guidance (worker counts, snapshot tuning, health checks)
lives in ``DEPLOYMENT.md``; the architecture walkthrough in
``ARCHITECTURE.md``.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from repro.core.enumeration import GroupEnumerationConfig
from repro.core.witness import named_lock, named_rlock
from repro.dataset.store import TaggingDataset
from repro.serving.policy import SnapshotRotationPolicy
from repro.serving.router import PlacementTable, TagDMRouter

__all__ = ["TagDMFleet", "FleetWorker"]

_STORE_FILENAME = "corpus.sqlite"


def _worker_main(
    connection,
    root: str,
    corpus_names: List[str],
    host: str,
    config: Dict[str, object],
) -> None:
    """Entry point of one worker process.

    Opens (warm-starts) every assigned corpus, serves it over HTTP on an
    OS-assigned port, reports ``("ready", port)`` up the pipe, then
    blocks until the parent sends ``"stop"`` or the pipe dies (parent
    gone) -- either way it shuts down cleanly: drain queues, final
    snapshots, close stores.
    """
    # Imports happen here (not at module top) only in spirit: the module
    # import is cheap and the heavy session machinery loads on demand.
    from repro.serving.http import TagDMHttpServer
    from repro.serving.server import TagDMServer

    server = TagDMServer(
        Path(root),
        policy=config.get("policy"),
        enumeration=config.get("enumeration"),
        signature_backend=str(config.get("signature_backend", "frequency")),
        signature_dimensions=int(config.get("signature_dimensions", 25)),
        seed=int(config.get("seed", 0)),
        admission=config.get("admission"),
        fault_plan=config.get("fault_plan"),
    )
    try:
        for name in corpus_names:
            server.open_corpus(name)
        front = TagDMHttpServer(
            server,
            host=host,
            port=0,
            default_solve_timeout=config.get("default_solve_timeout"),
            fault_plan=config.get("fault_plan"),
        ).start()
    except BaseException as exc:
        try:
            connection.send(("failed", f"{type(exc).__name__}: {exc}"))
        except OSError:
            pass
        server.close()
        return
    try:
        connection.send(("ready", front.address[1]))
        while True:
            message = connection.recv()  # blocks; EOFError when parent dies
            if message == "stop":
                break
    except (EOFError, OSError):
        pass
    finally:
        front.stop()
        server.close()
        try:
            connection.close()
        except OSError:
            pass


class FleetWorker:
    """Parent-side handle of one worker process.

    Mutable state (``process``/``connection``/``port``) is owned by the
    fleet under its registry lock; readers see ``url`` flip to ``None``
    while the worker is down and back to its new address once the
    supervisor respawned it.
    """

    def __init__(self, worker_id: str) -> None:
        self.worker_id = worker_id
        self.process = None
        self.connection = None
        self.port: Optional[int] = None
        self.corpora: List[str] = []
        #: Total respawns, administrative restarts included (monitoring).
        self.restarts = 0
        #: Unplanned deaths only -- what the supervisor's ``max_restarts``
        #: crash-loop budget counts (an add_corpus restart must not
        #: consume it).
        self.crashes = 0
        self.stopping = False
        #: Serialises spawn/stop transitions on this worker between the
        #: supervisor thread and administrative callers (restart_worker,
        #: close) -- without it, a respawn racing a restart could leave
        #: two live processes owning the same corpus stores.
        self.lifecycle_lock = named_lock("fleet.lifecycle")

    @property
    def url(self) -> Optional[str]:
        """Base URL of the live worker, or ``None`` while it is down."""
        if self.port is None:
            return None
        return f"http://{self.host}:{self.port}"

    host: str = "127.0.0.1"

    def is_alive(self) -> bool:
        """Whether the OS process is currently running."""
        return self.process is not None and self.process.is_alive()


class TagDMFleet:
    """Spawn, place, supervise and front a multi-process serving fleet.

    Parameters
    ----------
    root:
        Shared fleet directory (one subdirectory per corpus; created on
        demand).  Compatible with a single-process ``TagDMServer`` root.
    n_workers:
        How many worker processes to run.
    policy / enumeration / signature_backend / signature_dimensions / seed:
        Per-worker :class:`TagDMServer` configuration (must be picklable
        -- it crosses the process boundary at spawn).
    host:
        Interface workers and the router bind (loopback by default).
    router_port:
        Router bind port (``0`` picks a free one; read :attr:`url`).
    pins:
        Optional ``corpus -> worker id`` placement overrides.
    start_method:
        :mod:`multiprocessing` start method.  ``"spawn"`` (default) is
        the safe choice from any process; ``"fork"`` starts faster but
        inherits the parent's threads' locks mid-flight.
    spawn_timeout:
        How long to wait for one worker to warm-start and report ready.
    retry_deadline:
        Router forwarding retry window (must cover a respawn).
    max_restarts:
        Supervisor gives up respawning a worker after this many deaths
        (its corpora then answer 503 until an operator intervenes).
    admission:
        Optional :class:`~repro.serving.reliability.AdmissionPolicy`
        applied by every worker's shards (shed with 429 + Retry-After
        past the configured watermarks).  Crosses the spawn boundary;
        must stay picklable.
    fault_plan:
        Optional :class:`~repro.serving.reliability.FaultPlan` armed in
        every worker process for chaos drills (the ``add_corpus``
        ingest path stays clean).  Per-process runtime state rebuilds
        on unpickle; cross-process ``once`` latches live in the plan's
        ``state_dir``.
    heartbeat_interval:
        Router heartbeat probe period in seconds (``None`` disables).
        Probes feed the router's per-worker circuit breakers so a
        respawned worker re-enters rotation without waiting for client
        traffic.
    """

    def __init__(
        self,
        root: Union[str, Path],
        n_workers: int = 2,
        policy: Optional[SnapshotRotationPolicy] = None,
        enumeration: Optional[GroupEnumerationConfig] = None,
        signature_backend: str = "frequency",
        signature_dimensions: int = 25,
        seed: int = 0,
        host: str = "127.0.0.1",
        router_port: int = 0,
        pins: Optional[Mapping[str, str]] = None,
        start_method: str = "spawn",
        spawn_timeout: float = 120.0,
        retry_deadline: float = 30.0,
        default_solve_timeout: Optional[float] = None,
        max_restarts: int = 10,
        admission=None,
        fault_plan=None,
        heartbeat_interval: Optional[float] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.host = host
        self.spawn_timeout = spawn_timeout
        self.max_restarts = max_restarts
        self._config: Dict[str, object] = {
            "policy": policy,
            "enumeration": enumeration,
            "signature_backend": signature_backend,
            "signature_dimensions": signature_dimensions,
            "seed": seed,
            "default_solve_timeout": default_solve_timeout,
            "admission": admission,
            "fault_plan": fault_plan,
        }
        self._context = multiprocessing.get_context(start_method)
        worker_ids = [f"worker-{index}" for index in range(n_workers)]
        self.placement = PlacementTable(workers=worker_ids, pins=pins)
        self._workers: Dict[str, FleetWorker] = {}
        for worker_id in worker_ids:
            handle = FleetWorker(worker_id)
            handle.host = host
            self._workers[worker_id] = handle
        self._lock = named_rlock("fleet.registry")
        self._closing = threading.Event()
        self._supervisor: Optional[threading.Thread] = None
        self._started = False
        self.router = TagDMRouter(
            self.placement,
            self.worker_url,
            host=host,
            port=router_port,
            retry_deadline=retry_deadline,
            heartbeat_interval=heartbeat_interval,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        """The router's base URL -- what fleet clients talk to."""
        return self.router.url

    @property
    def worker_ids(self) -> List[str]:
        """Ids of the fleet's workers (stable across respawns)."""
        return sorted(self._workers)

    def worker_url(self, worker_id: str) -> Optional[str]:
        """Live base URL of one worker (``None`` while it is down)."""
        handle = self._workers.get(worker_id)
        if handle is None or not handle.is_alive():
            return None
        return handle.url

    def stats(self) -> Dict[str, object]:
        """Supervisor-side fleet counters (no worker round-trips)."""
        with self._lock:
            return {
                "workers": {
                    worker_id: {
                        "url": handle.url if handle.is_alive() else None,
                        "alive": handle.is_alive(),
                        "restarts": handle.restarts,
                        "crashes": handle.crashes,
                        "corpora": list(handle.corpora),
                    }
                    for worker_id, handle in sorted(self._workers.items())
                },
                "router": self.router.stats(),
                "corpora": self.placement.corpora(),
            }

    # ------------------------------------------------------------------
    # Corpus management
    # ------------------------------------------------------------------
    def add_corpus(self, name: str, dataset: TaggingDataset) -> None:
        """Ingest a new corpus into the fleet root and place it.

        The ingest (store write + cold prepare + first snapshot) runs in
        the fleet process through a short-lived single-process
        :class:`TagDMServer`; the owning worker then serves it by
        warm-starting from that snapshot -- which is why fleet solves
        are bit-identical to single-process ones.  When the fleet is
        already running, the owner is restarted to pick the corpus up
        (its other corpora warm-start back in seconds); blocks until the
        corpus is servable either way.
        """
        from repro.serving.server import TagDMServer

        ingest = TagDMServer(
            self.root,
            policy=self._config["policy"],
            enumeration=self._config["enumeration"],
            signature_backend=str(self._config["signature_backend"]),
            signature_dimensions=int(self._config["signature_dimensions"]),
            seed=int(self._config["seed"]),
        )
        try:
            ingest.add_corpus(name, dataset)
        finally:
            ingest.close()
        self.placement.register_corpus(name)
        if self._started:
            self.restart_worker(self.placement.owner_of(name))

    def open_corpus(self, name: str) -> None:
        """Place an existing corpus directory (ingested earlier or by a
        single-process server) without touching its data.

        Blocks for the owner's restart when the fleet is running.
        """
        if not (self.root / name / _STORE_FILENAME).exists():
            raise FileNotFoundError(
                f"corpus {name!r} has no store under {self.root / name}; "
                "ingest it with add_corpus()"
            )
        self.placement.register_corpus(name)
        if self._started:
            self.restart_worker(self.placement.owner_of(name))

    def discover_corpora(self) -> List[str]:
        """Register every corpus directory already present in the root.

        Returns the names found.  This is how a fleet resumes a root a
        previous fleet (or single-process server) wrote.
        """
        found = []
        for entry in sorted(self.root.iterdir()):
            if entry.is_dir() and (entry / _STORE_FILENAME).exists():
                self.placement.register_corpus(entry.name)
                found.append(entry.name)
        return found

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, handle: FleetWorker) -> None:
        """Start one worker process and block until it reports ready."""
        corpora = self.placement.assignments().get(handle.worker_id, [])
        parent_end, child_end = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(child_end, str(self.root), list(corpora), self.host, self._config),
            name=f"tagdm-{handle.worker_id}",
            daemon=True,
        )
        process.start()
        child_end.close()
        if not parent_end.poll(self.spawn_timeout):
            process.kill()
            parent_end.close()
            raise RuntimeError(
                f"{handle.worker_id} did not report ready within "
                f"{self.spawn_timeout:g}s"
            )
        try:
            kind, value = parent_end.recv()
        except (EOFError, OSError):
            parent_end.close()
            process.join(timeout=5.0)
            raise RuntimeError(
                f"{handle.worker_id} died before reporting ready "
                f"(exit code {process.exitcode})"
            ) from None
        if kind != "ready":
            parent_end.close()
            process.join(timeout=5.0)
            raise RuntimeError(f"{handle.worker_id} failed to start: {value}")
        with self._lock:
            handle.process = process
            handle.connection = parent_end
            handle.port = int(value)
            handle.corpora = list(corpora)
            handle.stopping = False

    def _stop_worker(self, handle: FleetWorker, timeout: float = 30.0) -> None:
        """Graceful stop: ask, wait, then kill.  Idempotent."""
        with self._lock:
            handle.stopping = True
            process, connection = handle.process, handle.connection
            handle.port = None
        if connection is not None:
            try:
                connection.send("stop")
            except (OSError, BrokenPipeError):
                pass
        if process is not None:
            process.join(timeout=timeout)
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
        if connection is not None:
            try:
                connection.close()
            except OSError:
                pass
        with self._lock:
            handle.process = None
            handle.connection = None

    def restart_worker(self, worker_id: str) -> None:
        """Gracefully stop and respawn one worker (placement refreshed).

        Blocks until the respawned worker is ready (waiting out a
        concurrent supervisor respawn first).  Administrative restarts
        count in ``restarts`` but not in the ``max_restarts`` crash
        budget.  No-op before :meth:`start`.
        """
        handle = self._workers[worker_id]
        if not self._started:
            return
        with handle.lifecycle_lock:
            self._stop_worker(handle)
            handle.restarts += 1
            self._spawn(handle)

    def kill_worker(self, worker_id: str) -> None:
        """SIGKILL one worker (chaos hook for tests and drills).

        Returns immediately; the supervisor respawns the worker and the
        router rides out the gap by retrying.
        """
        handle = self._workers[worker_id]
        with self._lock:
            process = handle.process
            handle.port = None
        if process is not None:
            process.kill()

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    def _supervise(self) -> None:
        while not self._closing.wait(0.1):
            for handle in list(self._workers.values()):
                if self._closing.is_set():
                    return
                if handle.stopping or handle.is_alive():
                    continue
                if handle.process is None:
                    continue  # never spawned (start() races) -- not ours
                if handle.crashes >= self.max_restarts:
                    continue  # crash-looping; leave it down for operators
                if not handle.lifecycle_lock.acquire(blocking=False):
                    continue  # an administrative restart owns this worker
                try:
                    if handle.stopping or handle.is_alive():
                        continue  # state changed while taking the lock
                    handle.restarts += 1
                    handle.crashes += 1
                    with self._lock:
                        handle.port = None
                    try:
                        self._spawn(handle)
                    except Exception:
                        # Spawn failed (bad snapshot, fd pressure, port
                        # exhaustion, ...); the loop retries until the
                        # crash budget caps it.  The supervisor itself
                        # must never die of one worker's failure.
                        time.sleep(0.5)
                finally:
                    handle.lifecycle_lock.release()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "TagDMFleet":
        """Spawn every worker, start supervision and the router.

        Blocks until all workers are warm and listening; idempotent.
        """
        if self._started:
            return self
        self._started = True
        try:
            for handle in self._workers.values():
                self._spawn(handle)
        except BaseException:
            self._started = False
            for handle in self._workers.values():
                if handle.process is not None:
                    self._stop_worker(handle, timeout=5.0)
            raise
        self._supervisor = threading.Thread(
            target=self._supervise, name="tagdm-fleet-supervisor", daemon=True
        )
        self._supervisor.start()
        self.router.start()
        return self

    def close(self) -> None:
        """Stop the router, the supervisor and every worker (idempotent).

        Workers shut down cleanly: queues drained, final snapshots
        written, stores closed -- a later fleet (or single-process
        server) over the same root warm-starts from them.
        """
        self._closing.set()
        if self._supervisor is not None:
            # The supervisor may be mid-_spawn (bounded by spawn_timeout);
            # the per-handle lifecycle locks below make close wait for any
            # such respawn and then stop it, so no worker outlives close.
            self._supervisor.join(timeout=10.0)
            self._supervisor = None
        self.router.stop()
        for handle in self._workers.values():
            with handle.lifecycle_lock:
                self._stop_worker(handle)
        self._started = False

    def __enter__(self) -> "TagDMFleet":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
