"""HTTP front-end over :class:`~repro.serving.server.TagDMServer`.

:class:`TagDMHttpServer` is the network half of the wire-native API: a
stdlib :class:`~http.server.ThreadingHTTPServer` that translates JSON
requests into the transport-agnostic service layer
(:mod:`repro.api.service`) -- the *same* functions
:class:`~repro.api.client.ServerClient` calls in-process, which is what
makes a solve answered over the socket bit-identical to one answered
in-process on the same warm session.

Routes (all bodies JSON; see ``API.md`` for the full schema)::

    GET  /healthz                  -- liveness + aggregate counters
    GET  /corpora                  -- {"corpora": [names]}
    GET  /corpora/<name>/stats     -- per-shard serving counters
    POST /corpora/<name>/insert    -- {"actions": [...]} -> update report
    POST /corpora/<name>/solve     -- ProblemSpec payload -> MiningResult
    POST /corpora/<name>/subscriptions             -- register a standing query
    GET  /corpora/<name>/subscriptions             -- list registrations
    GET  /corpora/<name>/subscriptions/<id>        -- poll diffs (?from_seq=N)
    GET  /corpora/<name>/subscriptions/<id>/stream -- same suffix as NDJSON

The solve route also accepts result-shaping query parameters:
``?page=P&page_size=S`` windows the response's group list (JSON body
plus a ``pagination`` envelope), and ``?stream=ndjson`` answers
``application/x-ndjson`` -- a result envelope line followed by one
group per line -- so very large group sets never form one giant JSON
document on either side of the wire.  The two are mutually exclusive
(422 when combined).

Failures answer with the typed taxonomy of :mod:`repro.api.errors`
(validation 422, unknown corpus/route 404, capability mismatch 409,
timeout 504) as ``{"error": {code, status, message, details}}`` bodies.
Threading model: every request runs on its own handler thread; solves
take the shard's shared read lock (many concurrent solves), inserts
enqueue onto the shard's single-writer queue and block until applied --
exactly the semantics in-process callers get.
"""

from __future__ import annotations

import json
import re
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from repro.api import service
from repro.api.errors import (
    ApiError,
    SpecValidationError,
    UnknownRouteError,
    retry_after_header,
)
from repro.api.spec import PageSpec, ProblemSpec
from repro.serving.reliability import FaultPlan
from repro.serving.server import TagDMServer

__all__ = ["TagDMHttpServer"]

#: Insert/solve bodies above this size are rejected before parsing
#: (simple protection against a client flooding handler memory).
MAX_BODY_BYTES = 64 * 1024 * 1024

_CORPUS_ROUTE = re.compile(r"\A/corpora/(?P<name>[A-Za-z0-9._~%-]+)/(?P<verb>[a-z]+)\Z")
_SUBSCRIPTION_ROUTE = re.compile(
    r"\A/corpora/(?P<name>[A-Za-z0-9._~%-]+)/subscriptions/"
    r"(?P<sub>[A-Za-z0-9._~%-]+)(?P<stream>/stream)?\Z"
)


class _NdjsonBody:
    """Marker wrapper: a route answered pre-encoded NDJSON lines."""

    __slots__ = ("lines",)

    def __init__(self, lines: List[bytes]) -> None:
        self.lines = lines


class _Handler(BaseHTTPRequestHandler):
    """Route one HTTP request into the service layer."""

    #: Injected by :class:`TagDMHttpServer` via ``type(...)`` below.
    tagdm_server: TagDMServer = None  # type: ignore[assignment]
    default_solve_timeout: Optional[float] = None
    fault_plan: Optional[FaultPlan] = None

    protocol_version = "HTTP/1.1"
    # Responses are written as several small segments (status, headers,
    # body); with Nagle on, a keep-alive client's delayed ACK turns that
    # into ~40ms per response.
    disable_nagle_algorithm = True

    # BaseHTTPRequestHandler logs every request to stderr by default;
    # a serving process wants that off the hot path (and tests quiet).
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _write_json(
        self,
        status: int,
        payload: Dict[str, object],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._write_body(status, "application/json", [body], extra_headers)

    def _write_body(
        self,
        status: int,
        content_type: str,
        chunks: List[bytes],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        truncate_at: Optional[int] = None
        if self.fault_plan is not None:
            if self.fault_plan.fire("http.post_write", path=self.path) == "truncate":
                # Advertise the full Content-Length, deliver half: the
                # client's read fails with IncompleteRead mid-body.
                truncate_at = sum(len(chunk) for chunk in chunks) // 2
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(sum(len(chunk) for chunk in chunks)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        # Written chunk-at-a-time so an NDJSON reader on the other end
        # starts parsing groups before the last one hits the socket.
        written = 0
        for chunk in chunks:
            if truncate_at is not None and written + len(chunk) > truncate_at:
                self.wfile.write(chunk[: truncate_at - written])
                self.close_connection = True
                return
            self.wfile.write(chunk)
            written += len(chunk)

    def _read_body(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            raise SpecValidationError("request needs a JSON body")
        if length > MAX_BODY_BYTES:
            raise SpecValidationError(
                f"request body of {length} bytes exceeds the {MAX_BODY_BYTES} limit"
            )
        raw = self.rfile.read(length)
        self._body_unread = 0
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise SpecValidationError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise SpecValidationError(
                f"request body must be a JSON object, got {type(payload).__name__}"
            )
        return payload

    def _discard_unread_body(self) -> None:
        """Keep the HTTP/1.1 connection in sync before responding.

        An error path can respond before the request body was read
        (unknown route, oversized body, validation failure); on a
        keep-alive connection the unread bytes would then be parsed as
        the next request line.  Small remainders are drained; oversized
        ones close the connection instead of reading them all.
        """
        remaining = getattr(self, "_body_unread", 0)
        if remaining <= 0:
            return
        if remaining > MAX_BODY_BYTES:
            self.close_connection = True
            return
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, 1 << 16))
            if not chunk:
                self.close_connection = True
                return
            remaining -= len(chunk)

    def _dispatch(self, method: str) -> None:
        self._body_unread = int(self.headers.get("Content-Length", 0) or 0)
        extra_headers: Optional[Dict[str, str]] = None
        try:
            status, payload = self._route(method)
        except ApiError as error:
            status, payload = error.status, error.to_payload()
            retry_after = retry_after_header(error)
            if retry_after is not None:
                extra_headers = {"Retry-After": retry_after}
        except Exception as exc:  # a bug must answer 500, not drop the socket
            error = ApiError(f"{type(exc).__name__}: {exc}")
            status, payload = error.status, error.to_payload()
        self._discard_unread_body()
        if self.fault_plan is not None:
            action = self.fault_plan.fire(
                "http.pre_write", path=self.path, status=status
            )
            if action == "reset":
                # Close without writing a byte: the client sees its
                # response socket die (RemoteDisconnected), exactly like
                # a worker killed after applying but before answering.
                self.close_connection = True
                return
        if isinstance(payload, _NdjsonBody):
            self._write_body(status, "application/x-ndjson", payload.lines)
        else:
            self._write_json(status, payload, extra_headers)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(self, method: str):
        path = self.path.split("?", 1)[0]
        if method == "GET" and path == "/healthz":
            return 200, service.health(self.tagdm_server)
        if method == "GET" and path == "/corpora":
            return 200, {"corpora": service.list_corpora(self.tagdm_server)}
        match = _CORPUS_ROUTE.fullmatch(path)
        if match:
            # Clients percent-encode corpus names; decode so an unsafe
            # name answers "unknown corpus", not "unknown route".
            name = urllib.parse.unquote(match.group("name"))
            verb = match.group("verb")
            if method == "GET" and verb == "stats":
                return 200, service.corpus_stats(self.tagdm_server, name)
            if method == "POST" and verb == "insert":
                return 200, self._handle_insert(name)
            if method == "POST" and verb == "solve":
                return 200, self._handle_solve(name)
            if verb == "subscriptions":
                if method == "POST":
                    return 200, self._handle_register(name)
                if method == "GET":
                    return 200, {
                        "subscriptions": service.list_subscriptions(
                            self.tagdm_server, name
                        )
                    }
        sub_match = _SUBSCRIPTION_ROUTE.fullmatch(path)
        if sub_match and method == "GET":
            name = urllib.parse.unquote(sub_match.group("name"))
            sub_id = urllib.parse.unquote(sub_match.group("sub"))
            from_seq = self._from_seq_query()
            if sub_match.group("stream"):
                return 200, _NdjsonBody(
                    list(
                        service.subscription_ndjson_lines(
                            self.tagdm_server, name, sub_id, from_seq=from_seq
                        )
                    )
                )
            return 200, service.poll_subscription(
                self.tagdm_server, name, sub_id, from_seq=from_seq
            )
        raise UnknownRouteError(
            f"no route for {method} {path}",
            details={
                "routes": [
                    "GET /healthz",
                    "GET /corpora",
                    "GET /corpora/<name>/stats",
                    "POST /corpora/<name>/insert",
                    "POST /corpora/<name>/solve",
                    "POST /corpora/<name>/subscriptions",
                    "GET /corpora/<name>/subscriptions",
                    "GET /corpora/<name>/subscriptions/<id>",
                    "GET /corpora/<name>/subscriptions/<id>/stream",
                ]
            },
        )

    def _idempotency_key(self) -> Optional[str]:
        """The request's validated ``Idempotency-Key`` header, if any."""
        key = self.headers.get("Idempotency-Key")
        if key is None:
            return None
        key = key.strip()
        if not key or len(key) > 200 or not key.isprintable():
            raise SpecValidationError(
                "Idempotency-Key must be 1-200 printable characters"
            )
        return key

    def _corpus_actions(self, corpus: str) -> Optional[int]:
        """Current action count of ``corpus`` (fault-rule context only)."""
        try:
            return self.tagdm_server.shard(corpus).session.dataset.n_actions
        except KeyError:
            return None

    def _handle_insert(self, corpus: str) -> Dict[str, object]:
        request_id = self._idempotency_key()
        payload = self._read_body()
        actions = payload.get("actions")
        if not isinstance(actions, list):
            raise SpecValidationError("insert body needs an 'actions' list")
        plan = self.fault_plan
        if plan is not None:
            plan.fire(
                "insert.pre_apply",
                corpus=corpus,
                n_actions=self._corpus_actions(corpus),
            )
        report = service.insert_actions(
            self.tagdm_server, corpus, actions, request_id=request_id
        )
        if plan is not None:
            plan.fire(
                "insert.applied",
                corpus=corpus,
                n_actions=self._corpus_actions(corpus),
            )
        return report.to_dict()

    def _handle_register(self, corpus: str) -> Dict[str, object]:
        request_id = self._idempotency_key()
        payload = self._read_body()
        return service.register_subscription(
            self.tagdm_server, corpus, payload, request_id=request_id
        )

    def _from_seq_query(self) -> int:
        """Decode the subscription routes' ``?from_seq=N`` parameter."""
        _, _, raw_query = self.path.partition("?")
        query = dict(urllib.parse.parse_qsl(raw_query))
        raw = query.get("from_seq", "1")
        try:
            from_seq = int(raw)
        except ValueError:
            raise SpecValidationError(
                f"from_seq must be an integer, got {raw!r}"
            ) from None
        if from_seq < 1:
            raise SpecValidationError(f"from_seq must be >= 1, got {from_seq}")
        return from_seq

    def _solve_query(self) -> Tuple[Optional[PageSpec], bool]:
        """Decode the solve route's result-shaping query parameters."""
        _, _, raw_query = self.path.partition("?")
        query = dict(urllib.parse.parse_qsl(raw_query))
        stream = query.get("stream")
        if stream is not None and stream != "ndjson":
            raise SpecValidationError(
                f"stream must be 'ndjson', got {stream!r}"
            )
        page = PageSpec.from_query(query)
        if page is not None and stream is not None:
            raise SpecValidationError(
                "page/page_size and stream=ndjson are mutually exclusive"
            )
        return page, stream is not None

    def _handle_solve(self, corpus: str):
        page, stream = self._solve_query()
        payload = self._read_body()
        timeout = payload.pop("timeout_seconds", self.default_solve_timeout)
        if timeout is not None and (
            isinstance(timeout, bool) or not isinstance(timeout, (int, float))
        ):
            raise SpecValidationError(
                f"timeout_seconds must be a number, got {timeout!r}"
            )
        spec = ProblemSpec.from_dict(payload)
        result_payload = service.solve_spec_payload(
            self.tagdm_server, corpus, spec, timeout=timeout, page=page
        )
        if stream:
            return _NdjsonBody(list(service.result_ndjson_lines(result_payload)))
        return result_payload

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("POST")


class TagDMHttpServer:
    """Serve a :class:`TagDMServer` over HTTP on a background thread.

    Parameters
    ----------
    server:
        The warm-shard registry to expose.  Not owned: closing the
        front-end leaves the :class:`TagDMServer` (and its stores and
        rotators) running, so one process can expose the same registry
        over several transports at once.
    host / port:
        Bind address; ``port=0`` picks a free port (the default, right
        for tests and examples -- read :attr:`url` after construction).
    default_solve_timeout:
        Optional server-side compute budget (seconds) applied to solve
        requests that do not send ``timeout_seconds`` themselves.
    fault_plan:
        Optional :class:`~repro.serving.reliability.FaultPlan` armed on
        every handler (``http.pre_write`` / ``http.post_write`` /
        ``insert.pre_apply`` / ``insert.applied`` injection points);
        inert in production.

    Usage::

        with TagDMHttpServer(server) as front:
            client = HttpClient(front.url)
            client.solve("movies", ProblemSpec.from_problem(problem))
    """

    def __init__(
        self,
        server: TagDMServer,
        host: str = "127.0.0.1",
        port: int = 0,
        default_solve_timeout: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.server = server
        handler = type(
            "BoundTagDMHandler",
            (_Handler,),
            {
                "tagdm_server": server,
                "default_solve_timeout": default_solve_timeout,
                "fault_plan": fault_plan,
            },
        )
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (port resolved when 0 was asked)."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        host, port = self.address
        return f"http://{host}:{port}"

    @property
    def is_running(self) -> bool:
        """Whether the accept loop is live."""
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "TagDMHttpServer":
        """Start the accept loop on a daemon thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name=f"tagdm-http-{self.address[1]}",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting requests and release the socket (idempotent).

        In-flight handler threads finish their current response; the
        underlying :class:`TagDMServer` keeps serving in-process callers.
        """
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join()
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "TagDMHttpServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
