"""Snapshot rotation policy for long-lived serving shards.

A serving shard absorbs inserts for hours; its warm-start snapshot must
track the store without either fsync-ing on every insert or growing an
unbounded pile of stale files.  This module provides the policy half of
that trade-off:

* :class:`SnapshotRotationPolicy` -- *when* to snapshot: after every N
  inserts and/or every T seconds, whichever fires first;
* :class:`SnapshotRotator` -- *how*: sequence-numbered snapshot files in
  one directory, written atomically (write-then-rename, inherited from
  :func:`repro.core.persistence.save_session`), pruned down to the K
  most recent once a new snapshot lands (compaction of superseded
  files).

Because every write is atomic and pruning only ever removes files that
are strictly older than the newest complete snapshot, a crash at any
point leaves :meth:`SnapshotRotator.latest` pointing at a loadable
snapshot -- either the previous one or the new one, never a torn file.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

__all__ = ["MergePolicy", "SnapshotRotationPolicy", "SnapshotRotator"]


@dataclass(frozen=True)
class MergePolicy:
    """When a delta+main shard folds its delta into a fresh main view.

    The shard lands inserts in the session (the delta) immediately, but
    solves only ever see the last *published* frozen view (the main).
    This policy decides how far the main may trail the delta:

    Parameters
    ----------
    every_inserts:
        Fold after a writer batch once this many actions have
        accumulated in the delta.  The fold runs *before* the batch's
        futures resolve, so with the default of ``1`` an acknowledged
        insert is visible to the very next solve -- the pre-HTAP
        read-your-writes contract.  Larger values amortise the fold
        (and its O(n_groups) freeze) over more inserts at the cost of
        acknowledged-but-not-yet-visible windows.  ``None`` disables
        the insert trigger entirely: folds happen only on the time
        trigger, :meth:`~repro.serving.shards.CorpusShard.merge_now`,
        :meth:`~repro.serving.shards.CorpusShard.flush` or close.
    every_seconds:
        Background fold once the oldest unmerged insert is this old
        (``None`` disables the time trigger).
    """

    every_inserts: Optional[int] = 1
    every_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.every_inserts is not None and self.every_inserts < 1:
            raise ValueError("every_inserts must be >= 1 (or None)")
        if self.every_seconds is not None and self.every_seconds <= 0:
            raise ValueError("every_seconds must be > 0 (or None)")

    def due_on_write(self, delta_size: int) -> bool:
        """Whether a writer batch should fold before acknowledging."""
        if delta_size <= 0:
            return False
        return self.every_inserts is not None and delta_size >= self.every_inserts

    def due_on_timer(self, delta_size: int, delta_age_seconds: float) -> bool:
        """Whether the background merge thread should fold now."""
        if delta_size <= 0:
            return False
        return (
            self.every_seconds is not None
            and delta_age_seconds >= self.every_seconds
        )


@dataclass(frozen=True)
class SnapshotRotationPolicy:
    """When a serving shard should take a fresh snapshot.

    Parameters
    ----------
    every_inserts:
        Snapshot after this many inserts since the last snapshot
        (``None`` disables the insert trigger).
    every_seconds:
        Snapshot once this much wall-clock time has passed since the
        last snapshot, provided at least one insert happened (``None``
        disables the time trigger; an idle shard is never re-snapshotted
        -- its last snapshot is already current).
    keep_last:
        How many snapshot files to retain; older ones are deleted after
        each successful rotation.
    """

    every_inserts: Optional[int] = 500
    every_seconds: Optional[float] = None
    keep_last: int = 3

    def __post_init__(self) -> None:
        if self.every_inserts is not None and self.every_inserts < 1:
            raise ValueError("every_inserts must be >= 1 (or None)")
        if self.every_seconds is not None and self.every_seconds <= 0:
            raise ValueError("every_seconds must be > 0 (or None)")
        if self.keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        if self.every_inserts is None and self.every_seconds is None:
            raise ValueError(
                "at least one of every_inserts/every_seconds must be set"
            )

    def due(self, inserts_since: int, seconds_since: float) -> bool:
        """Whether a snapshot is due given progress since the last one."""
        if inserts_since <= 0:
            return False  # nothing new to persist
        if self.every_inserts is not None and inserts_since >= self.every_inserts:
            return True
        if self.every_seconds is not None and seconds_since >= self.every_seconds:
            return True
        return False


class SnapshotRotator:
    """Sequence-numbered, pruned snapshot files for one shard.

    Files are named ``<basename>-<seq:08d>.snapshot`` inside
    ``directory``; the sequence number increases monotonically (resuming
    from whatever files already exist), so "latest" is a pure filename
    comparison and needs no mtime trust.

    Not itself thread-safe: a rotator belongs to exactly one shard,
    whose writer thread calls :meth:`record_inserts`/:meth:`due`/
    :meth:`rotate` under the shard's write lock.  :meth:`rotate` blocks
    for the full snapshot serialisation, fsync and prune.
    """

    _SUFFIX = ".snapshot"

    def __init__(
        self,
        directory: Union[str, Path],
        basename: str = "session",
        policy: Optional[SnapshotRotationPolicy] = None,
        fault_plan=None,
    ) -> None:
        if not re.fullmatch(r"[A-Za-z0-9._-]+", basename):
            raise ValueError(
                f"basename {basename!r} must be filesystem-safe "
                "(letters, digits, dot, underscore, dash)"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.basename = basename
        self.policy = policy or SnapshotRotationPolicy()
        #: Optional :class:`~repro.serving.reliability.FaultPlan`; fired
        #: at the ``snapshot.write`` point just before each rotation's
        #: save (chaos-testing hook, inert when ``None``).
        self.fault_plan = fault_plan
        # A process SIGKILLed mid-save leaves the staging file behind
        # (clean failures unlink it); it can never be mistaken for a
        # snapshot (the atomic rename never ran) but would pile up
        # forever.  This rotator now owns the directory, so sweep them.
        self._clean_stale_staging()
        self._pattern = re.compile(
            re.escape(basename) + r"-(\d{8})" + re.escape(self._SUFFIX) + r"\Z"
        )
        self.rotations = 0
        #: Wall-clock epoch of the last successful :meth:`rotate` (or
        #: ``None`` before the first one) -- surfaced by the serving
        #: stats so operators can see snapshot freshness.
        self.last_rotation_at: Optional[float] = None
        self._inserts_since = 0
        self._last_rotation_monotonic = time.monotonic()

    # ------------------------------------------------------------------
    # Snapshot inventory
    # ------------------------------------------------------------------
    def _clean_stale_staging(self) -> List[Path]:
        """Delete orphaned ``*.snapshot.tmp-<pid>`` staging files.

        Safe because exactly one rotator (one shard, one process) owns a
        snapshot directory at a time: any staging file present when the
        rotator is constructed belongs to a previous, dead owner.
        """
        removed: List[Path] = []
        for path in self.directory.glob(
            f"{self.basename}-*{self._SUFFIX}.tmp-*"
        ):
            try:
                path.unlink()
            except FileNotFoundError:  # pragma: no cover - racing cleaner
                continue
            removed.append(path)
        return removed

    def snapshot_paths(self) -> List[Path]:
        """Existing snapshots of this shard, oldest first."""
        entries = []
        for path in self.directory.iterdir():
            match = self._pattern.fullmatch(path.name)
            if match:
                entries.append((int(match.group(1)), path))
        return [path for _seq, path in sorted(entries)]

    def latest(self) -> Optional[Path]:
        """The most recent complete snapshot, or ``None``."""
        paths = self.snapshot_paths()
        return paths[-1] if paths else None

    def _next_path(self) -> Path:
        paths = self.snapshot_paths()
        if paths:
            last = int(self._pattern.fullmatch(paths[-1].name).group(1))
        else:
            last = 0
        return self.directory / f"{self.basename}-{last + 1:08d}{self._SUFFIX}"

    # ------------------------------------------------------------------
    # Policy bookkeeping
    # ------------------------------------------------------------------
    def record_inserts(self, count: int) -> None:
        """Tell the rotator ``count`` inserts were applied to the session."""
        self._inserts_since += int(count)

    @property
    def inserts_since_rotation(self) -> int:
        """Inserts applied since the last successful rotation."""
        return self._inserts_since

    def due(self) -> bool:
        """Whether the policy says it is time to rotate."""
        return self.policy.due(
            self._inserts_since, time.monotonic() - self._last_rotation_monotonic
        )

    # ------------------------------------------------------------------
    # Rotation
    # ------------------------------------------------------------------
    def rotate(self, session) -> Path:
        """Write a new snapshot of ``session`` and prune superseded files.

        The write is atomic (``save_session`` stages to a temp file and
        renames); pruning runs only after the rename succeeded, so a
        failure anywhere leaves the previous snapshot in place.
        """
        from repro.core.persistence import save_session  # lazy: keep import light

        if self.fault_plan is not None:
            self.fault_plan.fire("snapshot.write", basename=self.basename)
        path = save_session(session, self._next_path())
        self.rotations += 1
        self.last_rotation_at = time.time()
        self._inserts_since = 0
        self._last_rotation_monotonic = time.monotonic()
        self.prune()
        return path

    def prune(self) -> List[Path]:
        """Delete all but the ``keep_last`` newest snapshots.

        Returns the removed paths.  Missing files (a concurrent pruner,
        manual cleanup) are skipped silently.
        """
        paths = self.snapshot_paths()
        excess = paths[: -self.policy.keep_last] if self.policy.keep_last else paths
        removed: List[Path] = []
        for path in excess:
            try:
                path.unlink()
            except FileNotFoundError:  # pragma: no cover - racing cleaner
                continue
            removed.append(path)
        return removed
