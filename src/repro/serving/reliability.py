"""Reliability primitives for the serving fleet.

This module collects the four building blocks the fault-tolerance layer
is made of, kept deliberately free of serving imports so every layer
(store, shard, HTTP front, router, fleet, client) can use them without
cycles:

* :class:`AdmissionPolicy` -- per-shard load-shedding watermarks: bound
  the insert queue depth and the number of in-flight solves, and shed
  excess load with a typed 429 (``OverloadedError``) + ``Retry-After``
  *before* latency collapses;
* :class:`CircuitBreaker` -- the classic closed/open/half-open breaker
  the router keeps per worker, fed by forward failures and heartbeat
  probes, so a dead worker stops absorbing request attempts within a
  few failures instead of at every request;
* :class:`RetryBudget` -- a bounded retry allowance with jittered
  exponential backoff, replacing retry-until-deadline loops: a request
  gets at most ``max_attempts`` actual forwards, each failure backing
  off further (seeded, so tests are deterministic);
* :class:`FaultPlan` / :class:`FaultRule` -- a deterministic
  fault-injection harness.  Production code carries an optional plan
  and calls ``plan.fire("point.name", **context)`` at named injection
  points; with no plan attached (the default) that is a no-op.  A test
  or chaos demo arms specific rules (kill this worker at the Nth
  insert, reset that socket before the response is written, crash the
  next snapshot write, ...) and the whole stack misbehaves exactly
  on cue, in whichever process the rule matches.

Determinism and multi-process coordination
------------------------------------------
A plan is seeded: probabilistic rules draw from ``random.Random(seed)``
so a chaos run replays identically.  Plans cross the ``spawn`` pickle
boundary into fleet workers; per-process runtime state (RNG, arrival
counters, locks) is rebuilt fresh on unpickle, so ``at=N`` means "the
Nth arrival at this point *in this process*".  Rules that must fire at
most once across *all* processes (e.g. "kill whichever worker first
applies an insert") set ``once=True`` and the plan claims a latch file
under ``state_dir`` with an atomic exclusive create before executing.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.witness import locked_by, named_lock

__all__ = [
    "AdmissionPolicy",
    "CircuitBreaker",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "RetryBudget",
]


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AdmissionPolicy:
    """Load-shedding watermarks for one shard.

    Parameters
    ----------
    max_queue_depth:
        Shed an insert when the shard's writer queue already holds this
        many requests (``None`` disables insert shedding).  Distinct
        from the queue's hard ``queue_capacity``: capacity *blocks* the
        submitter, the watermark *rejects* with a retryable 429 first.
    max_inflight_solves:
        Shed a solve when this many solves are already running on the
        shard (``None`` disables solve shedding).
    retry_after_seconds:
        The backoff hint carried in the 429's ``Retry-After`` header
        and error details.
    """

    max_queue_depth: Optional[int] = None
    max_inflight_solves: Optional[int] = None
    retry_after_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1 (or None)")
        if self.max_inflight_solves is not None and self.max_inflight_solves < 1:
            raise ValueError("max_inflight_solves must be >= 1 (or None)")
        if self.retry_after_seconds <= 0:
            raise ValueError("retry_after_seconds must be > 0")


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class CircuitBreaker:
    """A closed/open/half-open breaker for one upstream worker.

    * **closed** -- requests flow; ``failure_threshold`` consecutive
      failures trip the breaker open.
    * **open** -- :meth:`allow` answers ``False`` (callers skip the
      worker without burning a connection attempt) until
      ``reset_timeout`` has elapsed.
    * **half-open** -- one probe is let through per ``reset_timeout``
      window; its success closes the breaker, its failure re-opens it.

    Thread-safe; the clock is injectable for deterministic tests.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 0.25,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be > 0")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = named_lock("breaker.state")
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._last_probe_at: Optional[float] = None
        self.times_opened = 0

    @property
    def state(self) -> str:
        """Current state (transitions open -> half-open lazily on query)."""
        with self._lock:
            self._advance()
            return self._state

    @locked_by("breaker.state")
    def _advance(self) -> None:
        """Move open -> half-open once the reset window has elapsed."""
        if self._state == self.OPEN:
            if self._clock() - self._opened_at >= self.reset_timeout:
                self._state = self.HALF_OPEN
                self._last_probe_at = None

    def allow(self) -> bool:
        """Whether a request (or probe) may be sent to the worker now.

        In the half-open state only one caller per reset window gets
        ``True``; everyone else keeps skipping until that probe reports
        back via :meth:`record_success`/:meth:`record_failure` (or its
        window expires, guarding against a probe that never reports).
        """
        with self._lock:
            self._advance()
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                return False
            # half-open: admit one probe per reset window
            now = self._clock()
            if (
                self._last_probe_at is not None
                and now - self._last_probe_at < self.reset_timeout
            ):
                return False
            self._last_probe_at = now
            return True

    def record_success(self) -> None:
        """A request to the worker succeeded: close the breaker."""
        with self._lock:
            self._state = self.CLOSED
            self._consecutive_failures = 0
            self._opened_at = None
            self._last_probe_at = None

    def record_failure(self) -> None:
        """A request to the worker failed: count it, maybe trip open."""
        with self._lock:
            self._advance()
            self._consecutive_failures += 1
            if self._state == self.HALF_OPEN or (
                self._state == self.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = self.OPEN
                self._opened_at = self._clock()
                self.times_opened += 1

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe state for stats/health endpoints."""
        with self._lock:
            self._advance()
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "times_opened": self.times_opened,
            }


# ----------------------------------------------------------------------
# Retry budget
# ----------------------------------------------------------------------
class RetryBudget:
    """A bounded retry allowance with jittered exponential backoff.

    One budget instance is configuration shared by many requests; each
    request tracks its own attempt count and asks the budget whether it
    may try again (:meth:`exhausted`) and how long to back off before
    the next try (:meth:`delay`).  Backoff for attempt *n* is
    ``min(cap, base * 2**(n-1))`` scaled by a uniform jitter in
    ``[1 - jitter, 1 + jitter]`` drawn from the (optionally seeded)
    RNG, so synchronized retry storms decorrelate while tests replay
    byte-identically.
    """

    def __init__(
        self,
        max_attempts: int = 8,
        backoff_base: float = 0.05,
        backoff_cap: float = 0.5,
        jitter: float = 0.5,
        seed: Optional[int] = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if backoff_base <= 0 or backoff_cap <= 0:
            raise ValueError("backoff_base and backoff_cap must be > 0")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._lock = named_lock("budget.rng")

    def exhausted(self, attempts: int) -> bool:
        """Whether a request that already made ``attempts`` tries is done."""
        return attempts >= self.max_attempts

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based), jittered."""
        base = min(self.backoff_cap, self.backoff_base * (2 ** max(0, attempt - 1)))
        if self.jitter == 0.0:
            return base
        with self._lock:
            scale = 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return base * scale


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
class InjectedFault(RuntimeError):
    """An exception deliberately raised by a ``crash`` fault rule.

    Only ever raised when a :class:`FaultPlan` is armed -- production
    paths without a plan can never see it.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"injected fault at {point!r}")
        self.point = point


_FAULT_ACTIONS = ("kill", "crash", "reset", "truncate", "sleep")


@dataclass(frozen=True)
class FaultRule:
    """One arming of one injection point.

    Parameters
    ----------
    point:
        Injection point name, e.g. ``"insert.applied"`` or
        ``"http.pre_write"``.  The points a build exposes are listed in
        the serving docs; unknown names simply never fire.
    action:
        * ``"kill"`` -- ``SIGKILL`` the current process (fired by the
          plan itself; never returns);
        * ``"crash"`` -- raise :class:`InjectedFault` at the point;
        * ``"sleep"`` -- block for ``sleep_seconds`` at the point;
        * ``"reset"`` / ``"truncate"`` -- returned to the caller, which
          performs the transport-level damage (close the socket before
          writing / cut the response body short).
    at:
        Fire on the Nth arrival at ``point`` in this process (1-based);
        ``None`` matches every arrival.
    when_actions:
        Fire only when the caller-supplied ``n_actions`` context equals
        this value.  Because the context is an *absolute* dataset count,
        a kill armed this way is self-disarming: after respawn the
        retried batch deduplicates instead of re-applying, so the count
        never passes through the trigger value again.
    times:
        Per-process cap on how often this rule fires (default once).
    once:
        Claim a cross-process latch in the plan's ``state_dir`` before
        firing, so the rule fires at most once across every process
        sharing the plan (requires ``state_dir``).
    sleep_seconds:
        Duration of the ``"sleep"`` action.
    probability:
        Fire with this probability (drawn from the plan's seeded RNG);
        ``None`` means always.
    """

    point: str
    action: str
    at: Optional[int] = None
    when_actions: Optional[int] = None
    times: int = 1
    once: bool = False
    sleep_seconds: float = 0.05
    probability: Optional[float] = None

    def __post_init__(self) -> None:
        if self.action not in _FAULT_ACTIONS:
            raise ValueError(
                f"action must be one of {_FAULT_ACTIONS}, got {self.action!r}"
            )
        if self.at is not None and self.at < 1:
            raise ValueError("at must be >= 1 (or None)")
        if self.times < 1:
            raise ValueError("times must be >= 1")
        if self.sleep_seconds < 0:
            raise ValueError("sleep_seconds must be >= 0")
        if self.probability is not None and not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1] (or None)")


class FaultPlan:
    """A seeded, picklable schedule of deliberate failures.

    Carried (optionally) by every serving layer; ``fire`` is called at
    each named injection point and either does nothing (no matching
    armed rule) or executes/returns the matched rule's action.  See the
    module docstring for determinism and multi-process semantics.
    """

    def __init__(
        self,
        rules: Sequence[FaultRule] = (),
        seed: int = 0,
        state_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        self.rules: List[FaultRule] = list(rules)
        self.seed = int(seed)
        self.state_dir = str(state_dir) if state_dir is not None else None
        for index, rule in enumerate(self.rules):
            if rule.once and self.state_dir is None:
                raise ValueError(
                    f"rule {index} ({rule.point!r}) has once=True but the "
                    "plan has no state_dir to keep the cross-process latch in"
                )
        self._init_runtime()

    def _init_runtime(self) -> None:
        self._lock = named_lock("faultplan.state")
        self._rng = random.Random(self.seed)
        self._arrivals: Dict[str, int] = {}
        self._fired_counts: Dict[int, int] = {}
        #: ``(point, action, arrival)`` tuples of every rule fired in
        #: this process, for test assertions.
        self.fired: List[Tuple[str, str, int]] = []

    # -- pickling: config crosses process boundaries, runtime state is
    # -- per-process and rebuilt fresh.
    def __getstate__(self) -> Dict[str, object]:
        return {"rules": self.rules, "seed": self.seed, "state_dir": self.state_dir}

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.rules = list(state["rules"])
        self.seed = state["seed"]
        self.state_dir = state["state_dir"]
        self._init_runtime()

    # ------------------------------------------------------------------
    def arrivals(self, point: str) -> int:
        """How many times ``point`` has been reached in this process."""
        with self._lock:
            return self._arrivals.get(point, 0)

    def _claim_latch(self, index: int, rule: FaultRule) -> bool:
        latch_dir = Path(self.state_dir)
        latch_dir.mkdir(parents=True, exist_ok=True)
        latch = latch_dir / f"fault-{index:03d}-{rule.action}.fired"
        try:
            # O_CREAT|O_EXCL: exactly one process across the fleet wins.
            fd = os.open(latch, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def fire(self, point: str, **context) -> Optional[str]:
        """Record an arrival at ``point``; execute a matching rule if any.

        Returns ``None`` (nothing armed / nothing matched), or the
        action string for caller-handled actions (``"reset"`` /
        ``"truncate"`` / ``"sleep"`` -- sleep has already happened).
        ``"crash"`` raises :class:`InjectedFault`; ``"kill"`` does not
        return at all.
        """
        with self._lock:
            arrival = self._arrivals.get(point, 0) + 1
            self._arrivals[point] = arrival
        # The latch claim is file I/O (O_CREAT|O_EXCL across processes),
        # so it must not run under the plan lock -- fire() sits on fast
        # paths (the writer's apply loop, the solve path).  Matching runs
        # under the lock; a once-rule releases it, races for the latch,
        # and only records itself as fired after winning.  A lost latch
        # rescans for the next armed rule (same behaviour as the old
        # single-pass `continue`).
        latch_lost: set = set()
        while True:
            matched: Optional[FaultRule] = None
            matched_index = -1
            with self._lock:
                for index, rule in enumerate(self.rules):
                    if index in latch_lost or rule.point != point:
                        continue
                    if self._fired_counts.get(index, 0) >= rule.times:
                        continue
                    if rule.at is not None and arrival != rule.at:
                        continue
                    if (
                        rule.when_actions is not None
                        and context.get("n_actions") != rule.when_actions
                    ):
                        continue
                    if (
                        rule.probability is not None
                        and self._rng.random() >= rule.probability
                    ):
                        continue
                    matched = rule
                    matched_index = index
                    break
                if matched is not None and not matched.once:
                    self._fired_counts[matched_index] = (
                        self._fired_counts.get(matched_index, 0) + 1
                    )
                    self.fired.append((point, matched.action, arrival))
            if matched is None:
                return None
            if matched.once:
                if not self._claim_latch(matched_index, matched):
                    latch_lost.add(matched_index)
                    continue
                with self._lock:
                    self._fired_counts[matched_index] = (
                        self._fired_counts.get(matched_index, 0) + 1
                    )
                    self.fired.append((point, matched.action, arrival))
            return self._execute(point, matched)

    @staticmethod
    def _execute(point: str, rule: FaultRule) -> Optional[str]:
        if rule.action == "sleep":
            time.sleep(rule.sleep_seconds)
            return "sleep"
        if rule.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
            raise AssertionError("unreachable: SIGKILL did not terminate")
        if rule.action == "crash":
            raise InjectedFault(point)
        return rule.action  # "reset" / "truncate": caller does the damage
