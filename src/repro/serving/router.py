"""Corpus-placement router: one front door for a multi-process fleet.

The router is the half of the serving fleet that clients see: an HTTP
process that owns the corpus->worker placement table and forwards every
``/corpora/<name>/*`` request to the worker process whose
:class:`~repro.serving.server.TagDMServer` holds that corpus's warm
shard.  Placement is rendezvous hashing (stable under worker
joins/leaves: only the moved corpus re-homes) with explicit pin
overrides for operators who need a corpus on a specific worker.

Routes (bodies and errors exactly as in :mod:`repro.serving.http`, so a
client cannot tell a router from a single-process front-end except by
the extra route)::

    GET  /healthz                  -- router + aggregated worker health
    GET  /corpora                  -- {"corpora": [names]} from placement
    GET  /placement                -- corpus->worker map with worker urls
    *    /corpora/<name>/<verb>    -- forwarded verbatim to the owner

Failure semantics: a forward that cannot reach the owning worker
(killed, restarting) is retried against the worker's *current* address
-- re-resolved every attempt, because a respawned worker comes back on
a new port -- under two bounds: a per-request **retry budget**
(:class:`~repro.serving.reliability.RetryBudget`: at most
``max_attempts`` actual forwards, jittered exponential backoff between
them) and the wall-clock ``retry_deadline``.  Whichever runs out first
answers 503 (:class:`~repro.api.errors.WorkerUnavailableError`).  Each
worker also has a :class:`~repro.serving.reliability.CircuitBreaker`
fed by forward failures and (when enabled) background heartbeat
probes: once a worker trips the breaker open, forwards skip it without
burning connection attempts until the breaker half-opens and a probe
succeeds.  Waits spent on an unresolved worker or an open breaker
consume *no* budget -- only the deadline -- so a respawning worker is
picked up the moment it is back.  A request the worker *answered* is
relayed as-is, status, body and ``Retry-After`` header untouched,
which is what keeps routed error payloads bit-identical to
single-process ones; the ``Idempotency-Key`` request header is
forwarded too, so a routed insert retried across a worker crash
deduplicates instead of double-applying.

Threading model: the router is a :class:`ThreadingHTTPServer`; each
request forwards on its own handler thread over a per-worker
:class:`~repro.api.client.HttpConnectionPool`, so slow solves on one
worker do not block requests to another.  :class:`PlacementTable` is
itself thread-safe and shared with the fleet supervisor.
"""

from __future__ import annotations

import hashlib
import json
import re
import threading
import time
import urllib.parse
from http.client import HTTPException
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from socket import timeout as socket_timeout
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.api.client import HttpConnectionPool
from repro.core.witness import named_lock, named_rlock
from repro.api.errors import (
    ApiError,
    SolveTimeoutError,
    SpecValidationError,
    UnknownCorpusError,
    UnknownRouteError,
    WorkerUnavailableError,
    retry_after_header,
)
from repro.serving.reliability import CircuitBreaker, RetryBudget

__all__ = ["PlacementTable", "TagDMRouter"]

_CORPUS_ROUTE = re.compile(r"\A/corpora/(?P<name>[A-Za-z0-9._~%-]+)/(?P<verb>[a-z]+)\Z")
_SUBSCRIPTION_ROUTE = re.compile(
    r"\A/corpora/(?P<name>[A-Za-z0-9._~%-]+)/subscriptions/"
    r"(?P<sub>[A-Za-z0-9._~%-]+)(?P<stream>/stream)?\Z"
)

#: Forwarded request bodies above this size are rejected up front
#: (mirrors ``repro.serving.http.MAX_BODY_BYTES``).
MAX_BODY_BYTES = 64 * 1024 * 1024


def _rendezvous_score(worker_id: str, corpus: str) -> int:
    """The weight of ``worker_id`` for ``corpus`` (highest weight owns).

    SHA-1 based so the placement is identical in every process that
    computes it -- Python's builtin ``hash`` is salted per process and
    would scatter corpora differently on every restart.
    """
    digest = hashlib.sha1(f"{worker_id}\x00{corpus}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class PlacementTable:
    """Thread-safe corpus->worker placement with pin overrides.

    Ownership is rendezvous hashing over the current worker set: each
    corpus goes to the worker with the highest hash weight for it, so
    adding or removing one worker only moves the corpora that worker
    gains or loses -- every other assignment is untouched.  An explicit
    :meth:`pin` overrides hashing for one corpus as long as its pinned
    worker is registered (an absent pinned worker falls back to hashing
    rather than blackholing the corpus).

    All methods take an internal lock and never block on I/O, so the
    table can be shared between the router's request threads and the
    fleet supervisor.
    """

    def __init__(
        self,
        workers: Union[List[str], Tuple[str, ...]] = (),
        pins: Optional[Mapping[str, str]] = None,
    ) -> None:
        self._lock = named_rlock("placement.table")
        self._workers: List[str] = []
        self._corpora: List[str] = []
        self._pins: Dict[str, str] = dict(pins or {})
        for worker_id in workers:
            self.add_worker(worker_id)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add_worker(self, worker_id: str) -> None:
        """Register a worker id (idempotent)."""
        with self._lock:
            if worker_id not in self._workers:
                self._workers.append(worker_id)
                self._workers.sort()

    def remove_worker(self, worker_id: str) -> None:
        """Drop a worker id; its corpora re-home by hashing (idempotent)."""
        with self._lock:
            if worker_id in self._workers:
                self._workers.remove(worker_id)

    def register_corpus(self, corpus: str) -> None:
        """Make a corpus placeable (idempotent)."""
        with self._lock:
            if corpus not in self._corpora:
                self._corpora.append(corpus)
                self._corpora.sort()

    def forget_corpus(self, corpus: str) -> None:
        """Remove a corpus (and any pin it had; idempotent)."""
        with self._lock:
            if corpus in self._corpora:
                self._corpora.remove(corpus)
            self._pins.pop(corpus, None)

    def pin(self, corpus: str, worker_id: str) -> None:
        """Pin a corpus to one worker, overriding rendezvous hashing."""
        with self._lock:
            if worker_id not in self._workers:
                raise KeyError(
                    f"cannot pin {corpus!r} to unknown worker {worker_id!r}; "
                    f"known: {self._workers}"
                )
            self.register_corpus(corpus)
            self._pins[corpus] = worker_id

    def unpin(self, corpus: str) -> None:
        """Remove a pin; the corpus re-homes by hashing (idempotent)."""
        with self._lock:
            self._pins.pop(corpus, None)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def workers(self) -> List[str]:
        """Registered worker ids, sorted."""
        with self._lock:
            return list(self._workers)

    def corpora(self) -> List[str]:
        """Registered corpus names, sorted."""
        with self._lock:
            return list(self._corpora)

    def __contains__(self, corpus: str) -> bool:
        with self._lock:
            return corpus in self._corpora

    def owner_of(self, corpus: str) -> str:
        """The worker id serving ``corpus``.

        Raises ``KeyError`` for an unregistered corpus and
        ``RuntimeError`` when the table has no workers at all.
        """
        with self._lock:
            if corpus not in self._corpora:
                raise KeyError(f"corpus {corpus!r} is not placed")
            if not self._workers:
                raise RuntimeError("placement table has no workers")
            pinned = self._pins.get(corpus)
            if pinned is not None and pinned in self._workers:
                return pinned
            return max(
                self._workers,
                key=lambda worker_id: (_rendezvous_score(worker_id, corpus), worker_id),
            )

    def assignments(self) -> Dict[str, List[str]]:
        """Every worker's corpus list (workers with none map to ``[]``)."""
        with self._lock:
            table: Dict[str, List[str]] = {worker_id: [] for worker_id in self._workers}
            for corpus in self._corpora:
                table[self.owner_of(corpus)].append(corpus)
            return table

    def to_payload(
        self, worker_urls: Optional[Mapping[str, Optional[str]]] = None
    ) -> Dict[str, object]:
        """The ``GET /placement`` wire body."""
        with self._lock:
            corpora = {corpus: self.owner_of(corpus) for corpus in self._corpora}
            workers: Dict[str, Optional[str]] = {
                worker_id: (worker_urls or {}).get(worker_id)
                for worker_id in self._workers
            }
            return {
                "workers": workers,
                "corpora": corpora,
                "pins": dict(self._pins),
            }


class _RouterHandler(BaseHTTPRequestHandler):
    """Forward one request to the owning worker (or answer router routes)."""

    router: "TagDMRouter" = None  # type: ignore[assignment]
    protocol_version = "HTTP/1.1"
    # Same keep-alive Nagle/delayed-ACK trap as the worker front-end.
    disable_nagle_algorithm = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep request logging off the forwarding hot path

    # ------------------------------------------------------------------
    # Plumbing (mirrors repro.serving.http._Handler)
    # ------------------------------------------------------------------
    def _write_json(self, status: int, payload: Mapping[str, object]) -> None:
        self._write_raw(status, "application/json", json.dumps(payload).encode("utf-8"))

    def _write_raw(
        self,
        status: int,
        content_type: str,
        body: bytes,
        extra_headers: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            return b""
        if length > MAX_BODY_BYTES:
            self.close_connection = True
            # Same class and message as the worker front-end's own
            # oversized-body answer, so routed and direct requests see
            # an identical 422 payload.
            raise SpecValidationError(
                f"request body of {length} bytes exceeds the {MAX_BODY_BYTES} limit"
            )
        return self.rfile.read(length)

    def _dispatch(self, method: str) -> None:
        extra_headers: Optional[Mapping[str, str]] = None
        try:
            status, content_type, body, extra_headers = self._route(method)
        except ApiError as error:
            status, content_type = error.status, "application/json"
            body = json.dumps(error.to_payload()).encode("utf-8")
            retry_after = retry_after_header(error)
            if retry_after is not None:
                extra_headers = {"Retry-After": retry_after}
        except Exception as exc:  # a router bug must answer 500, not drop the socket
            error = ApiError(f"{type(exc).__name__}: {exc}")
            status, content_type = error.status, "application/json"
            body = json.dumps(error.to_payload()).encode("utf-8")
        self._write_raw(status, content_type, body, extra_headers)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(self, method: str) -> Tuple[int, str, bytes, Optional[Mapping[str, str]]]:
        path, _, query = self.path.partition("?")
        body = self._read_body()
        if method == "GET" and path == "/healthz":
            return 200, "application/json", self.router._health_body(), None
        if method == "GET" and path == "/corpora":
            payload = {"corpora": self.router.placement.corpora()}
            return 200, "application/json", json.dumps(payload).encode("utf-8"), None
        if method == "GET" and path == "/placement":
            return 200, "application/json", self.router._placement_body(), None
        match = _CORPUS_ROUTE.fullmatch(path) or _SUBSCRIPTION_ROUTE.fullmatch(path)
        if match:
            corpus = urllib.parse.unquote(match.group("name"))
            # Forward the idempotency key so a keyed insert (or a
            # subscription registration) retried by the router -- or
            # replayed over a pooled connection into the worker --
            # deduplicates server-side instead of double-applying.
            request_headers: Dict[str, str] = {}
            idempotency_key = self.headers.get("Idempotency-Key")
            if idempotency_key is not None:
                request_headers["Idempotency-Key"] = idempotency_key
            return self.router.forward(
                method, corpus, self.path, body, headers=request_headers
            )
        raise UnknownRouteError(
            f"no route for {method} {path}",
            details={
                "routes": [
                    "GET /healthz",
                    "GET /corpora",
                    "GET /placement",
                    "GET /corpora/<name>/stats",
                    "POST /corpora/<name>/insert",
                    "POST /corpora/<name>/solve",
                    "POST /corpora/<name>/subscriptions",
                    "GET /corpora/<name>/subscriptions",
                    "GET /corpora/<name>/subscriptions/<id>",
                    "GET /corpora/<name>/subscriptions/<id>/stream",
                ]
            },
        )

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("POST")


class TagDMRouter:
    """Route fleet traffic to the worker that owns each corpus.

    Parameters
    ----------
    placement:
        The (shared, thread-safe) :class:`PlacementTable`.  The fleet
        supervisor registers workers/corpora on it; the router only
        reads.
    resolve_worker:
        ``worker_id -> base url`` resolver -- a callable or a plain
        mapping.  Returning ``None`` means "worker currently down";
        the router keeps re-resolving while it retries, which is how a
        respawned worker's new port is picked up mid-request.
    host / port:
        Bind address (``port=0`` picks a free port; read :attr:`url`).
    retry_deadline:
        Wall-clock bound on one forward: how long it may keep waiting
        for an unreachable owner before answering 503 (seconds).  Must
        cover a worker respawn: process start + warm-start from
        snapshot.
    retry_interval:
        Sleep between placement polls while the owner is unresolved or
        its breaker is open (seconds); also the backoff base of the
        default retry budget.
    request_timeout:
        Socket timeout for one forwarded attempt (seconds); a worker
        that is *reachable but slow* past this answers 504, it is not
        retried (re-running a slow solve would only pile on load).
    retry_budget:
        The :class:`~repro.serving.reliability.RetryBudget` bounding
        *actual* forward attempts per request (waits on an unresolved
        worker or an open breaker are free).  ``None`` builds one from
        ``retry_interval`` (64 attempts, capped jittered backoff,
        seeded for deterministic tests).
    breaker_failure_threshold / breaker_reset_timeout:
        Per-worker :class:`~repro.serving.reliability.CircuitBreaker`
        tuning: consecutive failures to trip open, and how long an open
        breaker waits before letting a half-open probe through.
    heartbeat_interval:
        When set, :meth:`start` runs a background thread probing every
        worker's ``/healthz`` this often (seconds), feeding the
        breakers -- a respawned worker is then closed back into rotation
        even when no client traffic is probing it.  ``None`` (default)
        disables the thread; breakers are still fed by forward results.

    Lifecycle and threading match
    :class:`~repro.serving.http.TagDMHttpServer`: ``start()`` serves on
    a daemon thread, ``stop()`` is idempotent, the object is a context
    manager, and every inbound request is handled (and forwarded) on
    its own thread.
    """

    def __init__(
        self,
        placement: PlacementTable,
        resolve_worker: Union[Callable[[str], Optional[str]], Mapping[str, str]],
        host: str = "127.0.0.1",
        port: int = 0,
        retry_deadline: float = 30.0,
        retry_interval: float = 0.05,
        request_timeout: float = 120.0,
        retry_budget: Optional[RetryBudget] = None,
        breaker_failure_threshold: int = 3,
        breaker_reset_timeout: float = 0.25,
        heartbeat_interval: Optional[float] = None,
    ) -> None:
        self.placement = placement
        if callable(resolve_worker):
            self._resolve = resolve_worker
        else:
            mapping = dict(resolve_worker)
            self._resolve = mapping.get
        self.retry_deadline = retry_deadline
        self.retry_interval = retry_interval
        self.request_timeout = request_timeout
        self.retry_budget = retry_budget or RetryBudget(
            max_attempts=64,
            backoff_base=max(retry_interval, 1e-3),
            backoff_cap=0.5,
            jitter=0.5,
            seed=0,
        )
        self.breaker_failure_threshold = breaker_failure_threshold
        self.breaker_reset_timeout = breaker_reset_timeout
        self.heartbeat_interval = heartbeat_interval
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._breakers_lock = named_lock("router.breakers")
        self._pools: Dict[str, HttpConnectionPool] = {}
        self._pools_lock = named_lock("router.pools")
        self._stats_lock = named_lock("router.stats")
        self._forwarded = 0
        self._retries = 0
        self._unavailable = 0
        self._budget_exhausted = 0
        self._heartbeat_probes = 0
        self._heartbeat_stop = threading.Event()
        self._heartbeat_thread: Optional[threading.Thread] = None
        handler = type("BoundRouterHandler", (_RouterHandler,), {"router": self})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (port resolved when 0 was asked)."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        host, port = self.address
        return f"http://{host}:{port}"

    @property
    def is_running(self) -> bool:
        """Whether the accept loop is live."""
        return self._thread is not None and self._thread.is_alive()

    def stats(self) -> Dict[str, object]:
        """Forwarding counters plus per-worker breaker snapshots."""
        with self._stats_lock:
            counters: Dict[str, object] = {
                "requests_forwarded": self._forwarded,
                "forward_retries": self._retries,
                "workers_unavailable": self._unavailable,
                "budget_exhausted": self._budget_exhausted,
                "heartbeat_probes": self._heartbeat_probes,
            }
        with self._breakers_lock:
            counters["breakers"] = {
                worker_id: breaker.snapshot()
                for worker_id, breaker in sorted(self._breakers.items())
            }
        return counters

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def _pool_for(self, base_url: str) -> HttpConnectionPool:
        with self._pools_lock:
            pool = self._pools.get(base_url)
            if pool is None:
                pool = HttpConnectionPool(
                    base_url, request_timeout=self.request_timeout
                )
                self._pools[base_url] = pool
            return pool

    def breaker_for(self, worker_id: str) -> CircuitBreaker:
        """The (lazily created) circuit breaker guarding one worker.

        Keyed by worker *id*, not address: a respawned worker keeps its
        breaker, so the successful first forward after a respawn is what
        closes it.
        """
        with self._breakers_lock:
            breaker = self._breakers.get(worker_id)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=self.breaker_failure_threshold,
                    reset_timeout=self.breaker_reset_timeout,
                )
                self._breakers[worker_id] = breaker
            return breaker

    def _owner_of(self, corpus: str) -> str:
        try:
            return self.placement.owner_of(corpus)
        except KeyError:
            # Bit-identical to the single-process unknown-corpus answer
            # (message and details from repro.api.service._shard).
            raise UnknownCorpusError(
                f"corpus {corpus!r} is not being served",
                details={"corpus": corpus, "known": self.placement.corpora()},
            ) from None
        except RuntimeError as exc:
            raise WorkerUnavailableError(
                str(exc), details={"corpus": corpus}
            ) from None

    def forward(
        self,
        method: str,
        corpus: str,
        path_with_query: str,
        body: bytes,
        headers: Optional[Mapping[str, str]] = None,
    ) -> Tuple[int, str, bytes, Dict[str, str]]:
        """Relay one request to the corpus owner; retry while it is down.

        Returns ``(status, content type, body bytes, extra headers)``
        exactly as the worker answered (the extra headers carry a
        relayed ``Retry-After``, if the worker sent one).  Retries
        happen only for *transport* failures (connect refused/reset,
        worker mid-restart) -- never after a response arrived, and
        never for per-attempt socket timeouts (those answer 504).  Each
        transport failure consumes one unit of the retry budget and
        feeds the worker's breaker; waits on an unresolved worker or an
        open breaker consume only wall clock.  A request that exhausts
        either the budget or ``retry_deadline`` answers 503.

        An insert forwarded to a worker that dies mid-request is
        retried with its ``Idempotency-Key`` header intact, so the
        respawned worker deduplicates it -- exactly-once; an unkeyed
        insert keeps the at-least-once caveat (see ``DEPLOYMENT.md``).
        """
        request_headers: Dict[str, str] = (
            {"Content-Type": "application/json"} if body else {}
        )
        if headers:
            request_headers.update(headers)
        deadline = time.monotonic() + self.retry_deadline
        attempt = 0
        while True:
            worker_id = self._owner_of(corpus)
            base_url = self._resolve(worker_id)
            breaker = self.breaker_for(worker_id)
            pause = self.retry_interval
            if base_url is not None and breaker.allow():
                attempt += 1
                try:
                    status, response_headers, data = self._pool_for(base_url).request(
                        method, path_with_query, body=body or None,
                        headers=request_headers,
                    )
                except (socket_timeout, TimeoutError) as exc:
                    raise SolveTimeoutError(
                        f"worker {worker_id!r} did not answer {method} "
                        f"{path_with_query} within {self.request_timeout:g}s",
                        details={
                            "corpus": corpus,
                            "worker": worker_id,
                            "timeout_seconds": self.request_timeout,
                        },
                    ) from exc
                except (OSError, HTTPException):
                    # Worker down or dying: feed the breaker, spend one
                    # unit of retry budget, back off before the next try.
                    breaker.record_failure()
                    if self.retry_budget.exhausted(attempt):
                        with self._stats_lock:
                            self._unavailable += 1
                            self._budget_exhausted += 1
                        raise WorkerUnavailableError(
                            f"worker {worker_id!r} for corpus {corpus!r} "
                            f"failed {attempt} forward attempts "
                            "(retry budget exhausted)",
                            details={
                                "corpus": corpus,
                                "worker": worker_id,
                                "attempts": attempt,
                                "breaker": breaker.snapshot(),
                            },
                        ) from None
                    pause = self.retry_budget.delay(attempt)
                else:
                    breaker.record_success()
                    with self._stats_lock:
                        self._forwarded += 1
                        self._retries += attempt - 1
                    content_type = response_headers.get("content-type", "application/json")
                    extra: Dict[str, str] = {}
                    retry_after = response_headers.get("retry-after")
                    if retry_after is not None:
                        extra["Retry-After"] = retry_after
                    return status, content_type, data, extra
            now = time.monotonic()
            if now >= deadline:
                with self._stats_lock:
                    self._unavailable += 1
                raise WorkerUnavailableError(
                    f"worker {worker_id!r} for corpus {corpus!r} stayed "
                    f"unreachable for {self.retry_deadline:g}s",
                    details={
                        "corpus": corpus,
                        "worker": worker_id,
                        "attempts": attempt,
                        "breaker": breaker.snapshot(),
                    },
                )
            time.sleep(max(0.0, min(pause, deadline - now)))

    # ------------------------------------------------------------------
    # Router-local routes
    # ------------------------------------------------------------------
    def _placement_body(self) -> bytes:
        urls = {worker_id: self._resolve(worker_id) for worker_id in self.placement.workers()}
        return json.dumps(self.placement.to_payload(urls)).encode("utf-8")

    def _probe_worker(self, worker_id: str) -> Optional[Dict[str, object]]:
        """One ``/healthz`` probe of one worker, feeding its breaker.

        Returns the worker's health payload, or ``None`` when the worker
        is unresolved, unreachable or answered garbage.  Transport
        failures count against the breaker; an unresolved worker (known
        to be down, nothing to probe) does not -- the breaker should
        reflect *surprise* failures, not supervised restarts.
        """
        base_url = self._resolve(worker_id)
        if base_url is None:
            return None
        breaker = self.breaker_for(worker_id)
        with self._stats_lock:
            self._heartbeat_probes += 1
        try:
            code, _headers, data = self._pool_for(base_url).request(
                "GET", "/healthz", timeout=min(5.0, self.request_timeout)
            )
            payload = json.loads(data.decode("utf-8"))
        except (OSError, HTTPException, ValueError):
            breaker.record_failure()
            return None
        if code == 200 and isinstance(payload, dict):
            breaker.record_success()
            return payload
        return None

    def _heartbeat_loop(self) -> None:
        while not self._heartbeat_stop.wait(self.heartbeat_interval):
            for worker_id in self.placement.workers():
                if self._heartbeat_stop.is_set():
                    return
                self._probe_worker(worker_id)

    def _health_body(self) -> bytes:
        """Aggregate worker ``/healthz`` bodies under the router's own.

        Uses one non-retried probe per worker so a dead worker makes the
        probe report it (``reachable: false``) instead of hanging the
        health endpoint through a retry window.  Probe results feed the
        per-worker breakers, whose snapshots ride along in each entry.
        """
        workers: Dict[str, Dict[str, object]] = {}
        totals = {"inserts_served": 0, "solves_served": 0, "snapshots_written": 0}
        status = "ok"
        for worker_id in self.placement.workers():
            base_url = self._resolve(worker_id)
            entry: Dict[str, object] = {"url": base_url, "reachable": False}
            payload = self._probe_worker(worker_id)
            if payload is not None:
                entry["reachable"] = True
                entry["health"] = payload
                for key in totals:
                    totals[key] += int(payload.get(key, 0))
            entry["breaker"] = self.breaker_for(worker_id).snapshot()
            if not entry["reachable"]:
                status = "degraded"
            workers[worker_id] = entry
        body: Dict[str, object] = {
            "status": status,
            "role": "router",
            "corpora": self.placement.corpora(),
            "workers": workers,
            "router": self.stats(),
        }
        body.update(totals)
        return json.dumps(body).encode("utf-8")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "TagDMRouter":
        """Start the accept loop (and heartbeat thread) -- idempotent."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name=f"tagdm-router-{self.address[1]}",
                daemon=True,
            )
            self._thread.start()
        if self.heartbeat_interval is not None and self._heartbeat_thread is None:
            self._heartbeat_stop.clear()
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop,
                name=f"tagdm-router-heartbeat-{self.address[1]}",
                daemon=True,
            )
            self._heartbeat_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, close worker pools, release the socket.

        Idempotent; blocks until the accept loop exits (in-flight
        handler threads finish their current response).
        """
        if self._heartbeat_thread is not None:
            self._heartbeat_stop.set()
            self._heartbeat_thread.join(timeout=10.0)
            self._heartbeat_thread = None
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join()
            self._thread = None
        self._httpd.server_close()
        with self._pools_lock:
            pools, self._pools = list(self._pools.values()), {}
        for pool in pools:
            pool.close()

    def __enter__(self) -> "TagDMRouter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
