"""Corpus-placement router: one front door for a multi-process fleet.

The router is the half of the serving fleet that clients see: an HTTP
process that owns the corpus->worker placement table and forwards every
``/corpora/<name>/*`` request to the worker process whose
:class:`~repro.serving.server.TagDMServer` holds that corpus's warm
shard.  Placement is rendezvous hashing (stable under worker
joins/leaves: only the moved corpus re-homes) with explicit pin
overrides for operators who need a corpus on a specific worker.

Routes (bodies and errors exactly as in :mod:`repro.serving.http`, so a
client cannot tell a router from a single-process front-end except by
the extra route)::

    GET  /healthz                  -- router + aggregated worker health
    GET  /corpora                  -- {"corpora": [names]} from placement
    GET  /placement                -- corpus->worker map with worker urls
    *    /corpora/<name>/<verb>    -- forwarded verbatim to the owner

Failure semantics: a forward that cannot reach the owning worker
(killed, restarting) is retried against the worker's *current* address
-- re-resolved every attempt, because a respawned worker comes back on
a new port -- until ``retry_deadline`` elapses, then answers 503
(:class:`~repro.api.errors.WorkerUnavailableError`).  A request the
worker *answered* is relayed as-is, status and body untouched, which is
what keeps routed error payloads bit-identical to single-process ones.

Threading model: the router is a :class:`ThreadingHTTPServer`; each
request forwards on its own handler thread over a per-worker
:class:`~repro.api.client.HttpConnectionPool`, so slow solves on one
worker do not block requests to another.  :class:`PlacementTable` is
itself thread-safe and shared with the fleet supervisor.
"""

from __future__ import annotations

import hashlib
import json
import re
import threading
import time
import urllib.parse
from http.client import HTTPException
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from socket import timeout as socket_timeout
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.api.client import HttpConnectionPool
from repro.api.errors import (
    ApiError,
    SolveTimeoutError,
    SpecValidationError,
    UnknownCorpusError,
    UnknownRouteError,
    WorkerUnavailableError,
)

__all__ = ["PlacementTable", "TagDMRouter"]

_CORPUS_ROUTE = re.compile(r"\A/corpora/(?P<name>[A-Za-z0-9._~%-]+)/(?P<verb>[a-z]+)\Z")

#: Forwarded request bodies above this size are rejected up front
#: (mirrors ``repro.serving.http.MAX_BODY_BYTES``).
MAX_BODY_BYTES = 64 * 1024 * 1024


def _rendezvous_score(worker_id: str, corpus: str) -> int:
    """The weight of ``worker_id`` for ``corpus`` (highest weight owns).

    SHA-1 based so the placement is identical in every process that
    computes it -- Python's builtin ``hash`` is salted per process and
    would scatter corpora differently on every restart.
    """
    digest = hashlib.sha1(f"{worker_id}\x00{corpus}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class PlacementTable:
    """Thread-safe corpus->worker placement with pin overrides.

    Ownership is rendezvous hashing over the current worker set: each
    corpus goes to the worker with the highest hash weight for it, so
    adding or removing one worker only moves the corpora that worker
    gains or loses -- every other assignment is untouched.  An explicit
    :meth:`pin` overrides hashing for one corpus as long as its pinned
    worker is registered (an absent pinned worker falls back to hashing
    rather than blackholing the corpus).

    All methods take an internal lock and never block on I/O, so the
    table can be shared between the router's request threads and the
    fleet supervisor.
    """

    def __init__(
        self,
        workers: Union[List[str], Tuple[str, ...]] = (),
        pins: Optional[Mapping[str, str]] = None,
    ) -> None:
        self._lock = threading.RLock()
        self._workers: List[str] = []
        self._corpora: List[str] = []
        self._pins: Dict[str, str] = dict(pins or {})
        for worker_id in workers:
            self.add_worker(worker_id)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add_worker(self, worker_id: str) -> None:
        """Register a worker id (idempotent)."""
        with self._lock:
            if worker_id not in self._workers:
                self._workers.append(worker_id)
                self._workers.sort()

    def remove_worker(self, worker_id: str) -> None:
        """Drop a worker id; its corpora re-home by hashing (idempotent)."""
        with self._lock:
            if worker_id in self._workers:
                self._workers.remove(worker_id)

    def register_corpus(self, corpus: str) -> None:
        """Make a corpus placeable (idempotent)."""
        with self._lock:
            if corpus not in self._corpora:
                self._corpora.append(corpus)
                self._corpora.sort()

    def forget_corpus(self, corpus: str) -> None:
        """Remove a corpus (and any pin it had; idempotent)."""
        with self._lock:
            if corpus in self._corpora:
                self._corpora.remove(corpus)
            self._pins.pop(corpus, None)

    def pin(self, corpus: str, worker_id: str) -> None:
        """Pin a corpus to one worker, overriding rendezvous hashing."""
        with self._lock:
            if worker_id not in self._workers:
                raise KeyError(
                    f"cannot pin {corpus!r} to unknown worker {worker_id!r}; "
                    f"known: {self._workers}"
                )
            self.register_corpus(corpus)
            self._pins[corpus] = worker_id

    def unpin(self, corpus: str) -> None:
        """Remove a pin; the corpus re-homes by hashing (idempotent)."""
        with self._lock:
            self._pins.pop(corpus, None)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def workers(self) -> List[str]:
        """Registered worker ids, sorted."""
        with self._lock:
            return list(self._workers)

    def corpora(self) -> List[str]:
        """Registered corpus names, sorted."""
        with self._lock:
            return list(self._corpora)

    def __contains__(self, corpus: str) -> bool:
        with self._lock:
            return corpus in self._corpora

    def owner_of(self, corpus: str) -> str:
        """The worker id serving ``corpus``.

        Raises ``KeyError`` for an unregistered corpus and
        ``RuntimeError`` when the table has no workers at all.
        """
        with self._lock:
            if corpus not in self._corpora:
                raise KeyError(f"corpus {corpus!r} is not placed")
            if not self._workers:
                raise RuntimeError("placement table has no workers")
            pinned = self._pins.get(corpus)
            if pinned is not None and pinned in self._workers:
                return pinned
            return max(
                self._workers,
                key=lambda worker_id: (_rendezvous_score(worker_id, corpus), worker_id),
            )

    def assignments(self) -> Dict[str, List[str]]:
        """Every worker's corpus list (workers with none map to ``[]``)."""
        with self._lock:
            table: Dict[str, List[str]] = {worker_id: [] for worker_id in self._workers}
            for corpus in self._corpora:
                table[self.owner_of(corpus)].append(corpus)
            return table

    def to_payload(
        self, worker_urls: Optional[Mapping[str, Optional[str]]] = None
    ) -> Dict[str, object]:
        """The ``GET /placement`` wire body."""
        with self._lock:
            corpora = {corpus: self.owner_of(corpus) for corpus in self._corpora}
            workers: Dict[str, Optional[str]] = {
                worker_id: (worker_urls or {}).get(worker_id)
                for worker_id in self._workers
            }
            return {
                "workers": workers,
                "corpora": corpora,
                "pins": dict(self._pins),
            }


class _RouterHandler(BaseHTTPRequestHandler):
    """Forward one request to the owning worker (or answer router routes)."""

    router: "TagDMRouter" = None  # type: ignore[assignment]
    protocol_version = "HTTP/1.1"
    # Same keep-alive Nagle/delayed-ACK trap as the worker front-end.
    disable_nagle_algorithm = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep request logging off the forwarding hot path

    # ------------------------------------------------------------------
    # Plumbing (mirrors repro.serving.http._Handler)
    # ------------------------------------------------------------------
    def _write_json(self, status: int, payload: Mapping[str, object]) -> None:
        self._write_raw(status, "application/json", json.dumps(payload).encode("utf-8"))

    def _write_raw(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            return b""
        if length > MAX_BODY_BYTES:
            self.close_connection = True
            # Same class and message as the worker front-end's own
            # oversized-body answer, so routed and direct requests see
            # an identical 422 payload.
            raise SpecValidationError(
                f"request body of {length} bytes exceeds the {MAX_BODY_BYTES} limit"
            )
        return self.rfile.read(length)

    def _dispatch(self, method: str) -> None:
        try:
            status, content_type, body = self._route(method)
        except ApiError as error:
            status, content_type = error.status, "application/json"
            body = json.dumps(error.to_payload()).encode("utf-8")
        except Exception as exc:  # a router bug must answer 500, not drop the socket
            error = ApiError(f"{type(exc).__name__}: {exc}")
            status, content_type = error.status, "application/json"
            body = json.dumps(error.to_payload()).encode("utf-8")
        self._write_raw(status, content_type, body)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(self, method: str) -> Tuple[int, str, bytes]:
        path, _, query = self.path.partition("?")
        body = self._read_body()
        if method == "GET" and path == "/healthz":
            return 200, "application/json", self.router._health_body()
        if method == "GET" and path == "/corpora":
            payload = {"corpora": self.router.placement.corpora()}
            return 200, "application/json", json.dumps(payload).encode("utf-8")
        if method == "GET" and path == "/placement":
            return 200, "application/json", self.router._placement_body()
        match = _CORPUS_ROUTE.fullmatch(path)
        if match:
            corpus = urllib.parse.unquote(match.group("name"))
            return self.router.forward(method, corpus, self.path, body)
        raise UnknownRouteError(
            f"no route for {method} {path}",
            details={
                "routes": [
                    "GET /healthz",
                    "GET /corpora",
                    "GET /placement",
                    "GET /corpora/<name>/stats",
                    "POST /corpora/<name>/insert",
                    "POST /corpora/<name>/solve",
                ]
            },
        )

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("POST")


class TagDMRouter:
    """Route fleet traffic to the worker that owns each corpus.

    Parameters
    ----------
    placement:
        The (shared, thread-safe) :class:`PlacementTable`.  The fleet
        supervisor registers workers/corpora on it; the router only
        reads.
    resolve_worker:
        ``worker_id -> base url`` resolver -- a callable or a plain
        mapping.  Returning ``None`` means "worker currently down";
        the router keeps re-resolving while it retries, which is how a
        respawned worker's new port is picked up mid-request.
    host / port:
        Bind address (``port=0`` picks a free port; read :attr:`url`).
    retry_deadline:
        How long a forward keeps retrying an unreachable owner before
        answering 503 (seconds).  Must cover a worker respawn:
        process start + warm-start from snapshot.
    retry_interval:
        Sleep between forward attempts (seconds).
    request_timeout:
        Socket timeout for one forwarded attempt (seconds); a worker
        that is *reachable but slow* past this answers 504, it is not
        retried (re-running a slow solve would only pile on load).

    Lifecycle and threading match
    :class:`~repro.serving.http.TagDMHttpServer`: ``start()`` serves on
    a daemon thread, ``stop()`` is idempotent, the object is a context
    manager, and every inbound request is handled (and forwarded) on
    its own thread.
    """

    def __init__(
        self,
        placement: PlacementTable,
        resolve_worker: Union[Callable[[str], Optional[str]], Mapping[str, str]],
        host: str = "127.0.0.1",
        port: int = 0,
        retry_deadline: float = 30.0,
        retry_interval: float = 0.05,
        request_timeout: float = 120.0,
    ) -> None:
        self.placement = placement
        if callable(resolve_worker):
            self._resolve = resolve_worker
        else:
            mapping = dict(resolve_worker)
            self._resolve = mapping.get
        self.retry_deadline = retry_deadline
        self.retry_interval = retry_interval
        self.request_timeout = request_timeout
        self._pools: Dict[str, HttpConnectionPool] = {}
        self._pools_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._forwarded = 0
        self._retries = 0
        self._unavailable = 0
        handler = type("BoundRouterHandler", (_RouterHandler,), {"router": self})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (port resolved when 0 was asked)."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        host, port = self.address
        return f"http://{host}:{port}"

    @property
    def is_running(self) -> bool:
        """Whether the accept loop is live."""
        return self._thread is not None and self._thread.is_alive()

    def stats(self) -> Dict[str, int]:
        """Forwarding counters (requests, stale retries, 503 give-ups)."""
        with self._stats_lock:
            return {
                "requests_forwarded": self._forwarded,
                "forward_retries": self._retries,
                "workers_unavailable": self._unavailable,
            }

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def _pool_for(self, base_url: str) -> HttpConnectionPool:
        with self._pools_lock:
            pool = self._pools.get(base_url)
            if pool is None:
                pool = HttpConnectionPool(
                    base_url, request_timeout=self.request_timeout
                )
                self._pools[base_url] = pool
            return pool

    def _owner_of(self, corpus: str) -> str:
        try:
            return self.placement.owner_of(corpus)
        except KeyError:
            # Bit-identical to the single-process unknown-corpus answer
            # (message and details from repro.api.service._shard).
            raise UnknownCorpusError(
                f"corpus {corpus!r} is not being served",
                details={"corpus": corpus, "known": self.placement.corpora()},
            ) from None
        except RuntimeError as exc:
            raise WorkerUnavailableError(
                str(exc), details={"corpus": corpus}
            ) from None

    def forward(
        self, method: str, corpus: str, path_with_query: str, body: bytes
    ) -> Tuple[int, str, bytes]:
        """Relay one request to the corpus owner; retry while it is down.

        Returns ``(status, content type, body bytes)`` exactly as the
        worker answered.  Retries happen only for *transport* failures
        (connect refused/reset, worker mid-restart) -- never after a
        response arrived, and never for per-attempt socket timeouts
        (those answer 504).  An insert forwarded to a worker that dies
        mid-request may therefore be applied at most twice only if the
        worker died *after* applying but before answering; see
        ``DEPLOYMENT.md`` for the at-least-once insert caveat.
        """
        headers = {"Content-Type": "application/json"} if body else {}
        deadline = time.monotonic() + self.retry_deadline
        attempt = 0
        while True:
            worker_id = self._owner_of(corpus)
            base_url = self._resolve(worker_id)
            if base_url is not None:
                attempt += 1
                try:
                    status, response_headers, data = self._pool_for(base_url).request(
                        method, path_with_query, body=body or None, headers=headers
                    )
                except (socket_timeout, TimeoutError) as exc:
                    raise SolveTimeoutError(
                        f"worker {worker_id!r} did not answer {method} "
                        f"{path_with_query} within {self.request_timeout:g}s",
                        details={
                            "corpus": corpus,
                            "worker": worker_id,
                            "timeout_seconds": self.request_timeout,
                        },
                    ) from exc
                except (OSError, HTTPException):
                    pass  # worker down or dying; fall through to retry
                else:
                    with self._stats_lock:
                        self._forwarded += 1
                        self._retries += attempt - 1
                    content_type = response_headers.get("content-type", "application/json")
                    return status, content_type, data
            if time.monotonic() >= deadline:
                with self._stats_lock:
                    self._unavailable += 1
                raise WorkerUnavailableError(
                    f"worker {worker_id!r} for corpus {corpus!r} stayed "
                    f"unreachable for {self.retry_deadline:g}s",
                    details={"corpus": corpus, "worker": worker_id},
                )
            time.sleep(self.retry_interval)

    # ------------------------------------------------------------------
    # Router-local routes
    # ------------------------------------------------------------------
    def _placement_body(self) -> bytes:
        urls = {worker_id: self._resolve(worker_id) for worker_id in self.placement.workers()}
        return json.dumps(self.placement.to_payload(urls)).encode("utf-8")

    def _health_body(self) -> bytes:
        """Aggregate worker ``/healthz`` bodies under the router's own.

        Uses one non-retried probe per worker so a dead worker makes the
        probe report it (``reachable: false``) instead of hanging the
        health endpoint through a retry window.
        """
        workers: Dict[str, Dict[str, object]] = {}
        totals = {"inserts_served": 0, "solves_served": 0, "snapshots_written": 0}
        status = "ok"
        for worker_id in self.placement.workers():
            base_url = self._resolve(worker_id)
            entry: Dict[str, object] = {"url": base_url, "reachable": False}
            if base_url is not None:
                try:
                    code, _headers, data = self._pool_for(base_url).request(
                        "GET", "/healthz", timeout=min(5.0, self.request_timeout)
                    )
                    payload = json.loads(data.decode("utf-8"))
                    if code == 200 and isinstance(payload, dict):
                        entry["reachable"] = True
                        entry["health"] = payload
                        for key in totals:
                            totals[key] += int(payload.get(key, 0))
                except (OSError, HTTPException, ValueError):
                    pass
            if not entry["reachable"]:
                status = "degraded"
            workers[worker_id] = entry
        body: Dict[str, object] = {
            "status": status,
            "role": "router",
            "corpora": self.placement.corpora(),
            "workers": workers,
            "router": self.stats(),
        }
        body.update(totals)
        return json.dumps(body).encode("utf-8")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "TagDMRouter":
        """Start the accept loop on a daemon thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name=f"tagdm-router-{self.address[1]}",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, close worker pools, release the socket.

        Idempotent; blocks until the accept loop exits (in-flight
        handler threads finish their current response).
        """
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join()
            self._thread = None
        self._httpd.server_close()
        with self._pools_lock:
            pools, self._pools = list(self._pools.values()), {}
        for pool in pools:
            pool.close()

    def __enter__(self) -> "TagDMRouter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
