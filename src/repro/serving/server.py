"""A long-lived TagDM serving process over warm sessions.

:class:`TagDMServer` is the ROADMAP's "long-lived server loop": a
process-local registry of :class:`~repro.serving.shards.CorpusShard`
instances keyed by corpus name.  Each shard owns one warm
:class:`~repro.core.incremental.IncrementalTagDM` session backed by its
own :class:`~repro.dataset.sqlite_store.SqliteTaggingStore` and its own
snapshot directory, so corpora are fully isolated: separate database
files, separate snapshot rotation, separate writer threads.

Layout under the server root (one subdirectory per corpus)::

    <root>/
      <corpus-name>/
        corpus.sqlite               -- the durable dataset store
        snapshots/
          session-00000042.snapshot -- rotated warm-start snapshots

Lifecycle: :meth:`add_corpus` ingests a dataset and cold-prepares its
session; :meth:`open_corpus` restarts an existing shard, warm-starting
from the newest rotation snapshot whose fingerprint matches the store
(falling back to a cold prepare when none does).  Inserts and solves
route to the named shard; :meth:`close` drains every shard's queue,
takes final snapshots and closes the stores.

Failure semantics are documented in ``SERVING.md``: an insert that
raises (unknown user without attributes, store failure) fails only its
own request future; a failed snapshot rotation is recorded in the shard
stats and retried at the next due point; the server survives both.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Union

from repro.core.enumeration import GroupEnumerationConfig
from repro.core.incremental import IncrementalTagDM, IncrementalUpdateReport
from repro.core.persistence import read_snapshot, session_from_snapshot
from repro.core.problem import TagDMProblem
from repro.core.result import MiningResult
from repro.core.witness import locked_by, named_lock
from repro.dataset.sqlite_store import SqliteTaggingStore
from repro.dataset.store import TaggingDataset
from repro.serving.policy import MergePolicy, SnapshotRotationPolicy, SnapshotRotator
from repro.serving.reliability import AdmissionPolicy, FaultPlan
from repro.serving.shards import CorpusShard
from repro.serving.subscriptions import SubscriptionEvaluator

__all__ = ["TagDMServer"]

_STORE_FILENAME = "corpus.sqlite"
_SNAPSHOT_DIRNAME = "snapshots"


class TagDMServer:
    """Serve inserts and solves over a registry of warm corpus shards.

    Thread-safety: all methods may be called from any thread.  Registry
    mutations (:meth:`add_corpus` / :meth:`open_corpus` / :meth:`close`)
    serialise behind one lock and block for their full ingest /
    warm-start / drain; request routing (:meth:`insert`,
    :meth:`insert_batch`, :meth:`solve`, :meth:`stats`) is lock-free at
    the registry and inherits the per-shard semantics -- solves run
    concurrently against the shard's pinned main view without taking
    any lock, inserts block until the shard's writer thread has applied
    (and durably mirrored) the batch and, under the default merge
    policy, folded it into a freshly published view.

    Parameters
    ----------
    root:
        Directory holding one subdirectory per corpus (created on
        demand).
    policy:
        Snapshot-rotation policy applied to every shard (each shard gets
        its own rotator over its own snapshot directory).
    enumeration, signature_backend, signature_dimensions, seed:
        Session configuration used when a shard cold-prepares; a
        warm-started shard takes its configuration from the snapshot.
    admission:
        Optional :class:`~repro.serving.reliability.AdmissionPolicy`
        applied to every shard (queue-depth / in-flight-solve load
        shedding with typed 429s).
    merge_policy:
        :class:`~repro.serving.policy.MergePolicy` applied to every
        shard, governing how far a published main view may trail the
        insert delta.  The default folds after every writer batch
        before the batch acknowledges (read-your-writes).
    fault_plan:
        Optional :class:`~repro.serving.reliability.FaultPlan` threaded
        into every shard and rotator (chaos-testing hooks; inert in
        production).
    """

    def __init__(
        self,
        root: Union[str, Path],
        policy: Optional[SnapshotRotationPolicy] = None,
        enumeration: Optional[GroupEnumerationConfig] = None,
        signature_backend: str = "frequency",
        signature_dimensions: int = 25,
        seed: int = 0,
        admission: Optional[AdmissionPolicy] = None,
        merge_policy: Optional[MergePolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.policy = policy or SnapshotRotationPolicy()
        self.enumeration = enumeration
        self.signature_backend = signature_backend
        self.signature_dimensions = signature_dimensions
        self.seed = seed
        self.admission = admission
        self.merge_policy = merge_policy
        self.fault_plan = fault_plan
        self._shards: Dict[str, CorpusShard] = {}
        self._stores: Dict[str, SqliteTaggingStore] = {}
        self._evaluators: Dict[str, SubscriptionEvaluator] = {}
        self._registry_lock = named_lock("server.registry")
        self._closed = False

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def _corpus_dir(self, name: str) -> Path:
        if not re.fullmatch(r"[A-Za-z0-9._-]+", name):
            raise ValueError(
                f"corpus name {name!r} must be filesystem-safe "
                "(letters, digits, dot, underscore, dash)"
            )
        return self.root / name

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("server is closed")

    @locked_by("server.registry")
    def _register(
        self,
        name: str,
        shard: CorpusShard,
        store: SqliteTaggingStore,
        evaluator: SubscriptionEvaluator,
    ) -> None:
        self._shards[name] = shard
        self._stores[name] = store
        self._evaluators[name] = evaluator
        # Bootstrap replay: re-notify the freshly published view so any
        # subscription whose ledger trails the store (a crash between
        # evaluation and its diff commit) is re-evaluated now, not at
        # the next fold.  Already-covered watermarks are suppressed by
        # the ledger, so this is free when nothing was lost.
        evaluator.notify_publish(shard.current_view())

    def _rotator_for(self, name: str) -> SnapshotRotator:
        return SnapshotRotator(
            self._corpus_dir(name) / _SNAPSHOT_DIRNAME,
            policy=self.policy,
            fault_plan=self.fault_plan,
        )

    def add_corpus(self, name: str, dataset: TaggingDataset) -> CorpusShard:
        """Ingest ``dataset`` into a new shard and cold-prepare its session.

        The corpus directory must not already hold a store (reopen those
        with :meth:`open_corpus` instead -- silently re-ingesting would
        duplicate every action).
        """
        with self._registry_lock:
            self._require_open()
            if name in self._shards:
                raise ValueError(f"corpus {name!r} is already being served")
            corpus_dir = self._corpus_dir(name)
            store_path = corpus_dir / _STORE_FILENAME
            if store_path.exists():
                raise ValueError(
                    f"corpus {name!r} already has a store at {store_path}; "
                    "use open_corpus() to resume serving it"
                )
            corpus_dir.mkdir(parents=True, exist_ok=True)
            store = SqliteTaggingStore.from_dataset(dataset, store_path)
            try:
                session = IncrementalTagDM(
                    dataset,
                    enumeration=self.enumeration,
                    signature_backend=self.signature_backend,
                    signature_dimensions=self.signature_dimensions,
                    seed=self.seed,
                    store=store,
                ).prepare()
                rotator = self._rotator_for(name)
                rotator.rotate(session.session)  # a restart can warm-start at once
                evaluator = SubscriptionEvaluator(
                    name, store, fault_plan=self.fault_plan
                )
                shard = CorpusShard(
                    name,
                    session,
                    rotator=rotator,
                    admission=self.admission,
                    merge_policy=self.merge_policy,
                    fault_plan=self.fault_plan,
                    evaluator=evaluator,
                )
            except BaseException:
                store.close()
                raise
            self._register(name, shard, store, evaluator)
            return shard

    def open_corpus(self, name: str) -> CorpusShard:
        """Resume serving an existing corpus directory.

        Reloads the dataset from the shard's SQLite store and warm-starts
        the session from the newest rotation snapshot.  A snapshot whose
        fingerprint matches the store loads directly; a snapshot that
        *lags* the store (the process died between store writes and the
        next rotation) is loaded against the matching dataset prefix and
        the store's action tail is replayed into the warm session, so
        only the lagged inserts pay incremental maintenance instead of
        the whole corpus paying a cold prepare.  Snapshots that fail both
        paths (version bumps, fingerprint drift, torn files from
        pre-atomic writers) are skipped newest-first, and a cold prepare
        is the final fallback.
        """
        with self._registry_lock:
            self._require_open()
            if name in self._shards:
                raise ValueError(f"corpus {name!r} is already being served")
            store_path = self._corpus_dir(name) / _STORE_FILENAME
            if not store_path.exists():
                raise FileNotFoundError(
                    f"corpus {name!r} has no store at {store_path}; "
                    "create it with add_corpus()"
                )
            store = SqliteTaggingStore(store_path)
            try:
                dataset = store.to_dataset()
                rotator = self._rotator_for(name)
                session, start_mode, replayed = self._warm_or_cold_session(
                    dataset, store, rotator
                )
                evaluator = SubscriptionEvaluator(
                    name, store, fault_plan=self.fault_plan
                )
                shard = CorpusShard(
                    name,
                    session,
                    rotator=rotator,
                    start_mode=start_mode,
                    replayed_actions=replayed,
                    admission=self.admission,
                    merge_policy=self.merge_policy,
                    fault_plan=self.fault_plan,
                    evaluator=evaluator,
                )
            except BaseException:
                store.close()
                raise
            self._register(name, shard, store, evaluator)
            return shard

    def _warm_or_cold_session(
        self,
        dataset: TaggingDataset,
        store: SqliteTaggingStore,
        rotator: SnapshotRotator,
    ):
        """Warm-start (direct or tail-replay) or cold-prepare a session.

        Returns ``(session, start_mode, replayed_actions)``.
        """
        for snapshot in reversed(rotator.snapshot_paths()):
            restored = self._restore_snapshot(snapshot, dataset, store)
            if restored is not None:
                return restored
        session = IncrementalTagDM(
            dataset,
            enumeration=self.enumeration,
            signature_backend=self.signature_backend,
            signature_dimensions=self.signature_dimensions,
            seed=self.seed,
            store=store,
        ).prepare()
        return session, "cold", 0

    def _restore_snapshot(
        self,
        snapshot: Path,
        dataset: TaggingDataset,
        store: SqliteTaggingStore,
    ):
        """Try to warm-start from one snapshot, or ``None`` when unusable.

        When the snapshot's fingerprint says it was taken ``lag`` actions
        before the store's current tail, the snapshot is loaded against
        the dataset *prefix* it was prepared over (same first-sight
        registration order, so the first ``n_users``/``n_items``
        registrations reconstruct the historical registries) and the tail
        is replayed through the incremental session -- without the store
        attached, because the store already holds those actions and
        mirroring the replay would duplicate them.  Any failure (order
        drift, fingerprint mismatch, version bump, torn file) makes this
        snapshot unusable rather than fatal.
        """
        try:
            payload = read_snapshot(snapshot)  # one deserialisation per snapshot
            fingerprint = payload["dataset_fingerprint"]
            lag = dataset.n_actions - int(fingerprint["n_actions"])
            if lag < 0:
                return None  # snapshot is ahead of the store: unusable
            if lag == 0:
                warm = session_from_snapshot(payload, dataset, source=str(snapshot))
                session = IncrementalTagDM.from_session(warm, store=store).prepare()
                return session, "warm", 0
            prefix = dataset.prefix(
                int(fingerprint["n_actions"]),
                n_users=int(fingerprint["n_users"]),
                n_items=int(fingerprint["n_items"]),
            )
            warm = session_from_snapshot(payload, prefix, source=str(snapshot))
            session = IncrementalTagDM.from_session(warm, store=None).prepare()
            self._replay_tail(session, dataset, store, prefix.n_actions)
            session.store = store
            return session, "warm-replay", lag
        except Exception:
            return None

    @staticmethod
    def _replay_tail(
        session: IncrementalTagDM,
        dataset: TaggingDataset,
        store: SqliteTaggingStore,
        start_row: int,
    ) -> None:
        """Replay the store's action tail into the warm session.

        The tail rows come straight from the store's SQL pushdown
        (:meth:`~repro.dataset.sqlite_store.SqliteTaggingStore.tail_actions`,
        tag grouping inside SQLite) instead of re-walking the
        materialised dataset in Python.  Attributes ride along on a
        user/item's first appearance in the tail (the session's prefix
        dataset has never seen them); they are read from the full
        dataset's registries, which the store already persisted.
        """
        # analyze: writer-context -- startup-only replay; the shard (and
        # its writer thread) does not exist yet, so this thread is the
        # session's only mutator.
        actions = []
        for row in store.tail_actions(start_row):
            user_id = str(row["user_id"])
            item_id = str(row["item_id"])
            actions.append(
                {
                    "user_id": user_id,
                    "item_id": item_id,
                    "tags": row["tags"],
                    "rating": row["rating"],
                    "user_attributes": dataset.user_attributes(user_id),
                    "item_attributes": dataset.item_attributes(item_id),
                }
            )
        if actions:
            session.add_actions(actions)

    def shard(self, name: str) -> CorpusShard:
        """The live shard serving ``name`` (raises KeyError when absent)."""
        try:
            return self._shards[name]
        except KeyError:
            raise KeyError(
                f"corpus {name!r} is not being served; "
                f"known: {sorted(self._shards) or 'none'}"
            ) from None

    @property
    def corpus_names(self) -> List[str]:
        """Names of the corpora currently being served."""
        return sorted(self._shards)

    def __contains__(self, name: str) -> bool:
        return name in self._shards

    # ------------------------------------------------------------------
    # Request routing
    # ------------------------------------------------------------------
    def insert(
        self,
        corpus: str,
        user_id: str,
        item_id: str,
        tags: Iterable[str],
        rating: Optional[float] = None,
        user_attributes: Optional[Mapping[str, str]] = None,
        item_attributes: Optional[Mapping[str, str]] = None,
    ) -> IncrementalUpdateReport:
        """Insert one action into the named corpus (waits until applied)."""
        return self.shard(corpus).insert(
            user_id,
            item_id,
            tags,
            rating=rating,
            user_attributes=user_attributes,
            item_attributes=item_attributes,
        )

    def insert_batch(
        self,
        corpus: str,
        actions: Iterable[Mapping[str, object]],
        request_id: Optional[str] = None,
    ) -> IncrementalUpdateReport:
        """Insert a batch into the named corpus (waits until applied).

        ``request_id`` is the batch's idempotency key; a key the corpus
        store has already recorded returns the original report
        (``deduplicated=True``) without re-applying the batch.
        """
        return self.shard(corpus).insert_batch(actions, request_id=request_id)

    def solve(
        self, corpus: str, problem: TagDMProblem, algorithm="auto", **options
    ) -> MiningResult:
        """Solve ``problem`` over the named corpus's warm session."""
        return self.shard(corpus).solve(problem, algorithm=algorithm, **options)

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Dict[str, object]]:
        """Per-shard serving counters, keyed by corpus name."""
        return {name: shard.stats() for name, shard in sorted(self._shards.items())}

    def close(self) -> None:
        """Drain every shard, take final snapshots, close every store.

        Idempotent; the server cannot be reused afterwards (start a new
        one over the same root -- shards warm-start from the final
        snapshots).
        """
        with self._registry_lock:
            if self._closed:
                return
            self._closed = True
            for shard in self._shards.values():
                shard.close(final_snapshot=True)
            # Evaluators stop after their shard (no more folds can
            # notify them) and before the stores they write to close.
            for evaluator in self._evaluators.values():
                evaluator.close()
            for store in self._stores.values():
                store.close()
            self._shards.clear()
            self._stores.clear()
            self._evaluators.clear()

    def __enter__(self) -> "TagDMServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
