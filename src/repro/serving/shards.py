"""One warm serving shard: a corpus, its session, and its writer thread.

A :class:`CorpusShard` owns exactly one warm
:class:`~repro.core.incremental.IncrementalTagDM` session (optionally
mirrored into a :class:`~repro.dataset.sqlite_store.SqliteTaggingStore`)
and serves it with an HTAP-style **delta + main** split:

* **inserts** go through a thread-safe request queue drained by one
  dedicated writer thread per shard.  The writer coalesces whatever is
  queued into one exclusive hold of the merge lock, applies each request
  with the batch insert API (one cache invalidation per request, not per
  action) -- this is the *delta*: immediately visible to subsequent
  updates, durable in the store, but not yet served to solves;
* a **fold** freezes the session into an immutable
  :class:`~repro.core.incremental.SessionView` (the *main*) and
  publishes it under a new epoch.  The shard's
  :class:`~repro.serving.policy.MergePolicy` decides when: by default
  after every writer batch (before the batch's futures resolve, so an
  acknowledged insert is visible to the very next solve), optionally on
  a time trigger served by a background merge thread;
* **solves** run on the calling threads against a *pinned* published
  view (epoch + refcount) and take **no lock at all**: a solve can never
  stall behind the writer, and a long solve can never stall the ingest
  path -- it just keeps its pinned epoch alive while newer views are
  published around it.

The :class:`ReadWriteLock` survives only on the merge path: the writer
applies batches under its exclusive side and folds/snapshots read the
session under its shared side.  It is *fair* (arrival-ordered), so a
fold can never be starved by a saturated insert queue -- the hazard the
old writer-preferring lock had.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from contextlib import contextmanager
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.api.errors import OverloadedError
from repro.core.incremental import (
    IncrementalTagDM,
    IncrementalUpdateReport,
    SessionView,
)
from repro.core.witness import get_witness, named_lock, named_rlock, witness_enabled
from repro.core.problem import TagDMProblem
from repro.core.result import MiningResult
from repro.serving.policy import MergePolicy, SnapshotRotator
from repro.serving.reliability import AdmissionPolicy, FaultPlan

__all__ = ["CorpusShard", "ReadWriteLock"]


class ReadWriteLock:
    """A fair (arrival-ordered) readers/writer lock.

    Many readers may hold the lock at once; a writer holds it alone.
    Waiters are admitted in arrival order: a reader arriving after a
    waiting writer lets that writer go first, but writers that keep
    arriving queue up *behind* an already-waiting reader, so its wait is
    bounded by the writers ahead of it at arrival time.  (The
    writer-preferring variant this replaces blocked readers while *any*
    writer was waiting, which starved readers indefinitely whenever the
    writer stream stayed saturated.)

    ``name`` is the lock's handle in the runtime lock-order witness
    (:mod:`repro.core.witness`); both the shared and the exclusive side
    report under it when ``TAGDM_LOCK_WITNESS`` is set.
    """

    def __init__(self, name: Optional[str] = None) -> None:
        self._condition = threading.Condition()
        self._next_ticket = 0
        self._readers = 0
        self._writer_active = False
        # Tickets of waiting writers; appended in arrival order, so the
        # list is always sorted and index 0 is the oldest waiter.
        self._waiting_writers: List[int] = []
        self._witness = get_witness() if (name and witness_enabled()) else None
        self.name = name

    @contextmanager
    def read_locked(self):
        with self._condition:
            ticket = self._next_ticket
            self._next_ticket += 1
            while self._writer_active or (
                self._waiting_writers and self._waiting_writers[0] < ticket
            ):
                self._condition.wait()
            self._readers += 1
        if self._witness is not None:
            self._witness.note_acquire(self.name)
        try:
            yield
        finally:
            if self._witness is not None:
                self._witness.note_release(self.name)
            with self._condition:
                self._readers -= 1
                if self._readers == 0:
                    self._condition.notify_all()

    @contextmanager
    def write_locked(self):
        with self._condition:
            ticket = self._next_ticket
            self._next_ticket += 1
            self._waiting_writers.append(ticket)
            try:
                while (
                    self._writer_active
                    or self._readers
                    or self._waiting_writers[0] != ticket
                ):
                    self._condition.wait()
            finally:
                self._waiting_writers.remove(ticket)
            self._writer_active = True
        if self._witness is not None:
            self._witness.note_acquire(self.name)
        try:
            yield
        finally:
            if self._witness is not None:
                self._witness.note_release(self.name)
            with self._condition:
                self._writer_active = False
                self._condition.notify_all()


class _InsertRequest:
    """One queued insert batch and the future its caller waits on."""

    __slots__ = ("actions", "request_id", "future")

    def __init__(
        self,
        actions: List[Mapping[str, object]],
        request_id: Optional[str] = None,
    ) -> None:
        self.actions = actions
        self.request_id = request_id
        self.future: "Future[IncrementalUpdateReport]" = Future()


_SHUTDOWN = object()


class CorpusShard:
    """A warm session for one corpus, served delta+main.

    Parameters
    ----------
    name:
        The corpus name this shard serves (the registry key in
        :class:`~repro.serving.server.TagDMServer`).
    session:
        A prepared :class:`IncrementalTagDM`.  If it carries a ``store``,
        every insert is mirrored durably in the same call.
    rotator:
        Optional :class:`SnapshotRotator`; when given, the shard
        snapshots the session per the rotator's policy and after a clean
        :meth:`close`.
    queue_capacity:
        Bound on queued insert requests; submitters block once full
        (simple back-pressure instead of unbounded memory growth).
    start_mode:
        How the session came up -- ``"cold"`` (full prepare), ``"warm"``
        (snapshot restore) or ``"warm-replay"`` (snapshot restore plus a
        store-tail replay); recorded for :meth:`stats`.
    replayed_actions:
        How many store-tail actions were replayed into the warm session
        at startup (non-zero only for ``"warm-replay"``).
    admission:
        Optional :class:`~repro.serving.reliability.AdmissionPolicy`;
        when given, inserts are shed with a typed 429
        (:class:`~repro.api.errors.OverloadedError`) once the writer
        queue reaches ``max_queue_depth``, and solves once
        ``max_inflight_solves`` are already running.
    merge_policy:
        :class:`~repro.serving.policy.MergePolicy` governing how far the
        published main view may trail the delta.  The default folds
        after every writer batch before its futures resolve
        (read-your-writes, matching the pre-HTAP contract).
    fault_plan:
        Optional :class:`~repro.serving.reliability.FaultPlan` for the
        chaos harness; exposes the ``shard.apply`` (writer thread, just
        before a batch is applied), ``shard.solve`` (solver thread, on
        the pinned view, no lock held), ``merge.pre_fold`` (before a
        fold freezes the session) and ``merge.post_fold`` (after the new
        view is published, before waiters resume) injection points.
    evaluator:
        Optional :class:`~repro.serving.subscriptions.SubscriptionEvaluator`
        notified with every view the fold path publishes; its counters
        surface in :meth:`stats` under the ``subs_*`` keys.  The server
        owns its lifecycle.
    """

    def __init__(
        self,
        name: str,
        session: IncrementalTagDM,
        rotator: Optional[SnapshotRotator] = None,
        queue_capacity: int = 1024,
        start_mode: str = "cold",
        replayed_actions: int = 0,
        admission: Optional[AdmissionPolicy] = None,
        merge_policy: Optional[MergePolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        evaluator=None,
    ) -> None:
        if not session.session.is_prepared:
            raise ValueError("shard sessions must be prepared before serving")
        if start_mode not in ("cold", "warm", "warm-replay"):
            raise ValueError(
                f"start_mode must be cold/warm/warm-replay, got {start_mode!r}"
            )
        self.name = name
        self.session = session
        self.rotator = rotator
        self.admission = admission
        self.merge_policy = merge_policy or MergePolicy()
        self.fault_plan = fault_plan
        # Optional SubscriptionEvaluator: notified with every published
        # view from the fold path, surfaced in stats(); the server owns
        # its lifecycle (the shard never closes it).
        self.evaluator = evaluator
        self.start_mode = start_mode
        self.replayed_actions = int(replayed_actions)
        # Merge-path coordination only: the writer applies batches under
        # the exclusive side; folds and snapshots read the session under
        # the shared side.  Solves never touch this lock.
        self._lock = ReadWriteLock(name="shard.merge")
        # Serialises fold/rotate maintenance between the writer thread
        # and the background merge thread.
        self._maintenance_lock = named_rlock("shard.maintenance")
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=queue_capacity)
        self._closed = threading.Event()
        # Makes the closed-check + enqueue in submit_insert atomic with
        # respect to close(), so no request can slip into a queue the
        # writer has already left.
        self._submit_lock = named_lock("shard.submit")
        # Guards every mutable serving counter, the delta-age clock,
        # the published view and its pins; stats() snapshots them all
        # under one hold so /healthz never reports torn values mid-merge
        # (e.g. a bumped merge_count with the previous epoch).
        self._stats_lock = named_lock("shard.stats")
        self._inserts_served = 0
        self._solves_served = 0
        self._inflight_solves = 0
        self._inserts_shed = 0
        self._solves_shed = 0
        self._dedup_hits = 0
        self._merge_count = 0
        self._merge_failures = 0
        self._first_delta_at: Optional[float] = None
        self._last_rotation_error: Optional[str] = None
        self._last_merge_error: Optional[str] = None
        # The published main view and its pins (epoch -> active solves),
        # guarded by _stats_lock like every other mutable serving field.
        self._view: SessionView = session.freeze(epoch=1)
        self._next_epoch = 2
        self._pins: Dict[int, int] = {}
        if rotator is not None:
            session.add_mutation_listener(
                lambda report: rotator.record_inserts(report.actions_added)
            )
        self._writer = threading.Thread(
            target=self._writer_loop, name=f"tagdm-shard-{name}", daemon=True
        )
        self._writer.start()
        self._merge_stop = threading.Event()
        self._merge_wakeup = threading.Event()
        self._merger = threading.Thread(
            target=self._merge_loop, name=f"tagdm-merge-{name}", daemon=True
        )
        self._merger.start()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit_insert(
        self,
        actions: Iterable[Mapping[str, object]],
        request_id: Optional[str] = None,
    ) -> "Future[IncrementalUpdateReport]":
        """Queue a batch of action dicts; returns a future for its report.

        The future resolves once the writer thread has applied the whole
        batch (and mirrored it into the store, when one is attached); it
        carries the batch's exception if any action was rejected.  Under
        the default merge policy the fold runs before the future
        resolves, so an acknowledged batch is visible to the next solve.

        ``request_id`` is the batch's idempotency key: a batch whose key
        the durable store has already recorded resolves to the original
        report (``deduplicated=True``) without re-applying.  When the
        shard has an admission policy and the writer queue is at its
        watermark, the batch is shed with a retryable
        :class:`~repro.api.errors.OverloadedError` instead of queued.
        """
        admission = self.admission
        if admission is not None and admission.max_queue_depth is not None:
            depth = self._queue.qsize()
            if depth >= admission.max_queue_depth:
                with self._stats_lock:
                    self._inserts_shed += 1
                raise OverloadedError(
                    f"shard {self.name!r} shed the insert: writer queue at its "
                    f"admission watermark ({depth} queued)",
                    details={"corpus": self.name, "queue_depth": depth},
                    retry_after_seconds=admission.retry_after_seconds,
                )
        request = _InsertRequest(list(actions), request_id=request_id)
        with self._submit_lock:
            if self._closed.is_set():
                raise RuntimeError(f"shard {self.name!r} is closed")
            self._queue.put(request)
        return request.future

    def insert(
        self,
        user_id: str,
        item_id: str,
        tags: Iterable[str],
        rating: Optional[float] = None,
        user_attributes: Optional[Mapping[str, str]] = None,
        item_attributes: Optional[Mapping[str, str]] = None,
    ) -> IncrementalUpdateReport:
        """Insert one action and wait for it to be applied."""
        return self.insert_batch(
            [
                {
                    "user_id": user_id,
                    "item_id": item_id,
                    "tags": tuple(tags),
                    "rating": rating,
                    "user_attributes": user_attributes,
                    "item_attributes": item_attributes,
                }
            ]
        )

    def insert_batch(
        self,
        actions: Iterable[Mapping[str, object]],
        request_id: Optional[str] = None,
    ) -> IncrementalUpdateReport:
        """Insert a batch of action dicts and wait for the merged report."""
        return self.submit_insert(actions, request_id=request_id).result()

    def solve(
        self, problem: TagDMProblem, algorithm="auto", **options
    ) -> MiningResult:
        """Solve ``problem`` against the pinned main view (no lock).

        Runs on the calling thread; concurrent solves proceed in
        parallel and are never excluded by the writer -- each solve pins
        the current published epoch for its duration and reads the
        immutable view, so it always observes a fully folded state with
        consistent caches.  With an admission policy, a solve arriving
        while ``max_inflight_solves`` are already running is shed with a
        retryable 429 before it can pile onto the session.
        """
        admission = self.admission
        with self._stats_lock:
            if (
                admission is not None
                and admission.max_inflight_solves is not None
                and self._inflight_solves >= admission.max_inflight_solves
            ):
                self._solves_shed += 1
                inflight = self._inflight_solves
                raise OverloadedError(
                    f"shard {self.name!r} shed the solve: {inflight} solve(s) "
                    "already in flight",
                    details={"corpus": self.name, "inflight_solves": inflight},
                    retry_after_seconds=admission.retry_after_seconds,
                )
            self._inflight_solves += 1
        try:
            view = self._pin_view()
            try:
                if self.fault_plan is not None:
                    self.fault_plan.fire("shard.solve", corpus=self.name)
                result = view.solve(problem, algorithm=algorithm, **options)
            finally:
                self._unpin_view(view)
        finally:
            with self._stats_lock:
                self._inflight_solves -= 1
        with self._stats_lock:
            self._solves_served += 1
        return result

    def flush(self) -> None:
        """Block until every insert queued so far is applied *and* folded.

        With a lazy merge policy this also publishes a fresh view, so a
        flush-then-solve always observes everything flushed.
        """
        self._queue.join()
        self.merge_now()

    def merge_now(self) -> int:
        """Fold the delta into a fresh main view immediately.

        Returns the epoch of the published view (the current one when
        the delta was already empty).  Raises whatever the fold raised
        (e.g. an injected :class:`~repro.serving.reliability.InjectedFault`)
        after recording it in :meth:`stats`.
        """
        with self._maintenance_lock:
            if self.delta_size > 0:
                self._fold()
            with self._stats_lock:
                return self._view.epoch

    @property
    def delta_size(self) -> int:
        """Actions applied to the session but not yet in the main view."""
        with self._stats_lock:
            view_actions = self._view.n_actions
        return max(0, self.session.dataset.n_actions - view_actions)

    # ------------------------------------------------------------------
    # View pinning
    # ------------------------------------------------------------------
    def _pin_view(self) -> SessionView:
        with self._stats_lock:
            view = self._view
            self._pins[view.epoch] = self._pins.get(view.epoch, 0) + 1
            return view

    def _unpin_view(self, view: SessionView) -> None:
        with self._stats_lock:
            remaining = self._pins.get(view.epoch, 0) - 1
            if remaining > 0:
                self._pins[view.epoch] = remaining
            else:
                self._pins.pop(view.epoch, None)

    def current_view(self) -> SessionView:
        """The currently published main view (unpinned; for inspection)."""
        with self._stats_lock:
            return self._view

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed.is_set()

    def stats(self) -> Dict[str, object]:
        """A consistent snapshot of the serving counters.

        All mutable counters are read under the same lock that guards
        their increments, and the view/pin fields under the view lock,
        so a stats call racing a merge can never observe torn values
        (e.g. a bumped ``merge_count`` with the previous epoch).

        ``snapshots_written`` / ``last_rotation_at`` track the rotation
        history of this shard's rotator (``snapshot_rotations`` is the
        same counter under its pre-PR-4 name, kept for callers of the
        older stats shape), and ``start_mode`` / ``replayed_actions``
        record how the session came up.  The delta+main fields:
        ``epoch`` (published main view), ``delta_size`` (actions applied
        but not yet folded), ``merge_count`` / ``merge_failures`` /
        ``last_merge_error`` (fold history), ``merge_lag_s`` (age of the
        oldest unfolded insert, 0 when the delta is empty) and
        ``pinned_epochs`` / ``pinned_solves`` (epochs kept alive by
        in-flight solves and how many solves hold them).
        """
        rotations = self.rotator.rotations if self.rotator is not None else 0
        # Taken before (never nested under) the stats lock; the
        # evaluator's own lock guards a consistent counter snapshot.
        subs = self.evaluator.counters() if self.evaluator is not None else {}
        with self._stats_lock:
            counters = {
                "inserts_served": self._inserts_served,
                "solves_served": self._solves_served,
                "inflight_solves": self._inflight_solves,
                "inserts_shed": self._inserts_shed,
                "solves_shed": self._solves_shed,
                "dedup_hits": self._dedup_hits,
                "merge_count": self._merge_count,
                "merge_failures": self._merge_failures,
                "last_merge_error": self._last_merge_error,
                "last_rotation_error": self._last_rotation_error,
            }
            first_delta_at = self._first_delta_at
            view = self._view
            pinned = {str(epoch): count for epoch, count in sorted(self._pins.items())}
        delta_size = max(0, self.session.dataset.n_actions - view.n_actions)
        merge_lag = 0.0
        if delta_size > 0 and first_delta_at is not None:
            merge_lag = max(0.0, time.monotonic() - first_delta_at)
        stats: Dict[str, object] = {
            "name": self.name,
            "actions": self.session.dataset.n_actions,
            "groups": view.n_groups,
            "queue_depth": self._queue.qsize(),
            "epoch": view.epoch,
            "delta_size": delta_size,
            "merge_lag_s": merge_lag,
            "pinned_epochs": pinned,
            "pinned_solves": sum(pinned.values()),
            "snapshot_rotations": rotations,
            "snapshots_written": rotations,
            "last_rotation_at": (
                self.rotator.last_rotation_at if self.rotator is not None else None
            ),
            "start_mode": self.start_mode,
            "replayed_actions": self.replayed_actions,
            "subs_active": subs.get("subs_active", 0),
            "subs_evaluations": subs.get("subs_evaluations", 0),
            "subs_notifications": subs.get("subs_notifications", 0),
            "subs_suppressed": subs.get("subs_suppressed", 0),
            "subs_backlog": subs.get("subs_backlog", 0),
            "subs_last_error": subs.get("subs_last_error"),
        }
        stats.update(counters)
        return stats

    # ------------------------------------------------------------------
    # Writer thread (the delta)
    # ------------------------------------------------------------------
    def _drain(self, first: object) -> List[object]:
        batch = [first]
        while True:
            try:
                batch.append(self._queue.get_nowait())
            except queue.Empty:
                return batch

    def _writer_loop(self) -> None:
        while True:
            item = self._queue.get()
            batch = self._drain(item)
            requests = [entry for entry in batch if isinstance(entry, _InsertRequest)]
            shutdown = any(entry is _SHUTDOWN for entry in batch)
            if requests:
                outcomes = []
                with self._lock.write_locked():
                    for request in requests:
                        try:
                            if self.fault_plan is not None:
                                self.fault_plan.fire(
                                    "shard.apply",
                                    corpus=self.name,
                                    n_actions=self.session.dataset.n_actions,
                                )
                            report = self.session.add_actions(
                                request.actions, request_id=request.request_id
                            )
                        except BaseException as exc:
                            outcomes.append((request, None, exc))
                        else:
                            with self._stats_lock:
                                if report.deduplicated:
                                    self._dedup_hits += 1
                                else:
                                    self._inserts_served += report.actions_added
                                    if (
                                        report.actions_added
                                        and self._first_delta_at is None
                                    ):
                                        self._first_delta_at = time.monotonic()
                            outcomes.append((request, report, None))
                # Fold delta -> main *before* acknowledging, so a solve
                # issued after an ack sees the batch (default policy).  A
                # failed fold must not fail the inserts -- they are
                # durably applied; the error is recorded and the next
                # fold picks the delta up.
                with self._maintenance_lock:
                    if self.merge_policy.due_on_write(self.delta_size):
                        try:
                            self._fold()
                        except BaseException:
                            pass  # recorded by _fold; serving continues
                for request, report, exc in outcomes:
                    if exc is not None:
                        request.future.set_exception(exc)
                    else:
                        request.future.set_result(report)
                with self._maintenance_lock:
                    self._maybe_rotate(force=False)
            for _ in batch:
                self._queue.task_done()
            if shutdown:
                return

    # ------------------------------------------------------------------
    # Merge path (delta -> main)
    # ------------------------------------------------------------------
    def _fold(self) -> None:
        """Freeze the session into a new main view and publish it.

        Callers hold ``_maintenance_lock``.  The freeze runs under the
        shared side of the merge lock, excluding the writer, so the view
        captures whole batches only; publication happens inside the same
        hold, so the published view's ``n_actions`` always equals the
        session's at that instant (the delta drops to zero).
        """
        try:
            if self.fault_plan is not None:
                self.fault_plan.fire(
                    "merge.pre_fold",
                    corpus=self.name,
                    n_actions=self.session.dataset.n_actions,
                )
            with self._lock.read_locked():
                view = self.session.freeze(epoch=self._next_epoch)
                with self._stats_lock:
                    self._view = view
                    self._next_epoch += 1
                    self._merge_count += 1
                    self._last_merge_error = None
                    self._first_delta_at = None
            if self.fault_plan is not None:
                self.fault_plan.fire(
                    "merge.post_fold",
                    corpus=self.name,
                    n_actions=view.n_actions,
                )
            if self.evaluator is not None:
                self.evaluator.notify_publish(view)
        except BaseException as exc:
            with self._stats_lock:
                self._merge_failures += 1
                self._last_merge_error = f"{type(exc).__name__}: {exc}"
            raise

    def _merge_loop(self) -> None:
        """Background merge thread: time-triggered folds and rotations."""
        policy = self.merge_policy
        poll = 0.25
        if policy.every_seconds is not None:
            poll = min(poll, max(policy.every_seconds / 4.0, 0.01))
        while not self._merge_stop.is_set():
            self._merge_wakeup.wait(timeout=poll)
            self._merge_wakeup.clear()
            if self._merge_stop.is_set():
                return
            with self._stats_lock:
                first_delta_at = self._first_delta_at
            age = 0.0
            if first_delta_at is not None:
                age = time.monotonic() - first_delta_at
            if policy.due_on_timer(self.delta_size, age):
                with self._maintenance_lock:
                    try:
                        self._fold()
                    except BaseException:
                        pass  # recorded by _fold; retried next tick
            if self.rotator is not None and self.rotator.due():
                with self._maintenance_lock:
                    self._maybe_rotate(force=False)

    def _maybe_rotate(self, force: bool) -> None:
        """Snapshot the session when due (or forced).

        Runs under ``_maintenance_lock``; the serialisation itself takes
        the shared side of the merge lock so the writer cannot mutate
        the session mid-pickle.  A failed snapshot must not take the
        shard down: the error is recorded for :meth:`stats` and serving
        continues; the next due rotation retries.
        """
        rotator = self.rotator
        if rotator is None:
            return
        if not force and not rotator.due():
            return
        if force and rotator.inserts_since_rotation <= 0:
            return  # the latest snapshot already covers the session
        try:
            with self._lock.read_locked():
                rotator.rotate(self.session.session)
            with self._stats_lock:
                self._last_rotation_error = None
        except Exception as exc:
            with self._stats_lock:
                self._last_rotation_error = f"{type(exc).__name__}: {exc}"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, final_snapshot: bool = True) -> None:
        """Drain the queue, fold, optionally snapshot, and stop the threads.

        Idempotent.  Requests submitted after ``close`` raise
        ``RuntimeError``; requests queued before it are applied first
        (the shutdown sentinel sits behind them in the FIFO).  The
        attached store (if any) is *not* closed here -- its owner (the
        server) closes it after every shard is down.
        """
        with self._submit_lock:
            if self._closed.is_set():
                return
            self._closed.set()
            self._queue.put(_SHUTDOWN)
        self._writer.join()
        self._merge_stop.set()
        self._merge_wakeup.set()
        self._merger.join()
        # Belt and braces: _submit_lock makes the closed-check + enqueue
        # atomic, so nothing should be queued behind the sentinel -- but a
        # leftover request must fail loudly rather than hang its caller.
        while True:
            try:
                entry = self._queue.get_nowait()
            except queue.Empty:
                break
            if isinstance(entry, _InsertRequest):
                entry.future.set_exception(
                    RuntimeError(f"shard {self.name!r} is closed")
                )
            self._queue.task_done()
        with self._maintenance_lock:
            if self.delta_size > 0:
                try:
                    self._fold()
                except BaseException:
                    pass  # recorded; the store has everything anyway
            if final_snapshot:
                self._maybe_rotate(force=True)
