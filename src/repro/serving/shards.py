"""One warm serving shard: a corpus, its session, and its writer thread.

A :class:`CorpusShard` owns exactly one warm
:class:`~repro.core.incremental.IncrementalTagDM` session (optionally
mirrored into a :class:`~repro.dataset.sqlite_store.SqliteTaggingStore`)
and serves it under single-writer/multi-reader semantics:

* **inserts** go through a thread-safe request queue drained by one
  dedicated writer thread per shard.  The writer coalesces whatever is
  queued into one write-lock hold, applies each request with the batch
  insert API (one cache invalidation per request, not per action), and
  then consults the shard's snapshot-rotation policy;
* **solves** run on the calling threads under a shared read lock, so any
  number of clients query concurrently; they are excluded only while a
  write (or a snapshot) is in flight, which is what makes a solve always
  observe a fully applied batch -- never a half-inserted one or a stale
  cache.

The read-write lock prefers writers: a queued insert blocks new readers,
so a steady query stream cannot starve the ingest path.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from contextlib import contextmanager
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.api.errors import OverloadedError
from repro.core.incremental import IncrementalTagDM, IncrementalUpdateReport
from repro.core.problem import TagDMProblem
from repro.core.result import MiningResult
from repro.serving.policy import SnapshotRotator
from repro.serving.reliability import AdmissionPolicy, FaultPlan

__all__ = ["CorpusShard", "ReadWriteLock"]


class ReadWriteLock:
    """A writer-preferring readers/writer lock.

    Many readers may hold the lock at once; a writer holds it alone.
    Readers arriving while a writer waits queue up behind it, so the
    single writer thread of a shard is never starved by solves.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextmanager
    def read_locked(self):
        with self._condition:
            while self._writer_active or self._writers_waiting:
                self._condition.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._condition:
                self._readers -= 1
                if self._readers == 0:
                    self._condition.notify_all()

    @contextmanager
    def write_locked(self):
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._condition:
                self._writer_active = False
                self._condition.notify_all()


class _InsertRequest:
    """One queued insert batch and the future its caller waits on."""

    __slots__ = ("actions", "request_id", "future")

    def __init__(
        self,
        actions: List[Mapping[str, object]],
        request_id: Optional[str] = None,
    ) -> None:
        self.actions = actions
        self.request_id = request_id
        self.future: "Future[IncrementalUpdateReport]" = Future()


_SHUTDOWN = object()


class CorpusShard:
    """A warm session for one corpus, served by a single writer thread.

    Parameters
    ----------
    name:
        The corpus name this shard serves (the registry key in
        :class:`~repro.serving.server.TagDMServer`).
    session:
        A prepared :class:`IncrementalTagDM`.  If it carries a ``store``,
        every insert is mirrored durably in the same call.
    rotator:
        Optional :class:`SnapshotRotator`; when given, the writer thread
        snapshots the session per the rotator's policy and after a clean
        :meth:`close`.
    queue_capacity:
        Bound on queued insert requests; submitters block once full
        (simple back-pressure instead of unbounded memory growth).
    start_mode:
        How the session came up -- ``"cold"`` (full prepare), ``"warm"``
        (snapshot restore) or ``"warm-replay"`` (snapshot restore plus a
        store-tail replay); recorded for :meth:`stats`.
    replayed_actions:
        How many store-tail actions were replayed into the warm session
        at startup (non-zero only for ``"warm-replay"``).
    admission:
        Optional :class:`~repro.serving.reliability.AdmissionPolicy`;
        when given, inserts are shed with a typed 429
        (:class:`~repro.api.errors.OverloadedError`) once the writer
        queue reaches ``max_queue_depth``, and solves once
        ``max_inflight_solves`` are already running.
    fault_plan:
        Optional :class:`~repro.serving.reliability.FaultPlan` for the
        chaos harness; exposes the ``shard.apply`` (writer thread, just
        before a batch is applied) and ``shard.solve`` (solver thread,
        under the read lock) injection points.
    """

    def __init__(
        self,
        name: str,
        session: IncrementalTagDM,
        rotator: Optional[SnapshotRotator] = None,
        queue_capacity: int = 1024,
        start_mode: str = "cold",
        replayed_actions: int = 0,
        admission: Optional[AdmissionPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if not session.session.is_prepared:
            raise ValueError("shard sessions must be prepared before serving")
        if start_mode not in ("cold", "warm", "warm-replay"):
            raise ValueError(
                f"start_mode must be cold/warm/warm-replay, got {start_mode!r}"
            )
        self.name = name
        self.session = session
        self.rotator = rotator
        self.admission = admission
        self.fault_plan = fault_plan
        self.start_mode = start_mode
        self.replayed_actions = int(replayed_actions)
        self._lock = ReadWriteLock()
        self._queue: "queue.Queue[object]" = queue.Queue(maxsize=queue_capacity)
        self._closed = threading.Event()
        # Makes the closed-check + enqueue in submit_insert atomic with
        # respect to close(), so no request can slip into a queue the
        # writer has already left.
        self._submit_lock = threading.Lock()
        # Guards the serving counters (incremented by concurrent solvers).
        self._stats_lock = threading.Lock()
        self._inserts_served = 0
        self._solves_served = 0
        self._inflight_solves = 0
        self._inserts_shed = 0
        self._solves_shed = 0
        self._dedup_hits = 0
        self._last_rotation_error: Optional[str] = None
        if rotator is not None:
            session.add_mutation_listener(
                lambda report: rotator.record_inserts(report.actions_added)
            )
        self._writer = threading.Thread(
            target=self._writer_loop, name=f"tagdm-shard-{name}", daemon=True
        )
        self._writer.start()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit_insert(
        self,
        actions: Iterable[Mapping[str, object]],
        request_id: Optional[str] = None,
    ) -> "Future[IncrementalUpdateReport]":
        """Queue a batch of action dicts; returns a future for its report.

        The future resolves once the writer thread has applied the whole
        batch (and mirrored it into the store, when one is attached); it
        carries the batch's exception if any action was rejected.

        ``request_id`` is the batch's idempotency key: a batch whose key
        the durable store has already recorded resolves to the original
        report (``deduplicated=True``) without re-applying.  When the
        shard has an admission policy and the writer queue is at its
        watermark, the batch is shed with a retryable
        :class:`~repro.api.errors.OverloadedError` instead of queued.
        """
        admission = self.admission
        if admission is not None and admission.max_queue_depth is not None:
            depth = self._queue.qsize()
            if depth >= admission.max_queue_depth:
                with self._stats_lock:
                    self._inserts_shed += 1
                raise OverloadedError(
                    f"shard {self.name!r} shed the insert: writer queue at its "
                    f"admission watermark ({depth} queued)",
                    details={"corpus": self.name, "queue_depth": depth},
                    retry_after_seconds=admission.retry_after_seconds,
                )
        request = _InsertRequest(list(actions), request_id=request_id)
        with self._submit_lock:
            if self._closed.is_set():
                raise RuntimeError(f"shard {self.name!r} is closed")
            self._queue.put(request)
        return request.future

    def insert(
        self,
        user_id: str,
        item_id: str,
        tags: Iterable[str],
        rating: Optional[float] = None,
        user_attributes: Optional[Mapping[str, str]] = None,
        item_attributes: Optional[Mapping[str, str]] = None,
    ) -> IncrementalUpdateReport:
        """Insert one action and wait for it to be applied."""
        return self.insert_batch(
            [
                {
                    "user_id": user_id,
                    "item_id": item_id,
                    "tags": tuple(tags),
                    "rating": rating,
                    "user_attributes": user_attributes,
                    "item_attributes": item_attributes,
                }
            ]
        )

    def insert_batch(
        self,
        actions: Iterable[Mapping[str, object]],
        request_id: Optional[str] = None,
    ) -> IncrementalUpdateReport:
        """Insert a batch of action dicts and wait for the merged report."""
        return self.submit_insert(actions, request_id=request_id).result()

    def solve(
        self, problem: TagDMProblem, algorithm="auto", **options
    ) -> MiningResult:
        """Solve ``problem`` over the warm session (shared read lock).

        Runs on the calling thread; concurrent solves proceed in
        parallel, and the write lock guarantees the solve sees a fully
        applied state with fresh caches.  With an admission policy, a
        solve arriving while ``max_inflight_solves`` are already running
        is shed with a retryable 429 before it can pile onto the session.
        """
        admission = self.admission
        with self._stats_lock:
            if (
                admission is not None
                and admission.max_inflight_solves is not None
                and self._inflight_solves >= admission.max_inflight_solves
            ):
                self._solves_shed += 1
                inflight = self._inflight_solves
                raise OverloadedError(
                    f"shard {self.name!r} shed the solve: {inflight} solve(s) "
                    "already in flight",
                    details={"corpus": self.name, "inflight_solves": inflight},
                    retry_after_seconds=admission.retry_after_seconds,
                )
            self._inflight_solves += 1
        try:
            with self._lock.read_locked():
                if self.fault_plan is not None:
                    self.fault_plan.fire("shard.solve", corpus=self.name)
                result = self.session.solve(problem, algorithm=algorithm, **options)
        finally:
            with self._stats_lock:
                self._inflight_solves -= 1
        with self._stats_lock:
            self._solves_served += 1
        return result

    def flush(self) -> None:
        """Block until every insert queued so far has been applied."""
        self._queue.join()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed.is_set()

    def stats(self) -> Dict[str, object]:
        """Serving counters for monitoring and the perf report.

        ``snapshots_written`` / ``last_rotation_at`` track the rotation
        history of this shard's rotator (``snapshot_rotations`` is the
        same counter under its pre-PR-4 name, kept for callers of the
        older stats shape), and ``start_mode`` / ``replayed_actions``
        record how the session came up (cold prepare, warm snapshot, or
        warm snapshot plus store-tail replay).
        """
        rotations = self.rotator.rotations if self.rotator is not None else 0
        return {
            "name": self.name,
            "actions": self.session.dataset.n_actions,
            "groups": self.session.n_groups,
            "inserts_served": self._inserts_served,
            "solves_served": self._solves_served,
            "queue_depth": self._queue.qsize(),
            "inflight_solves": self._inflight_solves,
            "inserts_shed": self._inserts_shed,
            "solves_shed": self._solves_shed,
            "dedup_hits": self._dedup_hits,
            "snapshot_rotations": rotations,
            "snapshots_written": rotations,
            "last_rotation_at": (
                self.rotator.last_rotation_at if self.rotator is not None else None
            ),
            "last_rotation_error": self._last_rotation_error,
            "start_mode": self.start_mode,
            "replayed_actions": self.replayed_actions,
        }

    # ------------------------------------------------------------------
    # Writer thread
    # ------------------------------------------------------------------
    def _drain(self, first: object) -> List[object]:
        batch = [first]
        while True:
            try:
                batch.append(self._queue.get_nowait())
            except queue.Empty:
                return batch

    def _writer_loop(self) -> None:
        while True:
            item = self._queue.get()
            batch = self._drain(item)
            requests = [entry for entry in batch if isinstance(entry, _InsertRequest)]
            shutdown = any(entry is _SHUTDOWN for entry in batch)
            if requests:
                with self._lock.write_locked():
                    for request in requests:
                        try:
                            if self.fault_plan is not None:
                                self.fault_plan.fire(
                                    "shard.apply",
                                    corpus=self.name,
                                    n_actions=self.session.dataset.n_actions,
                                )
                            report = self.session.add_actions(
                                request.actions, request_id=request.request_id
                            )
                        except BaseException as exc:
                            request.future.set_exception(exc)
                        else:
                            if report.deduplicated:
                                with self._stats_lock:
                                    self._dedup_hits += 1
                            else:
                                self._inserts_served += report.actions_added
                            request.future.set_result(report)
                    self._maybe_rotate(force=False)
            for _ in batch:
                self._queue.task_done()
            if shutdown:
                return

    def _maybe_rotate(self, force: bool) -> None:
        """Snapshot under the held write lock when due (or forced).

        A failed snapshot must not take the shard down: the error is
        recorded for :meth:`stats` and serving continues; the next due
        rotation retries.
        """
        rotator = self.rotator
        if rotator is None:
            return
        if not force and not rotator.due():
            return
        if force and rotator.inserts_since_rotation <= 0:
            return  # the latest snapshot already covers the session
        try:
            rotator.rotate(self.session.session)
            self._last_rotation_error = None
        except Exception as exc:
            self._last_rotation_error = f"{type(exc).__name__}: {exc}"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, final_snapshot: bool = True) -> None:
        """Drain the queue, optionally snapshot, and stop the writer.

        Idempotent.  Requests submitted after ``close`` raise
        ``RuntimeError``; requests queued before it are applied first
        (the shutdown sentinel sits behind them in the FIFO).  The
        attached store (if any) is *not* closed here -- its owner (the
        server) closes it after every shard is down.
        """
        with self._submit_lock:
            if self._closed.is_set():
                return
            self._closed.set()
            self._queue.put(_SHUTDOWN)
        self._writer.join()
        # Belt and braces: _submit_lock makes the closed-check + enqueue
        # atomic, so nothing should be queued behind the sentinel -- but a
        # leftover request must fail loudly rather than hang its caller.
        while True:
            try:
                entry = self._queue.get_nowait()
            except queue.Empty:
                break
            if isinstance(entry, _InsertRequest):
                entry.future.set_exception(
                    RuntimeError(f"shard {self.name!r} is closed")
                )
            self._queue.task_done()
        if final_snapshot:
            with self._lock.write_locked():
                self._maybe_rotate(force=True)
