"""Standing-query evaluation: one background evaluator per shard.

A subscription is a registered :class:`~repro.api.spec.ProblemSpec`
that must be re-solved whenever the corpus moves.  The shard's fold
path already publishes immutable epoch-numbered views; the evaluator
subscribes to those publications (:meth:`notify_publish`), re-solves
every registered spec against the freshest view, diffs the result
against the subscription's last delivered payload
(:mod:`repro.api.diff`) and appends the diff to the store's
notification log.

Delivery semantics, by construction:

- **at-least-once evaluation**: a publication is only *forgotten* once
  its evaluations committed; a crash mid-pipeline loses nothing
  because the next open's bootstrap re-notifies the current view and
  the subscription rows still carry the pre-crash watermark.
- **exactly-once visible delivery**: the store's
  ``record_subscription_diff`` advances watermark + seq + diff row in
  one transaction and refuses watermarks at or below the ledger's --
  a replayed evaluation is *suppressed*, never duplicated.
- **no false positives**: an empty diff (the re-solve byte-matched the
  previous result) advances the watermark silently instead of
  emitting a notification.

Publications are *coalesced*: the evaluator keeps only the newest
pending view, so an insert storm costs one evaluation per drain, not
one per fold.  Intermediate watermarks a consumer never saw simply do
not appear in its diff stream -- composition still holds because each
diff is relative to the previous *delivered* result, not the previous
fold.

The fault plan exposes three injection points on this path:
``subs.pre_eval`` (before the re-solve), ``subs.post_eval`` (solved,
diff not yet computed/committed) and ``subs.pre_notify`` (diff
computed, ledger write about to run).  A kill between ``post_eval``
and ``pre_notify`` is the chaos drill of record: the evaluation is
lost, the replay re-solves, and the ledger keeps delivery exactly
once.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.api.diff import comparable_payload, diff_results
from repro.api.spec import ProblemSpec
from repro.core.incremental import SessionView
from repro.core.witness import named_lock

__all__ = ["SubscriptionEvaluator"]


class SubscriptionEvaluator:
    """Background re-solver of one corpus's registered subscriptions.

    Parameters
    ----------
    corpus:
        Corpus name (for fault-point context and error strings).
    store:
        The corpus's :class:`~repro.dataset.sqlite_store.SqliteTaggingStore`;
        holds the ``subscriptions`` table and the diff ledger.
    fault_plan:
        Optional :class:`~repro.serving.reliability.FaultPlan` armed on
        the ``subs.*`` injection points.
    retry_interval:
        Back-off before re-attempting a failed evaluation drain.
    """

    def __init__(
        self,
        corpus: str,
        store,
        fault_plan=None,
        retry_interval: float = 0.05,
    ) -> None:
        self.corpus = corpus
        self.store = store
        self.fault_plan = fault_plan
        self.retry_interval = float(retry_interval)
        self._lock = named_lock("subs.state")
        self._wakeup = threading.Event()
        self._stop = threading.Event()
        self._pending_view: Optional[SessionView] = None
        self._evaluating = False
        self._active = sum(
            1 for sub in store.list_subscriptions() if sub["state"] == "active"
        )
        self._evaluations = 0
        self._notifications = 0
        self._suppressed = 0
        self._last_error: Optional[str] = None
        self._notified_watermark = 0
        self._completed_watermark = 0
        self._thread = threading.Thread(
            target=self._loop, name=f"subs-{corpus}", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Publication intake
    # ------------------------------------------------------------------
    def notify_publish(self, view: SessionView) -> None:
        """Queue a freshly published view for evaluation (coalescing).

        Called by the shard's fold path after every publication and by
        the server at corpus-open time (the bootstrap replay that makes
        evaluation at-least-once across crashes).  Only the newest view
        is kept; older queued publications are superseded, never lost
        -- the newest view's watermark covers theirs.
        """
        with self._lock:
            if (
                self._pending_view is None
                or view.watermark >= self._pending_view.watermark
            ):
                self._pending_view = view
            self._notified_watermark = max(self._notified_watermark, view.watermark)
            self._wakeup.set()

    def subscription_registered(self) -> None:
        """Bump the active-subscription counter (service layer hook)."""
        with self._lock:
            self._active += 1

    # ------------------------------------------------------------------
    # Evaluation loop
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.is_set():
            self._wakeup.wait(0.2)
            if self._stop.is_set():
                return
            with self._lock:
                self._wakeup.clear()
                view = self._pending_view
                self._pending_view = None
                if view is not None:
                    self._evaluating = True
            if view is None:
                continue
            try:
                clean = self._evaluate(view)
            finally:
                with self._lock:
                    self._evaluating = False
            if not clean:
                # Re-queue for retry unless a newer publication arrived
                # meanwhile, then back off briefly (stop-responsive).
                with self._lock:
                    if self._pending_view is None:
                        self._pending_view = view
                    self._wakeup.set()
                self._stop.wait(self.retry_interval)

    def _evaluate(self, view: SessionView) -> bool:
        """Evaluate every lagging subscription against ``view``.

        Returns ``False`` when any evaluation failed (the caller
        re-queues the view); successes are never rolled back -- each
        subscription's ledger write is its own transaction.
        """
        clean = True
        plan = self.fault_plan
        for sub in self.store.list_subscriptions():
            if sub["state"] != "active":
                continue
            sub_id = sub["subscription_id"]
            if view.watermark <= sub["last_watermark"]:
                # The ledger already covers this watermark: a replayed
                # bootstrap or a coalesced stale publication.  Count the
                # suppression -- it is the exactly-once gate firing.
                with self._lock:
                    self._suppressed += 1
                continue
            try:
                if plan is not None:
                    plan.fire(
                        "subs.pre_eval",
                        corpus=self.corpus,
                        subscription=sub_id,
                        n_actions=view.watermark,
                    )
                spec = ProblemSpec.from_dict(sub["spec"])
                problem, algorithm = spec.validate()
                result = view.solve(problem, algorithm=algorithm, **dict(spec.options))
                if plan is not None:
                    plan.fire(
                        "subs.post_eval",
                        corpus=self.corpus,
                        subscription=sub_id,
                        n_actions=view.watermark,
                    )
                payload = comparable_payload(result.to_dict())
                diff = diff_results(sub["last_result"], payload, view.watermark)
                with self._lock:
                    self._evaluations += 1
                if diff.is_empty:
                    # Bit-identical re-solve: advance the watermark
                    # silently, no notification (no false positives).
                    self.store.advance_subscription_watermark(sub_id, view.watermark)
                    continue
                if plan is not None:
                    plan.fire(
                        "subs.pre_notify",
                        corpus=self.corpus,
                        subscription=sub_id,
                        n_actions=view.watermark,
                    )
                seq = self.store.record_subscription_diff(
                    sub_id, view.watermark, view.epoch, diff.to_dict(), payload
                )
                with self._lock:
                    if seq is None:
                        self._suppressed += 1
                    else:
                        self._notifications += 1
            except Exception as exc:  # noqa: BLE001 -- incl. InjectedFault
                clean = False
                with self._lock:
                    self._last_error = f"{sub_id}@{view.watermark}: {exc}"
        if clean:
            with self._lock:
                self._completed_watermark = max(
                    self._completed_watermark, view.watermark
                )
        return clean

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, object]:
        """Stats-table snapshot; safe to call under ``shard.stats``."""
        with self._lock:
            return {
                "subs_active": self._active,
                "subs_evaluations": self._evaluations,
                "subs_notifications": self._notifications,
                "subs_suppressed": self._suppressed,
                "subs_backlog": max(
                    0, self._notified_watermark - self._completed_watermark
                ),
                "subs_last_error": self._last_error,
            }

    def wait_idle(self, timeout: float = 10.0) -> bool:
        """Block until the evaluator has drained (tests / benchmarks)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                idle = (
                    self._pending_view is None
                    and not self._evaluating
                    and not self._wakeup.is_set()
                )
            if idle:
                return True
            time.sleep(0.005)
        return False

    def close(self) -> None:
        """Stop the evaluator thread (idempotent; pending work is safe:
        the ledger watermark makes the next open's bootstrap replay it)."""
        self._stop.set()
        self._wakeup.set()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)
